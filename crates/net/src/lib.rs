//! # dcrd-net — overlay network substrate
//!
//! The DCRD paper (Guo et al., ICDCS 2011) evaluates routing strategies on a
//! broker overlay network whose links have per-link propagation delays,
//! random per-transmission loss, and epoch-based link failures. This crate
//! builds that substrate:
//!
//! * [`graph`] — the overlay [`Topology`]: an undirected
//!   graph of broker nodes with per-link delays.
//! * [`topology`] — generators for the paper's topologies (full mesh,
//!   random connected degree-*k* overlays) plus rings/lines/stars for tests.
//! * [`paths`] — Dijkstra shortest paths (by delay or hop count), all-pairs
//!   sweeps, Yen's k-shortest simple paths, and the paper's multipath
//!   selection rule (fewest overlapping links among the top-5).
//! * [`disjoint`] — Bhandari's minimum-cost edge-disjoint path pairs (the
//!   principled alternative to the paper's multipath heuristic).
//! * [`diagnostics`] — diameter/eccentricity summaries of generated
//!   overlays.
//! * [`failure`] — the paper's failure model: once per 1-second epoch every
//!   link independently fails with probability `Pf`; plus the node-failure
//!   extension sketched in the paper's conclusion.
//! * [`chaos`] — correlated fault injection beyond the paper: recurring
//!   network partitions, crash-restart brokers (volatile state lost on
//!   restart), and asymmetric gray links — all seed-reproducible.
//! * [`membership`] — a deterministic SWIM-style failure detector
//!   (probe / indirect-probe / suspect / confirm with incarnation-number
//!   refutation), the order-insensitive membership-view lattice it
//!   converges on, and a seeded broker-churn schedule.
//! * [`gossip`] — the dissemination half of the membership control plane:
//!   deterministic epidemic rumor spread (bounded partial views, eager
//!   push, anti-entropy digest reconciliation) with convergence gating
//!   and bounded-staleness reporting.
//! * [`loss`] — per-transmission Bernoulli packet loss (`Pl`).
//! * [`estimate`] — per-link quality estimates `⟨α, γ⟩` (expected one-way
//!   delay and single-transmission delivery ratio), both analytic and via an
//!   online EWMA probe monitor.
//!
//! # Example
//!
//! ```
//! use dcrd_net::topology::{full_mesh, DelayRange};
//! use dcrd_net::paths::{shortest_path, Metric};
//! use dcrd_sim::rng::rng_for;
//!
//! let topo = full_mesh(5, DelayRange::PAPER, &mut rng_for(1, "topo"));
//! let path = shortest_path(&topo, topo.node(0), topo.node(4), Metric::Delay)
//!     .expect("mesh is connected");
//! assert!(path.hops() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod diagnostics;
pub mod disjoint;
pub mod estimate;
pub mod failure;
pub mod gossip;
pub mod graph;
pub mod loss;
pub mod membership;
pub mod nodeset;
pub mod paths;
pub mod topology;

pub use graph::{EdgeId, NodeId, Topology};
pub use nodeset::NodeSet;
