//! DCRD tuning knobs.

use serde::{Deserialize, Serialize};

pub use crate::ordering::OrderingPolicy;

/// What a publisher does when the whole recursive exploration fails (every
/// neighbor tried, packet returned to the publisher, publisher exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PersistenceMode {
    /// Drop the packet (the paper's evaluated, non-persistent mode).
    #[default]
    Disabled,
    /// Park the packet and retry the full exploration when the failure
    /// epoch changes — the paper's sketched persistency mode (§III), which
    /// guarantees delivery under transient partitions at the cost of
    /// storage and extra traffic.
    Retry {
        /// Maximum number of parked retries per packet.
        max_retries: u32,
        /// Delay before each retry, in milliseconds (the paper's failures
        /// last one second, so ≈1000 ms is natural).
        retry_after_ms: u64,
    },
}

impl PersistenceMode {
    /// The `(max_retries, retry_after_ms)` parameters of the retry mode, or
    /// `None` when persistence is disabled — a typed accessor instead of
    /// pattern-matching (and panicking) at every use site.
    #[must_use]
    pub fn retry_params(&self) -> Option<(u32, u64)> {
        match *self {
            PersistenceMode::Disabled => None,
            PersistenceMode::Retry {
                max_retries,
                retry_after_ms,
            } => Some((max_retries, retry_after_ms)),
        }
    }
}

/// Whether a broker's in-flight custody state survives a crash-restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DurabilityMode {
    /// In-flight state lives in RAM only (the paper's model): a
    /// crash-restarted broker forgets every packet it had accepted.
    #[default]
    Volatile,
    /// Write-ahead custody journaling: a broker records a packet on its
    /// journal *before* taking custody, releases the entry as downstream
    /// ACKs settle destinations, and replays surviving entries on restart.
    Durable {
        /// Simulated latency of the durable write, in milliseconds. The
        /// broker ACKs and delivers immediately (the entry is already
        /// journaled) but defers *forwarding* by this much — the price of
        /// the fsync before the packet re-enters the sending lists. `0`
        /// models journaling on battery-backed RAM.
        write_cost_ms: u64,
    },
}

impl DurabilityMode {
    /// The journal write cost, or `None` when volatile.
    #[must_use]
    pub fn write_cost_ms(&self) -> Option<u64> {
        match *self {
            DurabilityMode::Volatile => None,
            DurabilityMode::Durable { write_cost_ms } => Some(write_cost_ms),
        }
    }
}

/// Subscriber-side end-to-end recovery: gap detection over per-(topic,
/// publisher) sequence numbers, NACKs routed toward the publisher, and a
/// bounded dedup window absorbing replayed copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Dedup-window capacity per (publisher, subscriber) stream. Size it to
    /// cover `publish_rate × max_recovery_latency` sequence numbers.
    pub dedup_window: u32,
    /// How many times one missing sequence number may be NACKed before the
    /// subscriber stops asking (bounds recovery traffic; keep comfortably
    /// under the auditor's per-edge budget).
    pub max_nacks_per_seq: u32,
    /// Epochs a sequence number must be overdue before it is NACKed —
    /// absorbs path-diversity reordering and in-flight copies so the sweep
    /// does not NACK packets that are merely slow.
    pub grace_epochs: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            dedup_window: 1024,
            max_nacks_per_seq: 50,
            grace_epochs: 2,
        }
    }
}

/// How the router reacts to membership deltas (joins, leaves, confirmed
/// deaths) reported by the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RepairMode {
    /// Ignore membership changes: routing tables keep naming departed
    /// brokers (the paper's static-membership model). The baseline the
    /// churn experiments measure against.
    #[default]
    None,
    /// Localized repair: re-run shortest paths around the absent set, then
    /// recompute `⟨d, r⟩` fixed-point state and sending lists **only** for
    /// the subscriptions whose cost vectors actually changed, patching
    /// upstream pointers from the new predecessors.
    Incremental,
    /// Rebuild every routing table from scratch on any membership change —
    /// the correctness oracle incremental repair is tested against, and the
    /// upper bound on repair cost.
    GlobalRebuild,
}

/// Churn-survival knobs: repair policy, custody handoff, and whether
/// crash-restarts ride the same repair path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MembershipConfig {
    /// Routing-table repair policy on membership deltas.
    #[serde(default)]
    pub repair: RepairMode,
    /// Re-custody in-flight journal entries owned by a confirmed-dead or
    /// departed broker to its upstream (or the publisher), instead of
    /// letting its custody die with it.
    #[serde(default)]
    pub handoff: bool,
    /// Route crash-restart notifications through the membership repair
    /// path as well (off keeps the pre-churn restart semantics).
    #[serde(default)]
    pub repair_on_restart: bool,
}

/// How a broker times out a hop-by-hop ACK.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum TimeoutPolicy {
    /// The paper's timer: a fixed `ack_timeout_factor × α` plus slack,
    /// identical for every transmission on a link.
    #[default]
    Fixed,
    /// Jacobson-style SRTT/RTTVAR estimation per directed link with capped
    /// exponential backoff on retransmission. Timers adapt to measured ACK
    /// round trips instead of the monitored `α`, so a congested or gray
    /// link stops being probed at a rate its real latency cannot sustain.
    Adaptive(AdaptiveTimeoutConfig),
}

/// Parameters of the adaptive ACK-timeout estimator.
///
/// The retransmission timeout follows the classic TCP form: `RTO = SRTT +
/// max(4 × RTTVAR, granularity)` plus the fixed ACK slack, with SRTT/RTTVAR
/// updated by gains 1/8 and 1/4 from ACK samples. Samples are only taken
/// from transmissions that were never retransmitted (Karn's rule); each
/// retransmission doubles the pending timer up to `max_rto_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveTimeoutConfig {
    /// Lower clamp on the computed RTO, in milliseconds.
    pub min_rto_ms: u64,
    /// Upper clamp on the computed RTO and on the backoff doubling, in
    /// milliseconds.
    pub max_rto_ms: u64,
}

impl Default for AdaptiveTimeoutConfig {
    fn default() -> Self {
        AdaptiveTimeoutConfig {
            min_rto_ms: 2,
            max_rto_ms: 500,
        }
    }
}

/// Per-neighbor circuit breaker: a neighbor that keeps timing out is
/// temporarily demoted from the sending lists so it stops consuming the
/// `m`-retransmission budget, then probed back in after a cooldown.
///
/// Demotion never applies to the upstream hop (the only way back), so the
/// breaker cannot strand a packet that rerouting could still save.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive `m`-exhausted timeouts on one neighbor before demotion.
    pub threshold: u32,
    /// First demotion cooldown, in milliseconds (the paper's failure epochs
    /// last one second, so ≈1000 ms is natural).
    pub cooldown_ms: u64,
    /// Cap on the cooldown as repeated demotions double it.
    pub max_cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown_ms: 1000,
            max_cooldown_ms: 8000,
        }
    }
}

/// Convergence parameters for the distributed `⟨d, r⟩` computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagationConfig {
    /// Maximum synchronous gossip rounds.
    pub max_rounds: u32,
    /// Convergence tolerance on `d` (µs).
    pub tolerance_d: f64,
    /// Convergence tolerance on `r`.
    pub tolerance_r: f64,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            max_rounds: 100,
            tolerance_d: 1.0,
            tolerance_r: 1e-9,
        }
    }
}

fn default_upstream_retry_cap() -> u32 {
    2
}

/// Full DCRD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcrdConfig {
    /// Sending-list ordering (Theorem 1 by default; others for ablation).
    pub ordering: OrderingPolicy,
    /// Whether a broker that exhausts its sending list reroutes the packet
    /// to its upstream node (§III-D). Disabling this (ablation) makes DCRD
    /// a "try my neighbors then drop" scheme.
    pub reroute_upstream: bool,
    /// Reroute hysteresis: how many times the upstream hop may exhaust its
    /// `m` transmissions for one packet at one broker before that broker
    /// stops offering the upstream for it (durably — the verdict survives
    /// state resurrection). The upstream link is exempt from the
    /// per-destination tried set, so without this damping two brokers at a
    /// sustained-unreachability boundary ping-pong a packet until the
    /// attempts cap burns out.
    #[serde(default = "default_upstream_retry_cap")]
    pub upstream_retry_cap: u32,
    /// Safety cap on transmissions one broker spends on one packet; beyond
    /// it the broker gives up on the remaining destinations. Prevents
    /// livelock when the overlay is partitioned for a long time.
    pub max_attempts_per_node: u32,
    /// Cap on a packet's routing-path length as a multiple of the overlay
    /// size. Per-broker state is deleted on every downstream ACK (the
    /// paper's aggressive cleanup), so a packet whose destination is
    /// unreachable can otherwise bounce between brokers indefinitely —
    /// the path record is the one budget that travels with the packet.
    pub max_path_factor: u32,
    /// Publisher-side persistence (paper extension).
    pub persistence: PersistenceMode,
    /// Convergence parameters for the routing-table computation.
    pub propagation: PropagationConfig,
    /// ACK-timeout policy (the paper's fixed timer by default; adaptive
    /// SRTT/RTTVAR with backoff for chaos-hardened runs).
    pub timeout_policy: TimeoutPolicy,
    /// Per-neighbor circuit breaker (`None` disables it — the paper's
    /// behavior).
    pub breaker: Option<BreakerConfig>,
    /// Custody durability: whether in-flight state is journaled and
    /// replayed across crash-restarts (volatile by default — the paper's
    /// model).
    #[serde(default)]
    pub durability: DurabilityMode,
    /// Subscriber-side NACK recovery (`None` disables it — the paper's
    /// behavior).
    #[serde(default)]
    pub recovery: Option<RecoveryConfig>,
    /// Membership-churn survival: table repair, custody handoff
    /// (static membership by default — the paper's model).
    #[serde(default)]
    pub membership: MembershipConfig,
}

impl Default for DcrdConfig {
    fn default() -> Self {
        DcrdConfig {
            ordering: OrderingPolicy::RatioOptimal,
            reroute_upstream: true,
            upstream_retry_cap: default_upstream_retry_cap(),
            max_attempts_per_node: 64,
            max_path_factor: 4,
            persistence: PersistenceMode::Disabled,
            propagation: PropagationConfig::default(),
            timeout_policy: TimeoutPolicy::Fixed,
            breaker: None,
            durability: DurabilityMode::default(),
            recovery: None,
            membership: MembershipConfig::default(),
        }
    }
}

impl DcrdConfig {
    /// The chaos-hardened variant: adaptive ACK timeouts plus the neighbor
    /// circuit breaker. Use this under partitions, crash-restart brokers,
    /// or gray links; the paper's defaults remain untouched otherwise.
    #[must_use]
    pub fn chaos_hardened() -> Self {
        DcrdConfig {
            timeout_policy: TimeoutPolicy::Adaptive(AdaptiveTimeoutConfig::default()),
            breaker: Some(BreakerConfig::default()),
            ..DcrdConfig::default()
        }
    }

    /// The crash-survivable variant: everything in
    /// [`chaos_hardened`](DcrdConfig::chaos_hardened) plus write-ahead
    /// custody journaling with restart replay, aggressive publisher
    /// persistence, and subscriber-side NACK recovery. This is the
    /// configuration under which the end-to-end audit (no gaps, no
    /// duplicates) is expected to hold under crash chaos.
    #[must_use]
    pub fn recovery_hardened() -> Self {
        DcrdConfig {
            durability: DurabilityMode::Durable { write_cost_ms: 1 },
            recovery: Some(RecoveryConfig::default()),
            persistence: PersistenceMode::Retry {
                max_retries: 100,
                retry_after_ms: 500,
            },
            ..DcrdConfig::chaos_hardened()
        }
    }

    /// The churn-survivable variant: everything in
    /// [`recovery_hardened`](DcrdConfig::recovery_hardened) plus
    /// incremental table repair on membership deltas, custody handoff away
    /// from dead brokers, and restart repair through the membership path.
    #[must_use]
    pub fn churn_hardened() -> Self {
        DcrdConfig {
            membership: MembershipConfig {
                repair: RepairMode::Incremental,
                handoff: true,
                repair_on_restart: true,
            },
            ..DcrdConfig::recovery_hardened()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DcrdConfig::default();
        assert_eq!(c.ordering, OrderingPolicy::RatioOptimal);
        assert!(c.reroute_upstream);
        assert!(c.upstream_retry_cap >= 1, "hysteresis must allow one retry");
        assert_eq!(c.persistence, PersistenceMode::Disabled);
        assert!(c.max_attempts_per_node >= 16);
        assert!(c.propagation.max_rounds >= 10);
        assert_eq!(c.timeout_policy, TimeoutPolicy::Fixed);
        assert!(c.breaker.is_none());
    }

    #[test]
    fn persistence_mode_carries_parameters() {
        let p = PersistenceMode::Retry {
            max_retries: 5,
            retry_after_ms: 1000,
        };
        assert_eq!(p.retry_params(), Some((5, 1000)));
        assert_eq!(PersistenceMode::Disabled.retry_params(), None);
        assert_eq!(PersistenceMode::default().retry_params(), None);
    }

    #[test]
    fn recovery_hardened_layers_on_chaos_hardened() {
        let c = DcrdConfig::recovery_hardened();
        assert!(matches!(c.timeout_policy, TimeoutPolicy::Adaptive(_)));
        assert!(c.breaker.is_some());
        assert_eq!(c.durability.write_cost_ms(), Some(1));
        let r = c.recovery.expect("recovery enabled");
        assert!(r.dedup_window >= 64);
        assert!(r.max_nacks_per_seq >= 1);
        assert!(c.persistence.retry_params().is_some());
        // The paper's defaults stay untouched.
        let d = DcrdConfig::default();
        assert_eq!(d.durability, DurabilityMode::Volatile);
        assert!(d.recovery.is_none());
        assert_eq!(DurabilityMode::Volatile.write_cost_ms(), None);
    }

    #[test]
    fn churn_hardened_layers_on_recovery_hardened() {
        let c = DcrdConfig::churn_hardened();
        assert_eq!(c.membership.repair, RepairMode::Incremental);
        assert!(c.membership.handoff);
        assert!(c.membership.repair_on_restart);
        // Everything below stays at the recovery-hardened settings.
        assert_eq!(c.durability.write_cost_ms(), Some(1));
        assert!(c.recovery.is_some());
        assert!(matches!(c.timeout_policy, TimeoutPolicy::Adaptive(_)));
        // The paper's defaults remain churn-oblivious.
        let d = DcrdConfig::default();
        assert_eq!(d.membership, MembershipConfig::default());
        assert_eq!(d.membership.repair, RepairMode::None);
        assert!(!d.membership.handoff);
    }

    #[test]
    fn chaos_hardened_enables_adaptive_timers_and_breaker() {
        let c = DcrdConfig::chaos_hardened();
        let TimeoutPolicy::Adaptive(adaptive) = c.timeout_policy else {
            panic!("chaos_hardened must use adaptive timeouts");
        };
        assert!(adaptive.min_rto_ms < adaptive.max_rto_ms);
        let breaker = c.breaker.expect("chaos_hardened must enable the breaker");
        assert!(breaker.threshold >= 1);
        assert!(breaker.cooldown_ms <= breaker.max_cooldown_ms);
        // Everything else stays at the paper's defaults.
        assert_eq!(c.ordering, DcrdConfig::default().ordering);
        assert_eq!(c.max_path_factor, DcrdConfig::default().max_path_factor);
    }
}
