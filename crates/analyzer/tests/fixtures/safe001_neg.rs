// Fixture: SAFE001 must stay quiet — graceful handling, the unwrap_or
// family, and test-only unwraps.
pub fn first(xs: &[u32]) -> u32 {
    let Some(head) = xs.first() else {
        return 0;
    };
    let tail = xs.last().copied().unwrap_or(0);
    let pad = xs.get(1).copied().unwrap_or_else(|| 0);
    let fill = xs.get(2).copied().unwrap_or_default();
    head + tail + pad + fill
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1u32];
        assert_eq!(v.first().copied().unwrap(), 1);
        let _ = v.last().expect("non-empty");
    }
}
