//! Churn study: membership survival under broker joins, leaves and deaths.
//!
//! One sweep over the broker-churn chaos model comparing three arms on
//! **identical** repetitions (same topology, workload and churn
//! schedule):
//!
//! * **DCRD-incremental** — the churn-hardened router: SWIM-detected
//!   membership deltas drive localized table repair plus custody handoff
//!   ([`DcrdConfig::churn_hardened`]); no global rebuild past setup.
//! * **DCRD-global** — the same control plane, but every membership
//!   delta batch triggers a from-scratch `rebuild_tables` on the masked
//!   topology. This is the correctness oracle incremental repair must
//!   stay within epsilon of.
//! * **DCRD-no-repair** — the recovery-hardened router with membership
//!   repair disabled: routing tables keep pointing at departed brokers
//!   and only the dynamic per-hop fallback fights the rot.
//!
//! Links are clean (`Pf = Pl = 0`) and the topology is degree-bounded so
//! relay brokers actually matter: membership churn is the *only*
//! disturbance, and the gap between the arms isolates the repair path.
//! Subscription windows are confined to each broker's presence interval
//! (see `runner::confine_to_churn`), so every expected pair is
//! deliverable in principle and the auditor can insist on zero
//! violations across the whole sweep.

use dcrd_core::{DcrdConfig, RepairMode};
use dcrd_metrics::report::{FigureSeries, SeriesPoint};
use dcrd_metrics::AggregateMetrics;

use crate::runner::{run_labeled, StrategyKind};
use crate::scenario::{BrokerChurnSpec, Quality, Scenario, ScenarioBuilder};

/// Per-broker churn-probability sweep (fraction of unprotected brokers
/// that join, leave or die during the run).
pub const CHURN_RATE_SWEEP: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// The churn study: one degradation series over churn rate plus the
/// pooled auditor verdict.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// `churn-rates`: delivery per churn rate, three arms per point.
    pub series: FigureSeries,
    /// Invariant violations summed over every run of the study.
    pub total_audit_violations: u64,
}

/// Degree-bounded clean-link overlay: churn is the only loss mechanism
/// and packets actually cross relay brokers that can churn away.
fn base(quality: Quality) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .nodes(12)
        .degree(4)
        .failure_probability(0.0)
        .loss_rate(0.0)
        .topics(4)
        .quality(quality)
        .audit(true)
}

/// The global-rebuild oracle arm: churn-hardened control plane, but every
/// membership delta batch rebuilds all tables from scratch.
#[must_use]
pub fn global_rebuild_config() -> DcrdConfig {
    let mut config = DcrdConfig::churn_hardened();
    config.membership.repair = RepairMode::GlobalRebuild;
    config
}

/// Runs the three contenders on identical repetitions of one scenario.
fn contenders(scenario: Scenario) -> Vec<AggregateMetrics> {
    let incremental = Scenario {
        dcrd: DcrdConfig::churn_hardened(),
        ..scenario
    };
    let global = Scenario {
        dcrd: global_rebuild_config(),
        ..scenario
    };
    let no_repair = Scenario {
        dcrd: DcrdConfig::recovery_hardened(),
        ..scenario
    };
    vec![
        run_labeled(&incremental, StrategyKind::Dcrd, "DCRD-incremental"),
        run_labeled(&global, StrategyKind::Dcrd, "DCRD-global"),
        run_labeled(&no_repair, StrategyKind::Dcrd, "DCRD-no-repair"),
    ]
}

/// Delivery degradation vs broker churn rate.
#[must_use]
pub fn churn_rates(quality: Quality) -> FigureSeries {
    let mut series = FigureSeries::new("churn-rates", "Broker Churn Probability");
    for rate in CHURN_RATE_SWEEP {
        let scenario = base(quality).broker_churn(BrokerChurnSpec { rate }).build();
        series.points.push(SeriesPoint {
            x: rate,
            strategies: contenders(scenario),
        });
    }
    series
}

/// Runs the sweep and pools the auditor verdict.
#[must_use]
pub fn churn_report(quality: Quality) -> ChurnReport {
    let series = churn_rates(quality);
    let total_audit_violations = series
        .points
        .iter()
        .flat_map(|p| &p.strategies)
        .map(AggregateMetrics::audit_violations)
        .sum();
    ChurnReport {
        series,
        total_audit_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full-sweep acceptance test (clean audit, incremental ≥
    // no-repair, within epsilon of the oracle) lives in
    // `tests/churn.rs` so CI can run it by name in release mode.

    #[test]
    fn sweep_spans_the_acceptance_rates() {
        assert_eq!(CHURN_RATE_SWEEP[0], 0.0);
        assert!(CHURN_RATE_SWEEP.contains(&0.3));
    }

    #[test]
    fn global_rebuild_config_differs_only_in_repair_mode() {
        let oracle = global_rebuild_config();
        let incremental = DcrdConfig::churn_hardened();
        assert_eq!(oracle.membership.repair, RepairMode::GlobalRebuild);
        assert_eq!(incremental.membership.repair, RepairMode::Incremental);
        assert_eq!(oracle.membership.handoff, incremental.membership.handoff);
        assert_eq!(
            oracle.membership.repair_on_restart,
            incremental.membership.repair_on_restart
        );
    }
}
