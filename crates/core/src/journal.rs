//! A per-broker durable in-flight store.
//!
//! The paper's brokers hold in-flight packets in RAM and delete the state
//! aggressively on every downstream ACK (§III-D). The chaos layer's
//! crash-restart model breaks that silently: a restarted broker forgets
//! every packet it accepted, even though its upstream already saw the ACK
//! and deleted *its* copy — the packet is gone for good.
//!
//! [`InFlightJournal`] is the write-ahead-journal abstraction that closes
//! the gap in [`DurabilityMode::Durable`]: every accept is recorded before
//! it takes effect, destination completions are noted as downstream ACKs
//! arrive, and the entry is retired once the broker's responsibility ends.
//! On restart, [`replay_for`](InFlightJournal::replay_for) returns the
//! broker's surviving entries so the router can rebuild fresh in-flight
//! state (with the pre-crash routing path and tried-sets cleared — those
//! records described a network epoch that no longer exists) and push the
//! packets back through its sending lists.
//!
//! The journal is an in-simulation abstraction of a disk WAL: "durable"
//! means it survives [`on_restart`](dcrd_pubsub::strategy::RoutingStrategy::on_restart)
//! wipes, not host reboots.
//!
//! [`DurabilityMode::Durable`]: crate::config::DurabilityMode::Durable

use std::collections::{BTreeMap, BTreeSet};

use dcrd_net::NodeId;
use dcrd_pubsub::packet::{Packet, PacketId};
use dcrd_pubsub::topic::TopicId;

/// One journalled in-flight packet at one broker.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// The packet as the broker accepted it (destinations may grow if later
    /// copies merge more subscribers into this broker's responsibility).
    pub packet: Packet,
    /// The upstream hop the broker would reroute to, if known.
    pub upstream: Option<NodeId>,
    /// Destinations already settled (downstream-ACKed, delivered, or given
    /// up) — replay must not resurrect these.
    pub done: BTreeSet<NodeId>,
}

/// Counters describing the journal's activity over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Entries written (first accept of a packet at a broker).
    pub records: u64,
    /// Destination completions noted.
    pub completions: u64,
    /// Entries retired (broker responsibility ended).
    pub retires: u64,
    /// Entries replayed after crash-restarts.
    pub replays: u64,
    /// Entries handed off to a new custodian after their holder was
    /// confirmed dead or departed.
    pub handoffs: u64,
}

/// The write-ahead journal for every broker's in-flight state.
///
/// Keyed by `(packet, holder)` — the same key the router's volatile
/// in-flight map uses, so mirroring is one call per state transition.
#[derive(Debug, Clone, Default)]
pub struct InFlightJournal {
    entries: BTreeMap<(PacketId, NodeId), JournalEntry>,
    stats: JournalStats,
}

impl InFlightJournal {
    /// Creates an empty journal.
    #[must_use]
    pub fn new() -> Self {
        InFlightJournal::default()
    }

    /// Records (or rewrites) broker `holder`'s responsibility for `packet`.
    /// Called before the acceptance takes effect — the write-ahead
    /// discipline: if the broker crashes right after ACKing, the entry is
    /// already on the journal.
    pub fn record(&mut self, holder: NodeId, packet: &Packet, upstream: Option<NodeId>) {
        let key = (packet.id, holder);
        match self.entries.get_mut(&key) {
            Some(entry) => {
                // Destination merge: a later copy widened this broker's
                // responsibility. Coverage only ever grows — a returning
                // copy carries a pruned destination list and must not
                // shrink the entry, or custody over the pruned subscribers
                // (and with it NACK serve-eligibility) would silently
                // vanish. The settled set is kept.
                for &dest in &packet.destinations {
                    if !entry.packet.destinations.contains(&dest) {
                        entry.packet.destinations.push(dest);
                    }
                }
                entry.upstream = upstream;
            }
            None => {
                self.stats.records += 1;
                self.entries.insert(
                    key,
                    JournalEntry {
                        packet: packet.clone(),
                        upstream,
                        done: BTreeSet::new(),
                    },
                );
            }
        }
    }

    /// Notes that `holder`'s responsibility for `dest` ended (downstream
    /// ACK, local delivery, or give-up).
    pub fn note_done(&mut self, holder: NodeId, packet: PacketId, dest: NodeId) {
        if let Some(entry) = self.entries.get_mut(&(packet, holder)) {
            if entry.done.insert(dest) {
                self.stats.completions += 1;
            }
        }
    }

    /// Marks a previously settled destination live again — a returned
    /// packet proved the downstream handling failed after the fact, so a
    /// replay must route it anew.
    pub fn note_undone(&mut self, holder: NodeId, packet: PacketId, dest: NodeId) {
        if let Some(entry) = self.entries.get_mut(&(packet, holder)) {
            entry.done.remove(&dest);
        }
    }

    /// Retires the entry: the broker no longer holds the packet at all.
    pub fn retire(&mut self, holder: NodeId, packet: PacketId) {
        if self.entries.remove(&(packet, holder)).is_some() {
            self.stats.retires += 1;
        }
    }

    /// The surviving entries of a crash-restarted broker, for replay.
    /// Entries stay journalled — the broker still holds the packets until
    /// the replayed exploration retires them through the normal flow.
    #[must_use]
    pub fn replay_for(&mut self, holder: NodeId) -> Vec<(PacketId, JournalEntry)> {
        // The map is keyed `(packet, holder)` in a `BTreeMap`, so the
        // filtered view is already in ascending packet-id order.
        let hits: Vec<(PacketId, JournalEntry)> = self
            .entries
            .iter()
            .filter(|((_, h), _)| *h == holder)
            .map(|(&(id, _), entry)| (id, entry.clone()))
            .collect();
        self.stats.replays += hits.len() as u64;
        hits
    }

    /// Removes and returns every entry held by `holder` — custody handoff
    /// when a broker is confirmed dead or departed. Unlike
    /// [`replay_for`](InFlightJournal::replay_for) (the holder itself comes
    /// back and resumes), the entries leave the journal: the caller
    /// re-records them under their new custodian.
    #[must_use]
    pub fn take_for(&mut self, holder: NodeId) -> Vec<(PacketId, JournalEntry)> {
        let keys: Vec<(PacketId, NodeId)> = self
            .entries
            .keys()
            .filter(|(_, h)| *h == holder)
            .copied()
            .collect();
        let mut hits = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(entry) = self.entries.remove(&key) {
                hits.push((key.0, entry));
            }
        }
        self.stats.handoffs += hits.len() as u64;
        hits
    }

    /// The journal entry for one `(packet, holder)` pair, if present.
    #[must_use]
    pub fn entry(&self, holder: NodeId, packet: PacketId) -> Option<&JournalEntry> {
        self.entries.get(&(packet, holder))
    }

    /// Looks up `holder`'s custody of the message identified by its
    /// `(topic, publisher, seq)` stream coordinates — how a NACK, which
    /// names sequence numbers rather than packet ids, finds the entry to
    /// re-serve. Returns the lowest-id match for determinism.
    #[must_use]
    pub fn find_custody(
        &self,
        holder: NodeId,
        topic: TopicId,
        publisher: NodeId,
        seq: u64,
    ) -> Option<(PacketId, &JournalEntry)> {
        self.entries
            .iter()
            .filter(|(&(_, h), entry)| {
                h == holder
                    && entry.packet.topic == topic
                    && entry.packet.publisher == publisher
                    && entry.packet.seq == seq
                    && !entry.packet.is_nack()
            })
            .map(|(&(id, _), entry)| (id, entry))
            .min_by_key(|(id, _)| *id)
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_pubsub::topic::TopicId;
    use dcrd_sim::SimTime;

    fn packet(id: u64, dests: &[u32]) -> Packet {
        Packet::new(
            PacketId::new(id),
            TopicId::new(0),
            NodeId::new(0),
            SimTime::ZERO,
            dests.iter().map(|&d| NodeId::new(d)).collect(),
        )
    }

    #[test]
    fn take_for_removes_only_the_dead_holders_custody() {
        let mut j = InFlightJournal::new();
        let dead = NodeId::new(2);
        let alive = NodeId::new(4);
        j.record(dead, &packet(1, &[5]), Some(NodeId::new(0)));
        j.record(dead, &packet(3, &[6]), None);
        j.record(alive, &packet(1, &[5]), Some(dead));
        let taken = j.take_for(dead);
        assert_eq!(taken.len(), 2);
        // Ascending packet-id order, entries intact.
        assert_eq!(taken[0].0, PacketId::new(1));
        assert_eq!(taken[1].0, PacketId::new(3));
        assert_eq!(taken[0].1.upstream, Some(NodeId::new(0)));
        // The dead broker's custody is gone; everyone else's survives.
        assert!(j.entry(dead, PacketId::new(1)).is_none());
        assert!(j.entry(alive, PacketId::new(1)).is_some());
        assert_eq!(j.len(), 1);
        assert_eq!(j.stats().handoffs, 2);
        // Re-taking finds nothing.
        assert!(j.take_for(dead).is_empty());
        assert_eq!(j.stats().handoffs, 2);
    }

    #[test]
    fn record_ack_retire_lifecycle() {
        let mut j = InFlightJournal::new();
        let holder = NodeId::new(3);
        let p = packet(7, &[5, 6]);
        j.record(holder, &p, Some(NodeId::new(1)));
        assert_eq!(j.len(), 1);
        let entry = j.entry(holder, p.id).expect("recorded");
        assert_eq!(entry.upstream, Some(NodeId::new(1)));
        assert!(entry.done.is_empty());

        j.note_done(holder, p.id, NodeId::new(5));
        assert!(j
            .entry(holder, p.id)
            .expect("still live")
            .done
            .contains(&NodeId::new(5)));

        j.retire(holder, p.id);
        assert!(j.is_empty());
        let s = j.stats();
        assert_eq!(
            (s.records, s.completions, s.retires, s.replays),
            (1, 1, 1, 0)
        );
    }

    #[test]
    fn rerecord_merges_without_double_counting() {
        let mut j = InFlightJournal::new();
        let holder = NodeId::new(2);
        j.record(holder, &packet(9, &[4]), None);
        j.note_done(holder, PacketId::new(9), NodeId::new(4));
        // A later copy widens the destination set; the settled set stays.
        j.record(holder, &packet(9, &[4, 5]), Some(NodeId::new(0)));
        assert_eq!(j.stats().records, 1);
        let entry = j.entry(holder, PacketId::new(9)).expect("live");
        assert_eq!(entry.packet.destinations.len(), 2);
        assert!(entry.done.contains(&NodeId::new(4)));
        assert_eq!(entry.upstream, Some(NodeId::new(0)));
        // A returning pruned copy must not shrink coverage: custody over
        // destination 5 (and NACK serve-eligibility for it) stays.
        j.record(holder, &packet(9, &[4]), Some(NodeId::new(0)));
        assert_eq!(
            j.entry(holder, PacketId::new(9))
                .expect("live")
                .packet
                .destinations
                .len(),
            2
        );
        // A returned packet resurrects the destination.
        j.note_undone(holder, PacketId::new(9), NodeId::new(4));
        assert!(j
            .entry(holder, PacketId::new(9))
            .expect("live")
            .done
            .is_empty());
    }

    #[test]
    fn replay_returns_only_the_holders_entries_sorted() {
        let mut j = InFlightJournal::new();
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        j.record(a, &packet(12, &[9]), None);
        j.record(a, &packet(3, &[9]), None);
        j.record(b, &packet(5, &[9]), None);
        let replayed = j.replay_for(a);
        assert_eq!(
            replayed.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![PacketId::new(3), PacketId::new(12)]
        );
        // Entries survive replay: the broker still holds them.
        assert_eq!(j.len(), 3);
        assert_eq!(j.stats().replays, 2);
        assert!(j.replay_for(NodeId::new(8)).is_empty());
    }

    #[test]
    fn custody_lookup_matches_stream_coordinates() {
        let mut j = InFlightJournal::new();
        let holder = NodeId::new(4);
        let p = packet(21, &[7]).with_seq(13);
        j.record(holder, &p, None);
        let (id, entry) = j
            .find_custody(holder, TopicId::new(0), NodeId::new(0), 13)
            .expect("custodian");
        assert_eq!(id, PacketId::new(21));
        assert_eq!(entry.packet.seq, 13);
        // Wrong seq, wrong publisher, wrong holder: no match.
        assert!(j
            .find_custody(holder, TopicId::new(0), NodeId::new(0), 12)
            .is_none());
        assert!(j
            .find_custody(holder, TopicId::new(0), NodeId::new(9), 13)
            .is_none());
        assert!(j
            .find_custody(NodeId::new(5), TopicId::new(0), NodeId::new(0), 13)
            .is_none());
    }

    #[test]
    fn operations_on_absent_entries_are_noops() {
        let mut j = InFlightJournal::new();
        j.note_done(NodeId::new(0), PacketId::new(1), NodeId::new(2));
        j.retire(NodeId::new(0), PacketId::new(1));
        assert!(j.is_empty());
        assert_eq!(j.stats(), JournalStats::default());
    }
}
