//! Smoke tests of every figure driver: each runs end to end at the
//! smallest quality and produces a structurally sound series. The *values*
//! are pinned by `tests/paper_claims.rs` at the workspace root; these catch
//! wiring mistakes (missing strategies, empty sweeps, NaNs).

use dcrd_experiments::figures;
use dcrd_experiments::scenario::Quality;
use dcrd_metrics::report::FigureSeries;

fn assert_sound(series: &FigureSeries, points: usize, strategies: usize) {
    assert_eq!(
        series.points.len(),
        points,
        "{}: wrong point count",
        series.id
    );
    for p in &series.points {
        assert_eq!(
            p.strategies.len(),
            strategies,
            "{}: wrong strategy count at x={}",
            series.id,
            p.x
        );
        for agg in &p.strategies {
            assert!(agg.runs() >= 1, "{}: empty aggregate", series.id);
            let (d, q, t) = (
                agg.delivery_ratio(),
                agg.qos_delivery_ratio(),
                agg.packets_per_subscriber(),
            );
            assert!((0.0..=1.0).contains(&d), "{}: delivery {d}", series.id);
            assert!((0.0..=1.0).contains(&q), "{}: QoS {q}", series.id);
            assert!(q <= d + 1e-12, "{}: QoS above delivery", series.id);
            assert!(t.is_finite() && t >= 0.0, "{}: traffic {t}", series.id);
        }
    }
    // Points ascend in x.
    for w in series.points.windows(2) {
        assert!(w[0].x < w[1].x, "{}: x not ascending", series.id);
    }
}

#[test]
fn fig3_smoke() {
    assert_sound(&figures::fig3(Quality::Smoke), 6, 5);
}

#[test]
fn fig4_smoke() {
    assert_sound(&figures::fig4(Quality::Smoke), 8, 5);
}

#[test]
fn fig5_smoke() {
    // Size sweep is the most expensive; trim via smoke quality only.
    assert_sound(&figures::fig5(Quality::Smoke), 6, 5);
}

#[test]
fn fig6_smoke() {
    let series = figures::fig6(Quality::Smoke);
    assert_sound(&series, 6, 5);
    // QoS must be non-decreasing in the deadline factor for DCRD.
    let dcrd_qos: Vec<f64> = series
        .points
        .iter()
        .map(|p| {
            p.strategies
                .iter()
                .find(|a| a.name() == "DCRD")
                .expect("DCRD present")
                .qos_delivery_ratio()
        })
        .collect();
    assert!(
        dcrd_qos.last().unwrap() >= dcrd_qos.first().unwrap(),
        "looser deadlines cannot hurt: {dcrd_qos:?}"
    );
}

#[test]
fn fig7_smoke() {
    let cdfs = figures::fig7(Quality::Smoke);
    assert_eq!(cdfs.len(), 2);
    for (label, series) in &cdfs {
        assert!(label.contains("fig7"));
        assert!(!series.is_empty());
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1, "{label}: CDF must be monotone");
        }
    }
}

#[test]
fn fig8_smoke() {
    // 4 strategies × 2 values of m at every loss rate.
    assert_sound(&figures::fig8(Quality::Smoke), 4, 8);
}

#[test]
fn ext_and_ablation_smoke() {
    assert_sound(&figures::ext_node_failures(Quality::Smoke), 4, 5);
    assert_sound(&figures::ext_burst_failures(Quality::Smoke), 4, 3);
    assert_sound(&figures::ablation_multipath(Quality::Smoke), 6, 2);
    assert_sound(&figures::ablation_reroute(Quality::Smoke), 6, 2);
    assert_sound(&figures::ablation_monitor(Quality::Smoke), 3, 2);
    assert_sound(&figures::ablation_ordering(Quality::Smoke), 3, 4);
    assert_sound(&figures::ablation_timeout(Quality::Smoke), 3, 1);
}
