//! Minimal SVG line charts for figure series — no plotting dependency.
//!
//! Renders a [`FigureSeries`] metric (or any `(x, y)` line set) as a
//! self-contained SVG with axes, ticks, grid, legend and per-series
//! markers, so `dcrd-experiments --out` can regenerate the paper's figures
//! as pictures, not just tables.

use crate::report::{FigureSeries, MetricKind};

/// One polyline to draw.
#[derive(Debug, Clone, PartialEq)]
pub struct PlotSeries {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in ascending x order.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlotConfig {
    /// Chart title.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Plot x on a log₁₀ scale (Fig. 8's loss-rate axis).
    pub log_x: bool,
    /// Fix the y range (e.g. `Some((0.7, 1.0))` to match the paper's axes);
    /// `None` auto-scales with margin.
    pub y_range: Option<(f64, f64)>,
}

impl Default for PlotConfig {
    fn default() -> Self {
        PlotConfig {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 640,
            height: 440,
            log_x: false,
            y_range: None,
        }
    }
}

/// Color-blind-safe categorical palette (Okabe–Ito).
const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
];
const MARKERS: [&str; 4] = ["circle", "square", "diamond", "triangle"];

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(0.001..1000.0).contains(&a) {
        format!("{v:.0e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

fn marker_svg(kind: &str, x: f64, y: f64, color: &str) -> String {
    match kind {
        "square" => format!(
            r#"<rect x="{:.1}" y="{:.1}" width="7" height="7" fill="{color}"/>"#,
            x - 3.5,
            y - 3.5
        ),
        "diamond" => format!(
            r#"<polygon points="{:.1},{:.1} {:.1},{:.1} {:.1},{:.1} {:.1},{:.1}" fill="{color}"/>"#,
            x,
            y - 4.5,
            x + 4.5,
            y,
            x,
            y + 4.5,
            x - 4.5,
            y
        ),
        "triangle" => format!(
            r#"<polygon points="{:.1},{:.1} {:.1},{:.1} {:.1},{:.1}" fill="{color}"/>"#,
            x,
            y - 4.5,
            x + 4.0,
            y + 3.5,
            x - 4.0,
            y + 3.5
        ),
        _ => format!(r#"<circle cx="{x:.1}" cy="{y:.1}" r="3.5" fill="{color}"/>"#),
    }
}

/// Renders polylines as a complete SVG document.
///
/// # Panics
///
/// Panics if `series` is empty or contains an empty line.
#[must_use]
pub fn render_svg(series: &[PlotSeries], config: &PlotConfig) -> String {
    assert!(!series.is_empty(), "need at least one series");
    for s in series {
        assert!(!s.points.is_empty(), "series {} has no points", s.label);
    }
    let tx = |x: f64| if config.log_x { x.log10() } else { x };

    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| tx(x)))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(_, y)| y))
        .collect();
    let (x_min, x_max) = (
        xs.iter().copied().fold(f64::INFINITY, f64::min),
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let (mut y_min, mut y_max) = match config.y_range {
        Some((lo, hi)) => (lo, hi),
        None => {
            let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let pad = ((hi - lo) * 0.08).max(1e-9);
            (lo - pad, hi + pad)
        }
    };
    if (y_max - y_min).abs() < 1e-12 {
        y_min -= 0.5;
        y_max += 0.5;
    }
    let x_span = (x_max - x_min).max(1e-12);

    let w = f64::from(config.width);
    let h = f64::from(config.height);
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let px = |x: f64| MARGIN_L + (tx(x) - x_min) / x_span * plot_w;
    let py = |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

    let mut out = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">
<rect width="{w}" height="{h}" fill="white"/>
<text x="{:.1}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>
"#,
        MARGIN_L + plot_w / 2.0,
        xml_escape(&config.title)
    );

    // Grid + ticks.
    let ticks = 5usize;
    for i in 0..=ticks {
        let f = i as f64 / ticks as f64;
        let gx = MARGIN_L + f * plot_w;
        let gy = MARGIN_T + f * plot_h;
        let xv = x_min + f * x_span;
        let yv = y_max - f * (y_max - y_min);
        let x_label = if config.log_x {
            fmt_tick(10f64.powf(xv))
        } else {
            fmt_tick(xv)
        };
        out.push_str(&format!(
            r##"<line x1="{gx:.1}" y1="{MARGIN_T}" x2="{gx:.1}" y2="{:.1}" stroke="#e0e0e0"/>
<text x="{gx:.1}" y="{:.1}" text-anchor="middle">{x_label}</text>
<line x1="{MARGIN_L}" y1="{gy:.1}" x2="{:.1}" y2="{gy:.1}" stroke="#e0e0e0"/>
<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>
"##,
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 18.0,
            MARGIN_L + plot_w,
            MARGIN_L - 8.0,
            gy + 4.0,
            fmt_tick(yv)
        ));
    }
    // Axes.
    out.push_str(&format!(
        r#"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="black"/>
<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="13">{}</text>
<text x="16" y="{:.1}" text-anchor="middle" font-size="13" transform="rotate(-90 16 {:.1})">{}</text>
"#,
        MARGIN_L + plot_w / 2.0,
        h - 10.0,
        xml_escape(&config.x_label),
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        xml_escape(&config.y_label)
    ));

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let marker = MARKERS[i % MARKERS.len()];
        let pts: String = s
            .points
            .iter()
            .map(|&(x, y)| {
                format!(
                    "{:.1},{:.1}",
                    px(x),
                    py(y).clamp(MARGIN_T, MARGIN_T + plot_h)
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            r#"<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="2"/>
"#
        ));
        for &(x, y) in &s.points {
            out.push_str(&marker_svg(
                marker,
                px(x),
                py(y).clamp(MARGIN_T, MARGIN_T + plot_h),
                color,
            ));
            out.push('\n');
        }
        // Legend entry.
        let lx = MARGIN_L + 10.0;
        let ly = MARGIN_T + 14.0 + i as f64 * 16.0;
        out.push_str(&format!(
            r#"<line x1="{lx}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>
<text x="{:.1}" y="{:.1}">{}</text>
"#,
            lx + 22.0,
            lx + 28.0,
            ly + 4.0,
            xml_escape(&s.label)
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Renders one metric of a figure series as SVG (one line per strategy).
#[must_use]
pub fn figure_svg(series: &FigureSeries, metric: MetricKind, log_x: bool) -> String {
    let names = series.strategy_names();
    let lines: Vec<PlotSeries> = names
        .iter()
        .enumerate()
        .map(|(i, name)| PlotSeries {
            label: (*name).to_string(),
            points: series
                .points
                .iter()
                .map(|p| (p.x, metric.value(&p.strategies[i])))
                .collect(),
        })
        .collect();
    let config = PlotConfig {
        title: format!("{} — {}", series.id, metric.title()),
        x_label: series.x_label.clone(),
        y_label: metric.title().to_string(),
        log_x,
        y_range: match metric {
            MetricKind::Delivery | MetricKind::Qos => Some((0.55, 1.005)),
            MetricKind::Traffic => None,
        },
        ..PlotConfig::default()
    };
    render_svg(&lines, &config)
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(label: &str, pts: &[(f64, f64)]) -> PlotSeries {
        PlotSeries {
            label: label.to_string(),
            points: pts.to_vec(),
        }
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = render_svg(
            &[
                line("DCRD", &[(0.0, 1.0), (0.05, 0.98), (0.1, 0.96)]),
                line("D-Tree", &[(0.0, 1.0), (0.05, 0.9), (0.1, 0.85)]),
            ],
            &PlotConfig {
                title: "test".into(),
                x_label: "Pf".into(),
                y_label: "ratio".into(),
                ..PlotConfig::default()
            },
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("DCRD"));
        assert!(svg.contains("D-Tree"));
        assert!(svg.contains("Pf"));
        // Markers: 3 points per series.
        assert!(svg.matches("<circle").count() >= 3);
    }

    #[test]
    fn log_axis_ticks_show_raw_values() {
        let svg = render_svg(
            &[line(
                "x",
                &[(1e-4, 0.9), (1e-3, 0.92), (1e-2, 0.94), (1e-1, 0.96)],
            )],
            &PlotConfig {
                log_x: true,
                ..PlotConfig::default()
            },
        );
        assert!(
            svg.contains("1e-4") || svg.contains("1e-1"),
            "log ticks missing: expected exponent labels"
        );
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let svg = render_svg(
            &[line("flat", &[(0.0, 1.0), (1.0, 1.0)])],
            &PlotConfig::default(),
        );
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn escapes_labels() {
        let svg = render_svg(
            &[line("a<b&c>", &[(0.0, 0.0), (1.0, 1.0)])],
            &PlotConfig {
                title: "x < y".into(),
                ..PlotConfig::default()
            },
        );
        assert!(svg.contains("a&lt;b&amp;c&gt;"));
        assert!(svg.contains("x &lt; y"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_input_rejected() {
        let _ = render_svg(&[], &PlotConfig::default());
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(3.0), "3");
        assert_eq!(fmt_tick(0.02), "0.02");
        assert_eq!(fmt_tick(12345.0), "1e4");
        assert_eq!(fmt_tick(1e-4), "1e-4");
    }
}
