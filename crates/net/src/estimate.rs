//! Per-link quality estimates `⟨α, γ⟩`.
//!
//! DCRD's routing state is computed from each link's expected one-way delay
//! `α⁽¹⁾` and single-transmission delivery ratio `γ⁽¹⁾`, which the paper
//! says "can be collected through either link monitoring or online
//! measurements" (§III-A). Brokers re-read these estimates every monitoring
//! interval (5 minutes in the paper) — much slower than the 1-second failure
//! churn, which is exactly why DCRD needs to adapt at forwarding time.
//!
//! Two sources are provided:
//!
//! * [`analytic_estimates`] — the steady-state values a long-running monitor
//!   would converge to: `α` is the configured link delay and
//!   `γ = (1 − Pf)(1 − Pl)` (a transmission succeeds iff the link is not in
//!   a failed epoch and the packet is not randomly lost).
//! * [`EwmaMonitor`] — an online exponentially-weighted estimator fed by
//!   probe outcomes, for runs that measure rather than assume link quality.

use dcrd_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, Topology};

/// A link quality estimate: expected one-way delay and single-transmission
/// delivery ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkEstimate {
    /// Expected one-way delay `α⁽¹⁾` of a successful transmission.
    pub alpha: SimDuration,
    /// Probability `γ⁽¹⁾ ∈ [0, 1]` that a single transmission is delivered
    /// (and acknowledged).
    pub gamma: f64,
}

impl LinkEstimate {
    /// Creates an estimate.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]`.
    #[must_use]
    pub fn new(alpha: SimDuration, gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range: {gamma}");
        LinkEstimate { alpha, gamma }
    }
}

/// Per-edge estimates for a whole topology, indexed by [`EdgeId`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkEstimates {
    estimates: Vec<LinkEstimate>,
}

impl LinkEstimates {
    /// Builds from a dense per-edge vector.
    ///
    /// # Panics
    ///
    /// Panics if `estimates` is empty.
    #[must_use]
    pub fn from_vec(estimates: Vec<LinkEstimate>) -> Self {
        assert!(
            !estimates.is_empty(),
            "estimates must cover at least one edge"
        );
        LinkEstimates { estimates }
    }

    /// The estimate for `edge`. An unknown edge reads as dead
    /// (`γ = 0`, zero delay) — the pessimistic default for an id the
    /// monitor never covered.
    #[must_use]
    pub fn get(&self, edge: EdgeId) -> LinkEstimate {
        self.estimates
            .get(edge.index())
            .copied()
            .unwrap_or(LinkEstimate {
                alpha: SimDuration::ZERO,
                gamma: 0.0,
            })
    }

    /// Number of edges covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Whether no edges are covered (never true for a built value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }
}

/// The steady-state estimates implied by the simulation parameters:
/// `α = link delay`, `γ = (1 − pf)(1 − pl)`.
///
/// # Panics
///
/// Panics if `pf` or `pl` is outside `[0, 1]`.
#[must_use]
pub fn analytic_estimates(topo: &Topology, pf: f64, pl: f64) -> LinkEstimates {
    assert!((0.0..=1.0).contains(&pf), "pf out of range: {pf}");
    assert!((0.0..=1.0).contains(&pl), "pl out of range: {pl}");
    let gamma = (1.0 - pf) * (1.0 - pl);
    LinkEstimates {
        estimates: topo
            .edge_ids()
            .map(|e| LinkEstimate {
                alpha: topo.delay(e),
                gamma,
            })
            .collect(),
    }
}

/// Online per-link EWMA estimator fed by probe (or data-transmission)
/// outcomes.
///
/// `γ` is the EWMA of success indicators; `α` is the EWMA of the measured
/// one-way delay of successful probes. Until the first sample arrives a
/// link reports its prior.
///
/// # Example
///
/// ```
/// use dcrd_net::estimate::{EwmaMonitor, LinkEstimate};
/// use dcrd_net::graph::EdgeId;
/// use dcrd_sim::SimDuration;
///
/// let prior = LinkEstimate::new(SimDuration::from_millis(30), 1.0);
/// let mut mon = EwmaMonitor::new(4, prior, 0.2);
/// for _ in 0..100 {
///     mon.observe(EdgeId::new(0), Some(SimDuration::from_millis(20)));
///     mon.observe(EdgeId::new(1), None); // lost probe
/// }
/// assert!(mon.estimates().get(EdgeId::new(0)).gamma > 0.99);
/// assert!(mon.estimates().get(EdgeId::new(1)).gamma < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct EwmaMonitor {
    weight: f64,
    prior: LinkEstimate,
    gamma: Vec<f64>,
    alpha_us: Vec<f64>,
    samples: Vec<u64>,
}

impl EwmaMonitor {
    /// Creates a monitor over `num_edges` links with smoothing `weight`
    /// (the weight of each new sample, e.g. `0.1`).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is outside `(0, 1]` or `num_edges == 0`.
    #[must_use]
    pub fn new(num_edges: usize, prior: LinkEstimate, weight: f64) -> Self {
        assert!(num_edges > 0, "monitor needs at least one edge");
        assert!(
            weight > 0.0 && weight <= 1.0,
            "weight out of range: {weight}"
        );
        EwmaMonitor {
            weight,
            prior,
            gamma: vec![prior.gamma; num_edges],
            alpha_us: vec![prior.alpha.as_micros() as f64; num_edges],
            samples: vec![0; num_edges],
        }
    }

    /// Records the outcome of one probe over `edge`: `Some(delay)` for a
    /// success with its measured one-way delay, `None` for a loss.
    pub fn observe(&mut self, edge: EdgeId, outcome: Option<SimDuration>) {
        let i = edge.index();
        let (Some(samples), Some(gamma), Some(alpha_us)) = (
            self.samples.get_mut(i),
            self.gamma.get_mut(i),
            self.alpha_us.get_mut(i),
        ) else {
            return; // probe for an edge this monitor does not cover
        };
        *samples = samples.saturating_add(1);
        let w = self.weight;
        match outcome {
            Some(delay) => {
                *gamma = (1.0 - w) * *gamma + w;
                *alpha_us = (1.0 - w) * *alpha_us + w * delay.as_micros() as f64;
            }
            None => {
                *gamma *= 1.0 - w;
            }
        }
    }

    /// Number of probes recorded for `edge`.
    #[must_use]
    pub fn samples(&self, edge: EdgeId) -> u64 {
        self.samples[edge.index()]
    }

    /// The prior used before any samples arrive.
    #[must_use]
    pub fn prior(&self) -> LinkEstimate {
        self.prior
    }

    /// A snapshot of the current estimates for all links.
    #[must_use]
    pub fn estimates(&self) -> LinkEstimates {
        LinkEstimates {
            estimates: self
                .gamma
                .iter()
                .zip(&self.alpha_us)
                .map(|(&g, &a)| LinkEstimate {
                    alpha: SimDuration::from_micros(a.round() as u64),
                    gamma: g.clamp(0.0, 1.0),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{full_mesh, DelayRange};
    use dcrd_sim::rng::rng_for;
    use rand::Rng;

    #[test]
    fn analytic_values() {
        let mut rng = rng_for(0, "est");
        let topo = full_mesh(5, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.06, 1e-4);
        assert_eq!(est.len(), topo.num_edges());
        assert!(!est.is_empty());
        for e in topo.edge_ids() {
            let le = est.get(e);
            assert_eq!(le.alpha, topo.delay(e));
            assert!((le.gamma - 0.94 * 0.9999).abs() < 1e-12);
        }
    }

    #[test]
    fn analytic_extremes() {
        let mut rng = rng_for(1, "est");
        let topo = full_mesh(3, DelayRange::PAPER, &mut rng);
        assert!(
            (analytic_estimates(&topo, 0.0, 0.0)
                .get(EdgeId::new(0))
                .gamma
                - 1.0)
                .abs()
                < 1e-12
        );
        assert!(
            analytic_estimates(&topo, 1.0, 0.0)
                .get(EdgeId::new(0))
                .gamma
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn ewma_converges_to_true_rate() {
        let prior = LinkEstimate::new(SimDuration::from_millis(30), 1.0);
        let mut mon = EwmaMonitor::new(1, prior, 0.05);
        let mut rng = rng_for(5, "ewma");
        let true_gamma = 0.8;
        let true_delay = SimDuration::from_millis(22);
        for _ in 0..2000 {
            let outcome = if rng.gen::<f64>() < true_gamma {
                Some(true_delay)
            } else {
                None
            };
            mon.observe(EdgeId::new(0), outcome);
        }
        let est = mon.estimates().get(EdgeId::new(0));
        assert!((est.gamma - true_gamma).abs() < 0.1, "gamma={}", est.gamma);
        assert!(
            (est.alpha.as_millis_f64() - 22.0).abs() < 1.0,
            "alpha={}",
            est.alpha
        );
        assert_eq!(mon.samples(EdgeId::new(0)), 2000);
    }

    #[test]
    fn ewma_prior_used_before_samples() {
        let prior = LinkEstimate::new(SimDuration::from_millis(15), 0.9);
        let mon = EwmaMonitor::new(3, prior, 0.1);
        let est = mon.estimates().get(EdgeId::new(2));
        assert_eq!(est.alpha, prior.alpha);
        assert!((est.gamma - 0.9).abs() < 1e-12);
        assert_eq!(mon.prior(), prior);
        assert_eq!(mon.samples(EdgeId::new(2)), 0);
    }

    #[test]
    fn ewma_matches_analytic_for_simulated_link() {
        // A probe stream over a link with pf=0.1, pl=0.05 should converge to
        // the analytic gamma = 0.9*0.95.
        let prior = LinkEstimate::new(SimDuration::from_millis(30), 1.0);
        let mut mon = EwmaMonitor::new(1, prior, 0.02);
        let mut rng = rng_for(6, "ewma2");
        for _ in 0..5000 {
            let up = rng.gen::<f64>() >= 0.1;
            let kept = rng.gen::<f64>() >= 0.05;
            let outcome = (up && kept).then_some(SimDuration::from_millis(30));
            mon.observe(EdgeId::new(0), outcome);
        }
        let est = mon.estimates().get(EdgeId::new(0));
        assert!((est.gamma - 0.9 * 0.95).abs() < 0.05, "gamma={}", est.gamma);
    }

    #[test]
    #[should_panic(expected = "gamma out of range")]
    fn estimate_rejects_bad_gamma() {
        let _ = LinkEstimate::new(SimDuration::ZERO, 1.5);
    }

    #[test]
    #[should_panic(expected = "weight out of range")]
    fn monitor_rejects_bad_weight() {
        let prior = LinkEstimate::new(SimDuration::ZERO, 1.0);
        let _ = EwmaMonitor::new(1, prior, 0.0);
    }
}
