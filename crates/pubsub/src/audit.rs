//! Online invariant auditing.
//!
//! When enabled ([`RuntimeConfig::audit`]), the runtime feeds every
//! transmission-level event (the same stream [`Trace`] captures, plus ACK
//! arrivals) through an [`InvariantAuditor`] *during* the run. The auditor
//! checks protocol invariants that no amount of delivery-ratio averaging
//! can: a chaos run that delivers 60% but loops packets forever, delivers
//! duplicates to the application, or conjures ACKs out of thin air is
//! broken even if its curves look plausible.
//!
//! Checked invariants:
//!
//! * **Loop bound** — no message crosses one directed link more than
//!   [`AuditConfig::max_edge_uses`] times. Bounded re-probing of a failed
//!   link is designed DCRD behavior; an unbounded loop is a livelock.
//! * **Transmission budget** — total transmissions of one message stay
//!   under [`AuditConfig::max_sends_per_packet`].
//! * **No duplicate final deliveries** — each `(message, subscriber)` pair
//!   is delivered to the application at most once.
//! * **ACK discipline** — every ACK received over a directed link matches
//!   an earlier data transmission that *arrived* in the opposite direction
//!   (at most one ACK per arrival).
//! * **End-to-end completeness** (opt-in,
//!   [`AuditConfig::sequence_check`]) — every `(message, subscriber)` pair
//!   the publisher created an expectation for is eventually delivered.
//!   Only meaningful with crash recovery enabled: without it, crashed
//!   brokers legitimately lose packets.
//!
//! Recovery runs also produce *benign* duplicates: crash replay and NACK
//! re-sends can race the original copy, and the subscriber's dedup window
//! absorbs the extra copy ([`TraceEvent::Suppress`]). The auditor counts
//! those separately ([`AuditReport::replay_suppressions`]) instead of
//! flagging them — only a genuine double application delivery is a
//! [`Violation::DuplicateDelivery`].
//!
//! The auditor is deliberately cheap (hash-map counters per active packet)
//! so it can run inside every chaos sweep, and it reports violations as
//! data ([`AuditReport`]) rather than panicking: an experiment survives a
//! buggy strategy and the report tells you what broke.
//!
//! [`RuntimeConfig::audit`]: crate::runtime::RuntimeConfig::audit
//! [`Trace`]: crate::trace::Trace

use std::collections::BTreeMap;
use std::fmt;

use dcrd_net::NodeId;
use dcrd_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::packet::{Packet, PacketId};
use crate::trace::{TraceEvent, TxOutcome};

/// Bounds the auditor enforces. These are livelock detectors, not tight
/// performance bounds: set them comfortably above anything a correct
/// strategy can produce (e.g. from the path budget and per-node attempt
/// caps) so that a violation is always a real protocol failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditConfig {
    /// Maximum times one message may cross one directed link.
    pub max_edge_uses: u32,
    /// Maximum total transmissions of one message.
    pub max_sends_per_packet: u64,
    /// Enforce end-to-end completeness: every published `(message,
    /// subscriber)` pair must be delivered by the end of the run. Enable
    /// only when the strategy runs with crash recovery — otherwise crashes
    /// legitimately lose packets and every loss trips a false positive.
    #[serde(default)]
    pub sequence_check: bool,
}

impl AuditConfig {
    /// Bounds derived from DCRD's own budgets for an `nodes`-broker
    /// overlay: per-directed-link uses capped by the per-node attempts cap
    /// (`max_attempts_per_node`, with 4× headroom), total sends by that cap
    /// across every broker.
    #[must_use]
    pub fn for_overlay(nodes: usize, max_attempts_per_node: u32) -> Self {
        AuditConfig {
            max_edge_uses: max_attempts_per_node.saturating_mul(4),
            max_sends_per_packet: u64::from(max_attempts_per_node)
                .saturating_mul(nodes as u64)
                .saturating_mul(4),
            sequence_check: false,
        }
    }

    /// Enables the end-to-end completeness check (builder style).
    #[must_use]
    pub fn with_sequence_check(mut self) -> Self {
        self.sequence_check = true;
        self
    }
}

impl Default for AuditConfig {
    fn default() -> Self {
        // The router's default attempts cap is 64; assume overlays of up to
        // ~100 brokers when no topology-specific bound is supplied.
        AuditConfig::for_overlay(100, 64)
    }
}

/// One invariant violation.
///
/// Variants order by severity class in declaration order (the derived
/// `Ord`): traffic bounds first, delivery correctness next, churn and
/// overload gates last. Reports keep detection order; sorting a violation
/// list groups it by kind and is stable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Violation {
    /// A message crossed one directed link beyond the loop bound.
    LoopBound {
        /// The offending message.
        packet: PacketId,
        /// Sending broker of the overused directed link.
        from: NodeId,
        /// Receiving broker of the overused directed link.
        to: NodeId,
        /// Observed crossings.
        uses: u32,
    },
    /// A message exceeded its total transmission budget.
    TransmissionBudget {
        /// The offending message.
        packet: PacketId,
        /// Observed transmissions.
        sends: u64,
    },
    /// A `(message, subscriber)` pair was delivered more than once.
    DuplicateDelivery {
        /// The message.
        packet: PacketId,
        /// The subscriber that received it again.
        node: NodeId,
    },
    /// An ACK arrived without a matching data arrival (or a second ACK for
    /// one arrival).
    AckWithoutArrival {
        /// The message.
        packet: PacketId,
        /// The broker that supposedly acknowledged.
        from: NodeId,
        /// The sender that received the ACK.
        to: NodeId,
    },
    /// A published `(message, subscriber)` pair was never delivered — a gap
    /// in the subscriber's sequence that recovery failed to close. Only
    /// emitted when [`AuditConfig::sequence_check`] is on.
    SequenceGap {
        /// The undelivered message.
        packet: PacketId,
        /// The subscriber with the gap.
        subscriber: NodeId,
        /// The message's per-(topic, publisher) sequence number.
        seq: u64,
    },
    /// A message was delivered on a broker the churn model had already
    /// removed from the overlay (departed or confirmed dead). Flagged by
    /// the runtime's churn gate — a correct run never produces one.
    DeliveryToDeparted {
        /// The message.
        packet: PacketId,
        /// The departed broker that supposedly delivered.
        node: NodeId,
    },
    /// A churn-absent broker originated a transmission — a routing loop or
    /// stale forwarding state running through a dead broker.
    RouteThroughDead {
        /// The message.
        packet: PacketId,
        /// The absent broker that supposedly transmitted.
        node: NodeId,
    },
    /// An overloaded broker shed a packet whose delay requirement was still
    /// satisfiable (some destination could still have been reached within
    /// its deadline) while a packet that was already doomed stayed in the
    /// queue. Flagged by the runtime's overload gate: the delay-cognizant
    /// least-slack policy never produces one; a naive tail-drop policy
    /// under overload does.
    UnjustifiedShed {
        /// The message that was shed.
        packet: PacketId,
        /// The overloaded broker that shed it.
        node: NodeId,
    },
    /// A broker was still routing on pre-partition membership state more
    /// than the configured number of gossip rounds after the control
    /// plane healed: the dissemination layer failed to spread a
    /// membership rumor within its staleness bound even though nothing
    /// blocked it. Flagged by the runtime's gossip wiring — a working
    /// epidemic never produces one.
    StaleRouteAfterConvergence {
        /// The broker that has not learned the membership delta.
        node: NodeId,
        /// Connected-but-unconverged gossip rounds accumulated.
        rounds: u64,
    },
    /// A strategy timer asked for an instant strictly before the current
    /// simulated time and was clamped to `now` by the event queue. Flagged
    /// by the runtime's `SetTimer` gate: the caller computed a stale
    /// deadline, and without the clamp the event would have reordered
    /// causality. `at == now` (a `now + 0` timer) is legitimate and never
    /// flagged.
    PastEventClamp {
        /// The broker whose timer was clamped.
        node: NodeId,
        /// The requested (past) instant.
        at: SimTime,
        /// The simulated time at which the request was made.
        now: SimTime,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::LoopBound {
                packet,
                from,
                to,
                uses,
            } => write!(
                f,
                "loop bound: packet {} crossed link {}->{} {} times",
                packet.raw(),
                from.index(),
                to.index(),
                uses
            ),
            Violation::TransmissionBudget { packet, sends } => write!(
                f,
                "transmission budget: packet {} sent {} times",
                packet.raw(),
                sends
            ),
            Violation::DuplicateDelivery { packet, node } => write!(
                f,
                "duplicate delivery: packet {} delivered again at node {}",
                packet.raw(),
                node.index()
            ),
            Violation::AckWithoutArrival { packet, from, to } => write!(
                f,
                "ack without arrival: packet {} acked {}->{}",
                packet.raw(),
                from.index(),
                to.index()
            ),
            Violation::SequenceGap {
                packet,
                subscriber,
                seq,
            } => write!(
                f,
                "sequence gap: packet {} (seq {}) never delivered to node {}",
                packet.raw(),
                seq,
                subscriber.index()
            ),
            Violation::DeliveryToDeparted { packet, node } => write!(
                f,
                "delivery to departed: packet {} delivered on departed node {}",
                packet.raw(),
                node.index()
            ),
            Violation::RouteThroughDead { packet, node } => write!(
                f,
                "route through dead: packet {} transmitted by absent node {}",
                packet.raw(),
                node.index()
            ),
            Violation::UnjustifiedShed { packet, node } => write!(
                f,
                "unjustified shed: node {} shed still-satisfiable packet {} \
                 while keeping doomed traffic",
                node.index(),
                packet.raw()
            ),
            Violation::StaleRouteAfterConvergence { node, rounds } => write!(
                f,
                "stale route after convergence: node {} still on stale \
                 membership {} rounds after the control plane healed",
                node.index(),
                rounds
            ),
            Violation::PastEventClamp { node, at, now } => write!(
                f,
                "past-event clamp: node {} armed a timer for {at}, already \
                 {} behind the clock at {now}",
                node.index(),
                now.saturating_since(at),
            ),
        }
    }
}

/// How many violations are kept verbatim; beyond this only the count grows.
const MAX_RECORDED: usize = 64;

/// The outcome of one audited run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// The first [`MAX_RECORDED`] violations, in detection order.
    pub violations: Vec<Violation>,
    /// Total violations detected (may exceed `violations.len()`).
    pub total_violations: u64,
    /// Events the auditor observed.
    pub events_observed: u64,
    /// Benign duplicates absorbed by subscriber dedup windows (crash replay
    /// or NACK re-sends racing the original copy). Informational, not a
    /// violation.
    #[serde(default)]
    pub replay_suppressions: u64,
    /// Packets shed by overloaded brokers under the bounded service queue.
    /// Informational: a shed is only a violation when it abandons a
    /// still-satisfiable packet over a doomed one
    /// ([`Violation::UnjustifiedShed`]).
    #[serde(default)]
    pub sheds_observed: u64,
}

impl AuditReport {
    /// Whether the run upheld every invariant.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }
}

/// The online auditor. Create one per run, feed it every trace-level event
/// via [`observe`](InvariantAuditor::observe), then take the
/// [`AuditReport`] with [`finish`](InvariantAuditor::finish).
#[derive(Debug)]
pub struct InvariantAuditor {
    config: AuditConfig,
    /// Transmissions per `(message, from, to)` directed link.
    edge_uses: BTreeMap<(PacketId, NodeId, NodeId), u32>,
    /// Total transmissions per message.
    packet_sends: BTreeMap<PacketId, u64>,
    /// Deliveries per `(message, subscriber)` pair.
    delivered: BTreeMap<(PacketId, NodeId), u32>,
    /// Data arrivals not yet consumed by an ACK, per `(message, sender,
    /// receiver)`.
    unacked_arrivals: BTreeMap<(PacketId, NodeId, NodeId), u32>,
    /// Publish-time expectations, in publish order: `(message, sequence
    /// number, expected subscribers)`. Only populated when the sequence
    /// check is on.
    published: Vec<(PacketId, u64, Vec<NodeId>)>,
    report: AuditReport,
}

impl InvariantAuditor {
    /// Creates an auditor with the given bounds.
    #[must_use]
    pub fn new(config: AuditConfig) -> Self {
        InvariantAuditor {
            config,
            edge_uses: BTreeMap::new(),
            packet_sends: BTreeMap::new(),
            delivered: BTreeMap::new(),
            unacked_arrivals: BTreeMap::new(),
            published: Vec::new(),
            report: AuditReport::default(),
        }
    }

    /// Records the expectation set of a freshly published message (called
    /// by the runtime at publish time, data packets only). A no-op unless
    /// [`AuditConfig::sequence_check`] is enabled.
    pub fn observe_publish(&mut self, packet: &Packet) {
        if self.config.sequence_check && !packet.is_nack() {
            self.published
                .push((packet.id, packet.seq, packet.destinations.clone()));
        }
    }

    fn violate(&mut self, v: Violation) {
        self.report.total_violations += 1;
        if self.report.violations.len() < MAX_RECORDED {
            self.report.violations.push(v);
        }
    }

    /// Records a violation detected by the runtime itself rather than by
    /// the event-stream checks (e.g. the churn gate catching a delivery on
    /// a departed broker).
    pub fn flag(&mut self, v: Violation) {
        self.violate(v);
    }

    /// Feeds one event through the invariant checks.
    pub fn observe(&mut self, event: &TraceEvent) {
        self.report.events_observed += 1;
        match *event {
            TraceEvent::Send {
                from,
                to,
                packet,
                outcome,
                ..
            } => {
                let uses = self.edge_uses.entry((packet, from, to)).or_insert(0);
                *uses += 1;
                let uses = *uses;
                // Flag exactly at the boundary so one runaway packet yields
                // one violation per extra crossing, not silence.
                if uses == self.config.max_edge_uses + 1 {
                    self.violate(Violation::LoopBound {
                        packet,
                        from,
                        to,
                        uses,
                    });
                }
                let sends = self.packet_sends.entry(packet).or_insert(0);
                *sends += 1;
                let sends = *sends;
                if sends == self.config.max_sends_per_packet + 1 {
                    self.violate(Violation::TransmissionBudget { packet, sends });
                }
                if outcome == TxOutcome::Arrived {
                    *self.unacked_arrivals.entry((packet, from, to)).or_insert(0) += 1;
                }
            }
            TraceEvent::Deliver { node, packet, .. } => {
                let count = self.delivered.entry((packet, node)).or_insert(0);
                *count += 1;
                if *count > 1 {
                    self.violate(Violation::DuplicateDelivery { packet, node });
                }
            }
            TraceEvent::Ack {
                from, to, packet, ..
            } => {
                // The ACK from `from` back to `to` must consume one earlier
                // arrival of a data send `to → from`.
                match self.unacked_arrivals.get_mut(&(packet, to, from)) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => self.violate(Violation::AckWithoutArrival { packet, from, to }),
                }
            }
            TraceEvent::Suppress { .. } => {
                self.report.replay_suppressions += 1;
            }
            TraceEvent::Shed { .. } => {
                self.report.sheds_observed += 1;
            }
            TraceEvent::GiveUp { .. } => {}
        }
    }

    /// Finalizes the audit and returns the report. When the sequence check
    /// is on, every published `(message, subscriber)` pair without a
    /// delivery becomes a [`Violation::SequenceGap`].
    #[must_use]
    pub fn finish(mut self) -> AuditReport {
        if self.config.sequence_check {
            let published = std::mem::take(&mut self.published);
            for (packet, seq, subscribers) in published {
                for subscriber in subscribers {
                    if !self.delivered.contains_key(&(packet, subscriber)) {
                        self.violate(Violation::SequenceGap {
                            packet,
                            subscriber,
                            seq,
                        });
                    }
                }
            }
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_sim::SimTime;

    fn send(from: u32, to: u32, pkt: u64, outcome: TxOutcome) -> TraceEvent {
        TraceEvent::Send {
            at: SimTime::ZERO,
            from: NodeId::new(from),
            to: NodeId::new(to),
            packet: PacketId::new(pkt),
            destinations: 1,
            outcome,
        }
    }

    fn ack(from: u32, to: u32, pkt: u64) -> TraceEvent {
        TraceEvent::Ack {
            at: SimTime::ZERO,
            from: NodeId::new(from),
            to: NodeId::new(to),
            packet: PacketId::new(pkt),
        }
    }

    fn deliver(node: u32, pkt: u64) -> TraceEvent {
        TraceEvent::Deliver {
            at: SimTime::ZERO,
            node: NodeId::new(node),
            packet: PacketId::new(pkt),
        }
    }

    fn tight() -> AuditConfig {
        AuditConfig {
            max_edge_uses: 2,
            max_sends_per_packet: 4,
            sequence_check: false,
        }
    }

    /// One violation of every variant, in declaration (severity-class)
    /// order.
    fn one_of_each() -> Vec<Violation> {
        let p = PacketId::new(7);
        let n = NodeId::new(3);
        vec![
            Violation::LoopBound {
                packet: p,
                from: NodeId::new(1),
                to: NodeId::new(2),
                uses: 9,
            },
            Violation::TransmissionBudget {
                packet: p,
                sends: 99,
            },
            Violation::DuplicateDelivery { packet: p, node: n },
            Violation::AckWithoutArrival {
                packet: p,
                from: NodeId::new(1),
                to: NodeId::new(2),
            },
            Violation::SequenceGap {
                packet: p,
                subscriber: n,
                seq: 4,
            },
            Violation::DeliveryToDeparted { packet: p, node: n },
            Violation::RouteThroughDead { packet: p, node: n },
            Violation::UnjustifiedShed { packet: p, node: n },
            Violation::StaleRouteAfterConvergence {
                node: n,
                rounds: 47,
            },
        ]
    }

    #[test]
    fn violation_display_names_the_kind_and_the_actors() {
        let expected_kind = [
            "loop bound",
            "transmission budget",
            "duplicate delivery",
            "ack without arrival",
            "sequence gap",
            "delivery to departed",
            "route through dead",
            "unjustified shed",
            "stale route after convergence",
        ];
        let all = one_of_each();
        assert_eq!(all.len(), expected_kind.len());
        for (v, kind) in all.iter().zip(expected_kind) {
            let s = v.to_string();
            assert!(s.starts_with(kind), "{s:?} should start with {kind:?}");
            // Every message names the offending packet (round count 47 for
            // the packet-less staleness clause); per-variant detail fields
            // (counts, link endpoints, sequence numbers) surface too.
            assert!(s.contains('7'), "{s:?} should name packet 7");
        }
        let loop_bound = all[0].to_string();
        assert!(loop_bound.contains("1->2") && loop_bound.contains("9 times"));
        assert!(all[1].to_string().contains("99"));
        assert!(all[4].to_string().contains("seq 4"));
    }

    #[test]
    fn violation_ordering_follows_severity_class_declaration_order() {
        let canonical = one_of_each();
        // Sorting a reversed list restores declaration order: the derived
        // `Ord` groups by kind, so reports sort stably across runs.
        let mut shuffled: Vec<Violation> = canonical.iter().rev().copied().collect();
        shuffled.sort();
        assert_eq!(shuffled, canonical);
        // Idempotent: already-sorted input is a fixed point.
        let mut again = shuffled.clone();
        again.sort();
        assert_eq!(again, shuffled);
        // Within one kind, fields order the instances deterministically.
        let a = Violation::UnjustifiedShed {
            packet: PacketId::new(1),
            node: NodeId::new(0),
        };
        let b = Violation::UnjustifiedShed {
            packet: PacketId::new(2),
            node: NodeId::new(0),
        };
        assert!(a < b);
        assert!(
            canonical[0] < a,
            "traffic bounds sort before overload gates"
        );
    }

    #[test]
    fn sheds_are_counted_but_not_violations() {
        let mut a = InvariantAuditor::new(tight());
        a.observe(&send(0, 1, 7, TxOutcome::Arrived));
        a.observe(&TraceEvent::Shed {
            at: SimTime::ZERO,
            node: NodeId::new(1),
            packet: PacketId::new(7),
        });
        let report = a.finish();
        assert_eq!(report.sheds_observed, 1);
        assert!(report.is_clean());
    }

    #[test]
    fn clean_run_reports_clean() {
        let mut a = InvariantAuditor::new(tight());
        a.observe(&send(0, 1, 7, TxOutcome::Arrived));
        a.observe(&ack(1, 0, 7));
        a.observe(&deliver(1, 7));
        let report = a.finish();
        assert!(report.is_clean());
        assert_eq!(report.events_observed, 3);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn loop_bound_flags_excess_crossings() {
        let mut a = InvariantAuditor::new(tight());
        for _ in 0..3 {
            a.observe(&send(0, 1, 7, TxOutcome::Blocked));
        }
        let report = a.finish();
        assert_eq!(report.total_violations, 1);
        assert!(matches!(
            report.violations[0],
            Violation::LoopBound { uses: 3, .. }
        ));
    }

    #[test]
    fn transmission_budget_flags_total_sends() {
        let mut a = InvariantAuditor::new(tight());
        // 4 sends over distinct links: within the edge bound, over the
        // packet budget on the fifth.
        for to in 1..=4u32 {
            a.observe(&send(0, to, 9, TxOutcome::Lost));
        }
        assert!(a.report.total_violations == 0);
        a.observe(&send(0, 5, 9, TxOutcome::Lost));
        let report = a.finish();
        assert_eq!(report.total_violations, 1);
        assert!(matches!(
            report.violations[0],
            Violation::TransmissionBudget { sends: 5, .. }
        ));
    }

    #[test]
    fn duplicate_delivery_is_flagged_once_per_extra() {
        let mut a = InvariantAuditor::new(tight());
        a.observe(&deliver(3, 1));
        a.observe(&deliver(3, 1));
        a.observe(&deliver(3, 1));
        let report = a.finish();
        assert_eq!(report.total_violations, 2);
        assert!(matches!(
            report.violations[0],
            Violation::DuplicateDelivery { .. }
        ));
    }

    #[test]
    fn ack_discipline_requires_matching_arrival() {
        let mut a = InvariantAuditor::new(tight());
        // ACK with no arrival at all.
        a.observe(&ack(1, 0, 2));
        // Blocked send does not arm an ACK either.
        a.observe(&send(0, 1, 3, TxOutcome::Blocked));
        a.observe(&ack(1, 0, 3));
        // One arrival allows exactly one ACK.
        a.observe(&send(0, 1, 4, TxOutcome::Arrived));
        a.observe(&ack(1, 0, 4));
        a.observe(&ack(1, 0, 4));
        let report = a.finish();
        assert_eq!(report.total_violations, 3);
        assert!(report
            .violations
            .iter()
            .all(|v| matches!(v, Violation::AckWithoutArrival { .. })));
    }

    #[test]
    fn recorded_violations_are_capped() {
        let mut a = InvariantAuditor::new(tight());
        for i in 0..200u64 {
            a.observe(&deliver(0, i));
            a.observe(&deliver(0, i));
        }
        let report = a.finish();
        assert_eq!(report.total_violations, 200);
        assert_eq!(report.violations.len(), MAX_RECORDED);
        assert!(!report.is_clean());
    }

    #[test]
    fn sequence_check_flags_undelivered_pairs() {
        use crate::topic::TopicId;
        let mut a = InvariantAuditor::new(tight().with_sequence_check());
        let p = Packet::new(
            PacketId::new(7),
            TopicId::new(0),
            NodeId::new(0),
            SimTime::ZERO,
            vec![NodeId::new(1), NodeId::new(2)],
        )
        .with_seq(4);
        a.observe_publish(&p);
        a.observe(&deliver(1, 7));
        let report = a.finish();
        assert_eq!(report.total_violations, 1);
        assert!(matches!(
            report.violations[0],
            Violation::SequenceGap {
                subscriber,
                seq: 4,
                ..
            } if subscriber == NodeId::new(2)
        ));
    }

    #[test]
    fn sequence_check_off_ignores_publishes() {
        use crate::topic::TopicId;
        let mut a = InvariantAuditor::new(tight());
        let p = Packet::new(
            PacketId::new(7),
            TopicId::new(0),
            NodeId::new(0),
            SimTime::ZERO,
            vec![NodeId::new(1)],
        );
        a.observe_publish(&p);
        assert!(a.finish().is_clean());
    }

    #[test]
    fn suppressions_are_benign() {
        let mut a = InvariantAuditor::new(tight());
        a.observe(&deliver(1, 7));
        a.observe(&TraceEvent::Suppress {
            at: SimTime::ZERO,
            node: NodeId::new(1),
            packet: PacketId::new(7),
        });
        let report = a.finish();
        assert!(report.is_clean());
        assert_eq!(report.replay_suppressions, 1);
    }

    #[test]
    fn runtime_flagged_churn_violations_count() {
        let mut a = InvariantAuditor::new(tight());
        a.flag(Violation::DeliveryToDeparted {
            packet: PacketId::new(1),
            node: NodeId::new(4),
        });
        a.flag(Violation::RouteThroughDead {
            packet: PacketId::new(2),
            node: NodeId::new(4),
        });
        let report = a.finish();
        assert_eq!(report.total_violations, 2);
        assert!(matches!(
            report.violations[0],
            Violation::DeliveryToDeparted { .. }
        ));
        assert!(matches!(
            report.violations[1],
            Violation::RouteThroughDead { .. }
        ));
    }

    #[test]
    fn overlay_bounds_scale_with_attempt_cap() {
        let c = AuditConfig::for_overlay(20, 64);
        assert_eq!(c.max_edge_uses, 256);
        assert_eq!(c.max_sends_per_packet, 64 * 20 * 4);
        let d = AuditConfig::default();
        assert!(d.max_edge_uses >= 64);
    }
}
