//! `analyzer.toml`: the checked-in violation baseline.
//!
//! The file is a list of `[[allow]]` entries, each naming a rule, a file,
//! a distinguishing substring of the offending line, and a reason. Entries
//! are line-content based (not line-number based) so unrelated edits above
//! a suppressed site do not invalidate the baseline.
//!
//! The parser is a deliberate TOML subset (array-of-tables of string
//! key/values) so the analyzer stays dependency-free; `--write-baseline`
//! emits exactly this subset.

use crate::rules::Diagnostic;

/// One suppressed legacy violation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule id being suppressed (`DET001` …).
    pub rule: String,
    /// Workspace-relative path of the file.
    pub path: String,
    /// Substring of the offending (trimmed) source line.
    pub contains: String,
    /// Why the violation is allowed to stay.
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry suppresses `diag`.
    #[must_use]
    pub fn matches(&self, diag: &Diagnostic) -> bool {
        self.rule == diag.rule && self.path == diag.path && diag.snippet.contains(&self.contains)
    }
}

/// The parsed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// The `[[allow]]` entries, in file order.
    pub allows: Vec<AllowEntry>,
}

impl Baseline {
    /// Parses the `analyzer.toml` subset. Errors name the offending line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut allows: Vec<AllowEntry> = Vec::new();
        let mut in_allow = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                allows.push(AllowEntry::default());
                in_allow = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {}: unknown section `{line}`", idx + 1));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = \"value\"`", idx + 1));
            };
            if !in_allow {
                return Err(format!("line {}: key outside [[allow]]", idx + 1));
            }
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("line {}: value must be a quoted string", idx + 1))?;
            let entry = allows.last_mut().ok_or("no open [[allow]] entry")?;
            match key.trim() {
                "rule" => entry.rule = value.to_string(),
                "path" => entry.path = value.to_string(),
                "contains" => entry.contains = value.to_string(),
                "reason" => entry.reason = value.to_string(),
                other => {
                    return Err(format!("line {}: unknown key `{other}`", idx + 1));
                }
            }
        }
        for (i, e) in allows.iter().enumerate() {
            if e.rule.is_empty() || e.path.is_empty() || e.contains.is_empty() {
                return Err(format!(
                    "allow entry {} is missing rule/path/contains",
                    i + 1
                ));
            }
        }
        Ok(Baseline { allows })
    }

    /// Renders diagnostics as `[[allow]]` entries (`--write-baseline`).
    #[must_use]
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut out = String::new();
        for d in diags {
            out.push_str("[[allow]]\n");
            out.push_str(&format!("rule = \"{}\"\n", d.rule));
            out.push_str(&format!("path = \"{}\"\n", d.path));
            out.push_str(&format!("contains = \"{}\"\n", d.snippet.replace('"', "'")));
            out.push_str("reason = \"TODO: justify or fix\"\n\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line: 1,
            col: 1,
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn parses_allow_entries() {
        let text = "# comment\n[[allow]]\nrule = \"DET001\"\npath = \"crates/core/src/x.rs\"\ncontains = \"HashMap\"\nreason = \"legacy\"\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.allows.len(), 1);
        assert_eq!(b.allows[0].rule, "DET001");
        assert!(b.allows[0].matches(&diag(
            "DET001",
            "crates/core/src/x.rs",
            "let m: HashMap<u32, u32> = x;"
        )));
        assert!(!b.allows[0].matches(&diag(
            "DET001",
            "crates/core/src/y.rs",
            "let m: HashMap<u32, u32> = x;"
        )));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Baseline::parse("[weird]\n").is_err());
        assert!(Baseline::parse("rule = \"X\"\n").is_err());
        assert!(Baseline::parse("[[allow]]\nrule = unquoted\n").is_err());
        assert!(Baseline::parse("[[allow]]\nrule = \"X\"\n").is_err()); // incomplete
        assert!(Baseline::parse("[[allow]]\nnope = \"X\"\n").is_err());
    }

    #[test]
    fn empty_baseline_is_fine() {
        let b = Baseline::parse("# nothing suppressed\n").expect("parses");
        assert!(b.allows.is_empty());
    }

    #[test]
    fn render_round_trips_through_parse() {
        let d = diag("SAFE001", "crates/core/src/x.rs", "x.unwrap();");
        let text = Baseline::render(std::slice::from_ref(&d));
        let b = Baseline::parse(&text).expect("rendered baseline parses");
        assert_eq!(b.allows.len(), 1);
        assert!(b.allows[0].matches(&d));
    }
}
