//! Masking bait: Rust block comments nest, and the masker must track
//! depth — bait at any nesting level stays invisible.

/* outer /* inner value.unwrap() */ still comment: HashMap::new() */
pub fn nested() -> u32 {
    /* depth1 /* depth2 /* depth3 Instant::now() */ */ thread_rng() */
    7
}
