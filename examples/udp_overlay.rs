//! DCRD over real UDP sockets.
//!
//! The router ([`DcrdStrategy`]) is sans-IO: it only reacts to callbacks
//! and emits actions. The simulator drives it in the other examples; this
//! one drives the *same unmodified strategy* over real `std::net::UdpSocket`
//! datagrams on localhost — one socket and one thread per broker, the wire
//! format from `dcrd::pubsub::codec`, and real wall-clock ACK timers.
//!
//! To make rerouting visible, every broker randomly drops 20% of incoming
//! *data* datagrams (simulating flaky links); DCRD's per-hop failover picks
//! it up.
//!
//! ```text
//! cargo run --release --example udp_overlay
//! ```

use std::collections::BinaryHeap;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::net::estimate::analytic_estimates;
use dcrd::net::failure::{FailureModel, LinkFailureModel};
use dcrd::net::topology::{random_connected, DelayRange};
use dcrd::net::NodeId;
use dcrd::pubsub::codec::{decode_packet, encode_packet};
use dcrd::pubsub::packet::{Packet, PacketId};
use dcrd::pubsub::strategy::{Action, Actions, RoutingStrategy, RunParams, SetupContext, TimerKey};
use dcrd::pubsub::topic::{Subscription, TopicId};
use dcrd::pubsub::workload::{TopicSpec, Workload};
use dcrd::sim::rng::rng_for;
use dcrd::sim::{SimDuration, SimTime};
use rand::Rng;

const DATA: u8 = 0xD0;
const ACK: u8 = 0xA1;
const DROP_PROB: f64 = 0.20;

struct PendingTimer {
    due: Instant,
    key: TimerKey,
}
impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due) // min-heap
    }
}

fn main() {
    let n = 8;
    let seed = 7;
    let mut rng = rng_for(seed, "udp");
    let topo = random_connected(n, 4, DelayRange::PAPER, &mut rng);

    // One topic per broker 0 and 1; subscribers on the two farthest nodes.
    let workload = Workload::from_topics(vec![
        TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![
                Subscription::new(topo.node(n - 1), SimDuration::from_secs(1)),
                Subscription::new(topo.node(n - 2), SimDuration::from_secs(1)),
            ],
            burst: None,
        },
        TopicSpec {
            topic: TopicId::new(1),
            publisher: topo.node(1),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(
                topo.node(n - 1),
                SimDuration::from_secs(1),
            )],
            burst: None,
        },
    ]);

    // Sockets, one per broker.
    let sockets: Vec<Arc<UdpSocket>> = (0..n)
        .map(|_| Arc::new(UdpSocket::bind("127.0.0.1:0").expect("bind")))
        .collect();
    let addrs: Vec<std::net::SocketAddr> = sockets
        .iter()
        .map(|s| s.local_addr().expect("addr"))
        .collect();

    let estimates = analytic_estimates(&topo, DROP_PROB, 0.0);
    let _failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
    let deliveries = Arc::new(AtomicU64::new(0));
    let sends = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let mut handles = Vec::new();
    #[allow(clippy::needless_range_loop)] // each thread owns its index's socket AND node id
    for node_idx in 0..n {
        let topo = topo.clone();
        let workload = workload.clone();
        let estimates = estimates.clone();
        let socket = Arc::clone(&sockets[node_idx]);
        let addrs = addrs.clone();
        let deliveries = Arc::clone(&deliveries);
        let sends = Arc::clone(&sends);
        handles.push(std::thread::spawn(move || {
            let me = NodeId::new(node_idx as u32);
            let mut strategy = DcrdStrategy::new(DcrdConfig::default());
            // Scale ACK timeouts up: α is the overlay link budget, but we
            // still want a real timeout well above localhost RTT.
            let params = RunParams {
                m: 1,
                ack_timeout_factor: 1.0,
                ..RunParams::default()
            };
            strategy.setup(&SetupContext {
                topology: &topo,
                estimates: &estimates,
                workload: &workload,
                failure_oracle: &failure_stub(),
                params,
            });
            let mut rng = rng_for(42 + node_idx as u64, "udp-drop");
            let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
            let mut out = Actions::new();
            let now_sim =
                |started: Instant| SimTime::from_micros(started.elapsed().as_micros() as u64);

            // Publishers publish 5 messages, one per 200ms of wall time.
            let my_topics: Vec<&TopicSpec> = workload
                .topics()
                .iter()
                .filter(|t| t.publisher == me)
                .collect();
            let mut next_publish = Instant::now();
            let mut published = 0u32;

            socket
                .set_read_timeout(Some(Duration::from_millis(5)))
                .expect("read timeout");
            let deadline = started + Duration::from_secs(4);
            let mut buf = [0u8; 64 * 1024];
            while Instant::now() < deadline {
                // 1. Publish on schedule.
                if published < 5 && Instant::now() >= next_publish && !my_topics.is_empty() {
                    for spec in &my_topics {
                        let id = PacketId::new((node_idx as u64) << 32 | u64::from(published));
                        let packet =
                            Packet::new(id, spec.topic, me, now_sim(started), spec.subscribers());
                        strategy.on_publish(me, packet, now_sim(started), &mut out);
                    }
                    published += 1;
                    next_publish += Duration::from_millis(200);
                }
                // 2. Fire due timers.
                while timers.peek().is_some_and(|t| t.due <= Instant::now()) {
                    let t = timers.pop().expect("peeked");
                    strategy.on_timer(me, t.key, now_sim(started), &mut out);
                }
                // 3. Receive.
                if let Ok((len, from_addr)) = socket.recv_from(&mut buf) {
                    let from = NodeId::new(
                        addrs.iter().position(|a| *a == from_addr).expect("peer") as u32,
                    );
                    match buf[0] {
                        DATA => {
                            if rng.gen::<f64>() < DROP_PROB {
                                // Simulated flaky link: drop silently; the
                                // sender's timer will fail over.
                            } else if let Ok(packet) = decode_packet(&buf[1..len]) {
                                // Hop-by-hop ACK back to the sender.
                                let mut ack = vec![ACK];
                                ack.extend_from_slice(&buf[1..len]);
                                let _ = socket.send_to(&ack, from_addr);
                                strategy.on_packet(me, from, packet, now_sim(started), &mut out);
                            }
                        }
                        ACK => {
                            if let Ok(packet) = decode_packet(&buf[1..len]) {
                                strategy.on_ack(me, from, &packet, now_sim(started), &mut out);
                            }
                        }
                        _ => {}
                    }
                }
                // 4. Execute emitted actions.
                for action in out.drain() {
                    match action {
                        Action::Send { to, packet } => {
                            sends.fetch_add(1, Ordering::Relaxed);
                            let mut frame = vec![DATA];
                            frame.extend_from_slice(&encode_packet(&packet));
                            let _ = socket.send_to(&frame, addrs[to.index()]);
                        }
                        Action::Deliver { packet } => {
                            deliveries.fetch_add(1, Ordering::Relaxed);
                            println!(
                                "[{:>6.1}ms] {me} received {packet}",
                                started.elapsed().as_secs_f64() * 1000.0
                            );
                        }
                        Action::SetTimer { at, key } => {
                            let due = started
                                + Duration::from_micros(at.as_micros())
                                // Real sockets are ~instant; pad the overlay
                                // budget with a floor so timers don't race
                                // genuine ACKs on a busy machine.
                                + Duration::from_millis(20);
                            timers.push(PendingTimer { due, key });
                        }
                        Action::GiveUp {
                            packet,
                            destination,
                        } => {
                            println!("{me} gave up on {packet} → {destination}");
                        }
                        // No recovery config in this demo, so no dedup
                        // suppressions ever fire.
                        Action::Suppress { .. } => {}
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("broker thread");
    }

    let expected = 5 * 3; // 5 rounds × 3 (message, subscriber) pairs
    println!(
        "\ndelivered {}/{expected} (message, subscriber) pairs over real UDP with 20% datagram loss,\n\
         using {} data datagrams — the identical DcrdStrategy the simulator runs.",
        deliveries.load(Ordering::Relaxed),
        sends.load(Ordering::Relaxed)
    );
}

/// The strategy never touches the failure oracle; hand it a dummy.
fn failure_stub() -> FailureModel {
    FailureModel::links_only(LinkFailureModel::new(0.0, 0))
}
