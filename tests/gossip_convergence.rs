//! Randomized convergence properties of the gossip delta path: applying a
//! set of membership deltas for **distinct** brokers through `on_gossip`
//! must be order-insensitive (any permutation leaves identical routing
//! state), and the incremental result must match a from-scratch global
//! rebuild over the brokers still present.
//!
//! This is what makes epidemic dissemination safe: gossip gives no
//! ordering guarantee across brokers, so two brokers may learn the same
//! converged deltas in different interleavings — the routing state they
//! end up with must not depend on which interleaving they saw.
//!
//! (Deltas for the *same* broker are ordered by the dissemination layer —
//! a `Join` after a `ConfirmDead` is a different history than the reverse
//! — so the property quantifies over one delta per broker, which is what
//! a single converged gossip round carries.)

use dcrd::core::{DcrdConfig, DcrdStrategy, RepairMode};
use dcrd::experiments::runner::{build_topology, build_workload};
use dcrd::experiments::scenario::{Scenario, ScenarioBuilder};
use dcrd::net::estimate::analytic_estimates;
use dcrd::net::failure::{FailureModel, LinkFailureModel, LinkOutageModel};
use dcrd::net::membership::MembershipDelta;
use dcrd::net::{NodeId, Topology};
use dcrd::pubsub::strategy::{RoutingStrategy, RunParams, SetupContext};
use dcrd::pubsub::workload::Workload;
use dcrd::sim::rng::derive_seed_indexed;
use dcrd::sim::{SimDuration, SimTime};
use proptest::collection;
use proptest::prelude::*;

fn scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .nodes(14)
        .degree(4)
        .failure_probability(0.05)
        .topics(5)
        .duration_secs(60)
        .repetitions(1)
        .seed(seed)
        .build()
}

fn setup(topo: &Topology, workload: &Workload, config: DcrdConfig) -> DcrdStrategy {
    let estimates = analytic_estimates(topo, 0.05, 1e-4);
    let failure = FailureModel::new(LinkOutageModel::Epoch(LinkFailureModel::new(0.05, 1)), None);
    let ctx = SetupContext {
        topology: topo,
        estimates: &estimates,
        workload,
        failure_oracle: &failure,
        params: RunParams::default(),
    };
    let mut strategy = DcrdStrategy::new(config);
    strategy.setup(&ctx);
    strategy
}

/// Feeds `deltas` one at a time (gossip converges rumors independently,
/// so each arrives as its own `on_gossip` call) in the order given by
/// `order`.
fn apply_in_order(strategy: &mut DcrdStrategy, deltas: &[MembershipDelta], order: &[usize]) {
    let mut now = SimTime::from_secs(1);
    for &i in order {
        strategy.on_gossip(std::slice::from_ref(&deltas[i]), now);
        now += SimDuration::from_secs(1);
    }
}

/// The `⟨d, r⟩` fixed point iterates until the per-round change drops
/// below `PropagationConfig`'s `tolerance_d` (1 µs) / `tolerance_r`
/// (1e-9), so a table frozen by the incremental skip and one recomputed
/// from scratch agree only to within those tolerances — a still-present
/// broker may have sat in *provisional* sending lists during early
/// rounds of the old computation without surviving into the final list
/// the skip check inspects. Equality is therefore asserted at the
/// tolerance the estimator itself promises.
fn close_d(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1.0
}

fn close_r(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-8
}

/// Asserts structurally identical sending lists (same neighbors, same
/// order, delay/reliability equal to float noise) and requirements for
/// every present broker across two strategies.
fn assert_tables_match(
    a: &DcrdStrategy,
    b: &DcrdStrategy,
    topo: &Topology,
    workload: &Workload,
    label: &str,
) {
    assert_eq!(
        a.absent_brokers(),
        b.absent_brokers(),
        "{label}: absent sets"
    );
    let absent = a.absent_brokers().clone();
    let mut compared = 0usize;
    for t in workload.topics() {
        for sub in &t.subscriptions {
            let ta = a.tables_for(t.topic, t.publisher, sub.subscriber);
            let tb = b.tables_for(t.topic, t.publisher, sub.subscriber);
            let (ta, tb) = match (ta, tb) {
                (Some(ta), Some(tb)) => (ta, tb),
                (ta, tb) => {
                    assert_eq!(ta.is_some(), tb.is_some(), "{label}: table existence");
                    continue;
                }
            };
            for node in topo.nodes().filter(|&node| !absent.contains(node)) {
                let (la, lb) = (ta.sending_list(node), tb.sending_list(node));
                assert_eq!(
                    la.len(),
                    lb.len(),
                    "{label}: sending-list length of {node} diverged for {} {} -> {}",
                    t.topic,
                    t.publisher,
                    sub.subscriber
                );
                for (ca, cb) in la.iter().zip(lb) {
                    assert_eq!(
                        ca.neighbor, cb.neighbor,
                        "{label}: neighbor order of {node} diverged"
                    );
                    assert!(
                        close_d(ca.d, cb.d) && close_r(ca.r, cb.r),
                        "{label}: candidate {} of {node} diverged: \
                         d {} vs {}, r {} vs {}",
                        ca.neighbor,
                        ca.d,
                        cb.d,
                        ca.r,
                        cb.r
                    );
                }
                assert!(
                    close_r(ta.requirement(node), tb.requirement(node)),
                    "{label}: requirement of {node} diverged"
                );
                compared += 1;
            }
        }
    }
    assert!(compared > 0, "{label}: equivalence check compared nothing");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For an arbitrary one-delta-per-broker set, every application order
    /// yields the same routing state, and that state equals a from-scratch
    /// global rebuild on the surviving membership.
    #[test]
    fn gossip_delta_application_is_order_insensitive_and_matches_rebuild(
        seed in 0u64..64,
        perm_seed in any::<u64>(),
        kinds in collection::vec(any::<bool>(), 3..7),
    ) {
        let s = scenario(seed);
        let topo = build_topology(&s, 0);
        let workload = build_workload(&s, &topo, 0);
        // Churn only non-publishers so every topic keeps its source.
        let publishers: Vec<NodeId> = workload.topics().iter().map(|t| t.publisher).collect();
        let churnable: Vec<NodeId> = topo
            .nodes()
            .filter(|node| !publishers.contains(node))
            .collect();
        let deltas: Vec<MembershipDelta> = churnable
            .iter()
            .zip(&kinds)
            .map(|(&node, &dead)| {
                if dead {
                    MembershipDelta::ConfirmDead { node }
                } else {
                    MembershipDelta::Leave { node }
                }
            })
            .collect();
        prop_assert!(deltas.len() >= 3, "not enough churnable brokers");

        let forward: Vec<usize> = (0..deltas.len()).collect();
        let mut permuted = forward.clone();
        permuted.sort_by_key(|&i| derive_seed_indexed(perm_seed, "perm", i as u64));

        let mut in_order = setup(&topo, &workload, DcrdConfig::churn_hardened());
        let mut shuffled = setup(&topo, &workload, DcrdConfig::churn_hardened());
        apply_in_order(&mut in_order, &deltas, &forward);
        apply_in_order(&mut shuffled, &deltas, &permuted);

        let mut oracle_config = DcrdConfig::churn_hardened();
        oracle_config.membership.repair = RepairMode::GlobalRebuild;
        let mut oracle = setup(&topo, &workload, oracle_config);
        apply_in_order(&mut oracle, &deltas, &forward);

        // The gossip path never falls back to a rebuild; the oracle is
        // nothing but rebuilds.
        prop_assert_eq!(in_order.global_rebuilds(), 0);
        prop_assert_eq!(shuffled.global_rebuilds(), 0);
        prop_assert_eq!(in_order.incremental_repairs() as usize, deltas.len());
        prop_assert!(oracle.global_rebuilds() > 0);

        assert_tables_match(&in_order, &shuffled, &topo, &workload, "permutation");
        assert_tables_match(&in_order, &oracle, &topo, &workload, "rebuild-oracle");
    }
}
