//! Per-run and pooled metric summaries.

use dcrd_pubsub::runtime::DeliveryLog;
use dcrd_sim::stats::{Histogram, Ratio, Welford};
use serde::{Deserialize, Serialize};

/// Range and resolution of the lateness histogram (Fig. 7's x-axis is
/// `delay ÷ requirement` from 1.0 upward).
const LATENESS_LO: f64 = 1.0;
const LATENESS_HI: f64 = 5.0;
const LATENESS_BUCKETS: usize = 160;

/// The paper's three metrics (plus the lateness CDF) for a single run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    delivered: Ratio,
    on_time: Ratio,
    data_sends: u64,
    messages: u64,
    gave_up: u64,
    lateness: Histogram,
    delay_ms: Welford,
    #[serde(default)]
    audit_violations: u64,
    #[serde(default)]
    sheds: u64,
    #[serde(default)]
    doomed_sheds: u64,
    #[serde(default)]
    in_slack: Ratio,
    #[serde(default)]
    rumors_sent: u64,
    #[serde(default)]
    anti_entropy_rounds: u64,
    #[serde(default)]
    gossip_deltas_applied: u64,
    #[serde(default)]
    stale_reconciliations: u64,
}

impl RunMetrics {
    /// Summarizes one delivery log.
    #[must_use]
    pub fn from_log(log: &DeliveryLog) -> Self {
        let mut delivered = Ratio::new();
        let mut on_time = Ratio::new();
        let mut gave_up = 0;
        let mut lateness = Histogram::new(LATENESS_LO, LATENESS_HI, LATENESS_BUCKETS);
        let mut delay_ms = Welford::new();
        let mut in_slack = Ratio::new();
        for (_, exp) in log.expectations() {
            delivered.record(exp.delivered.is_some());
            // Pairs a broker shed after their requirement was already
            // unsatisfiable leave the in-slack denominator; shedding a
            // pair that still had slack counts as lost delivery.
            if !(exp.shed_doomed && exp.delivered.is_none()) {
                in_slack.record(exp.delivered.is_some());
            }
            let hit = exp.on_time();
            on_time.record(hit);
            if exp.gave_up {
                gave_up += 1;
            }
            if let Some(at) = exp.delivered {
                delay_ms.push(at.saturating_since(exp.published).as_millis_f64());
            }
            if let Some(ratio) = exp.lateness_ratio() {
                if !hit {
                    lateness.push(ratio);
                }
            }
        }
        RunMetrics {
            delivered,
            on_time,
            data_sends: log.data_sends,
            messages: log.messages_published,
            gave_up,
            lateness,
            delay_ms,
            audit_violations: log.audit.as_ref().map_or(0, |a| a.total_violations),
            sheds: log.sheds,
            doomed_sheds: log.doomed_sheds,
            in_slack,
            rumors_sent: log.rumors_sent,
            anti_entropy_rounds: log.anti_entropy_rounds,
            gossip_deltas_applied: log.gossip_deltas_applied,
            stale_reconciliations: log.stale_reconciliations,
        }
    }

    /// Statistics of the end-to-end delay (in milliseconds) of delivered
    /// pairs.
    #[must_use]
    pub fn delay_stats(&self) -> &Welford {
        &self.delay_ms
    }

    /// Fraction of `(message, subscriber)` pairs delivered (late included).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        self.delivered.value()
    }

    /// Fraction of pairs delivered within the delay requirement.
    #[must_use]
    pub fn qos_delivery_ratio(&self) -> f64 {
        self.on_time.value()
    }

    /// Data transmissions per `(message, subscriber)` pair.
    #[must_use]
    pub fn packets_per_subscriber(&self) -> f64 {
        if self.delivered.total() == 0 {
            return 0.0;
        }
        self.data_sends as f64 / self.delivered.total() as f64
    }

    /// Number of `(message, subscriber)` pairs.
    #[must_use]
    pub fn pairs(&self) -> u64 {
        self.delivered.total()
    }

    /// Messages published during the run.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Pairs the strategy explicitly abandoned.
    #[must_use]
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Invariant violations the online auditor detected (0 when auditing
    /// was off).
    #[must_use]
    pub fn audit_violations(&self) -> u64 {
        self.audit_violations
    }

    /// The Fig. 7 histogram: `delay ÷ requirement` over deadline-missing
    /// (but eventually delivered) pairs.
    #[must_use]
    pub fn lateness(&self) -> &Histogram {
        &self.lateness
    }

    /// Packets shed by bounded service queues (0 with unbounded queues).
    #[must_use]
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Sheds that targeted already-doomed packets (past their slack).
    #[must_use]
    pub fn doomed_sheds(&self) -> u64 {
        self.doomed_sheds
    }

    /// Delivery ratio over the pairs that still had slack: pairs shed
    /// only after their requirement was unsatisfiable are excluded from
    /// the denominator. Equals [`delivery_ratio`](Self::delivery_ratio)
    /// when nothing was shed.
    #[must_use]
    pub fn in_slack_delivery_ratio(&self) -> f64 {
        self.in_slack.value()
    }

    /// Membership rumors pushed by the gossip control plane (0 under the
    /// oracle).
    #[must_use]
    pub fn rumors_sent(&self) -> u64 {
        self.rumors_sent
    }

    /// Anti-entropy digest exchanges run by the gossip control plane.
    #[must_use]
    pub fn anti_entropy_rounds(&self) -> u64 {
        self.anti_entropy_rounds
    }

    /// Membership deltas that reached convergence and were applied to
    /// routing state via the gossip path.
    #[must_use]
    pub fn gossip_deltas_applied(&self) -> u64 {
        self.gossip_deltas_applied
    }

    /// Anti-entropy reconciliations that closed a stale gap (a broker
    /// missing rumors its peers already held).
    #[must_use]
    pub fn stale_reconciliations(&self) -> u64 {
        self.stale_reconciliations
    }
}

/// Metrics pooled over repetitions (the paper averages 10 topologies per
/// point). Ratios pool by total counts; per-run spreads are tracked for
/// error reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateMetrics {
    name: String,
    runs: u32,
    delivered: Ratio,
    on_time: Ratio,
    data_sends: u64,
    gave_up: u64,
    lateness: Histogram,
    delay_ms: Welford,
    delivery_spread: Welford,
    qos_spread: Welford,
    traffic_spread: Welford,
    #[serde(default)]
    audit_violations: u64,
    #[serde(default)]
    sheds: u64,
    #[serde(default)]
    doomed_sheds: u64,
    #[serde(default)]
    in_slack: Ratio,
    #[serde(default)]
    rumors_sent: u64,
    #[serde(default)]
    anti_entropy_rounds: u64,
    #[serde(default)]
    gossip_deltas_applied: u64,
    #[serde(default)]
    stale_reconciliations: u64,
}

impl AggregateMetrics {
    /// Creates an empty aggregate labeled with a strategy name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        AggregateMetrics {
            name: name.into(),
            runs: 0,
            delivered: Ratio::new(),
            on_time: Ratio::new(),
            data_sends: 0,
            gave_up: 0,
            lateness: Histogram::new(LATENESS_LO, LATENESS_HI, LATENESS_BUCKETS),
            delay_ms: Welford::new(),
            delivery_spread: Welford::new(),
            qos_spread: Welford::new(),
            traffic_spread: Welford::new(),
            audit_violations: 0,
            sheds: 0,
            doomed_sheds: 0,
            in_slack: Ratio::new(),
            rumors_sent: 0,
            anti_entropy_rounds: 0,
            gossip_deltas_applied: 0,
            stale_reconciliations: 0,
        }
    }

    /// Adds one run.
    pub fn add(&mut self, run: &RunMetrics) {
        self.runs = self.runs.saturating_add(1);
        self.delivered.merge(&run.delivered);
        self.on_time.merge(&run.on_time);
        self.data_sends += run.data_sends;
        self.gave_up += run.gave_up;
        self.audit_violations += run.audit_violations;
        self.sheds += run.sheds;
        self.doomed_sheds += run.doomed_sheds;
        self.in_slack.merge(&run.in_slack);
        self.rumors_sent += run.rumors_sent;
        self.anti_entropy_rounds += run.anti_entropy_rounds;
        self.gossip_deltas_applied += run.gossip_deltas_applied;
        self.stale_reconciliations += run.stale_reconciliations;
        self.lateness.merge(&run.lateness);
        self.delay_ms.merge(&run.delay_ms);
        self.delivery_spread.push(run.delivery_ratio());
        self.qos_spread.push(run.qos_delivery_ratio());
        self.traffic_spread.push(run.packets_per_subscriber());
    }

    /// The strategy label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of runs pooled.
    #[must_use]
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// Pooled delivery ratio.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        self.delivered.value()
    }

    /// Pooled QoS delivery ratio.
    #[must_use]
    pub fn qos_delivery_ratio(&self) -> f64 {
        self.on_time.value()
    }

    /// Pooled traffic metric.
    #[must_use]
    pub fn packets_per_subscriber(&self) -> f64 {
        if self.delivered.total() == 0 {
            return 0.0;
        }
        self.data_sends as f64 / self.delivered.total() as f64
    }

    /// Standard deviation of the per-run delivery ratio.
    #[must_use]
    pub fn delivery_std_dev(&self) -> f64 {
        self.delivery_spread.std_dev()
    }

    /// Standard deviation of the per-run QoS ratio.
    #[must_use]
    pub fn qos_std_dev(&self) -> f64 {
        self.qos_spread.std_dev()
    }

    /// Standard deviation of the per-run traffic metric.
    #[must_use]
    pub fn traffic_std_dev(&self) -> f64 {
        self.traffic_spread.std_dev()
    }

    /// Pooled lateness histogram (Fig. 7).
    #[must_use]
    pub fn lateness(&self) -> &Histogram {
        &self.lateness
    }

    /// Pooled end-to-end delay statistics (ms) of delivered pairs.
    #[must_use]
    pub fn delay_stats(&self) -> &Welford {
        &self.delay_ms
    }

    /// Total pairs across all runs.
    #[must_use]
    pub fn pairs(&self) -> u64 {
        self.delivered.total()
    }

    /// Total invariant violations across all audited runs.
    #[must_use]
    pub fn audit_violations(&self) -> u64 {
        self.audit_violations
    }

    /// Total packets shed by bounded service queues across all runs.
    #[must_use]
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Total doomed-packet sheds across all runs.
    #[must_use]
    pub fn doomed_sheds(&self) -> u64 {
        self.doomed_sheds
    }

    /// Pooled delivery ratio over pairs that still had slack (doomed
    /// sheds excluded from the denominator).
    #[must_use]
    pub fn in_slack_delivery_ratio(&self) -> f64 {
        self.in_slack.value()
    }

    /// Total membership rumors pushed across all runs (0 under the
    /// oracle control plane).
    #[must_use]
    pub fn rumors_sent(&self) -> u64 {
        self.rumors_sent
    }

    /// Total anti-entropy digest exchanges across all runs.
    #[must_use]
    pub fn anti_entropy_rounds(&self) -> u64 {
        self.anti_entropy_rounds
    }

    /// Total converged membership deltas applied via gossip.
    #[must_use]
    pub fn gossip_deltas_applied(&self) -> u64 {
        self.gossip_deltas_applied
    }

    /// Total stale gaps closed by anti-entropy reconciliation.
    #[must_use]
    pub fn stale_reconciliations(&self) -> u64 {
        self.stale_reconciliations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::NodeId;
    use dcrd_pubsub::runtime::DeliveryLog;
    use dcrd_sim::{SimDuration, SimTime};

    /// Builds a log via the runtime's public surface is heavyweight; these
    /// tests drive `RunMetrics` through a real (tiny) run instead.
    fn tiny_log(deliver: bool, late: bool) -> DeliveryLog {
        use dcrd_net::failure::{FailureModel, LinkFailureModel};
        use dcrd_net::loss::LossModel;
        use dcrd_net::topology::line;
        use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig};
        use dcrd_pubsub::strategy::{Actions, RoutingStrategy, SetupContext, TimerKey};
        use dcrd_pubsub::topic::{Subscription, TopicId};
        use dcrd_pubsub::workload::{TopicSpec, Workload};
        use dcrd_pubsub::Packet;

        struct OneHop {
            deliver: bool,
            late: bool,
            pending: Option<(NodeId, Packet, NodeId)>,
        }
        impl RoutingStrategy for OneHop {
            fn name(&self) -> &'static str {
                "one-hop"
            }
            fn setup(&mut self, _ctx: &SetupContext<'_>) {}
            fn on_publish(
                &mut self,
                node: NodeId,
                packet: Packet,
                _now: SimTime,
                out: &mut Actions,
            ) {
                if self.deliver {
                    let dest = packet.destinations[0];
                    if self.late {
                        // Stall the packet with a timer before sending.
                        out.set_timer(
                            SimTime::from_millis(500),
                            TimerKey {
                                packet: packet.id,
                                tag: 0,
                            },
                        );
                        self.pending = Some((node, packet, dest));
                    } else {
                        out.send(dest, packet.forward(node, vec![dest], 0));
                    }
                }
            }
            fn on_packet(
                &mut self,
                node: NodeId,
                _from: NodeId,
                packet: Packet,
                _now: SimTime,
                out: &mut Actions,
            ) {
                if packet.destinations.contains(&node) {
                    out.deliver(packet.id);
                }
            }
            fn on_ack(&mut self, _: NodeId, _: NodeId, _: &Packet, _: SimTime, _: &mut Actions) {}
            fn on_timer(&mut self, _n: NodeId, _k: TimerKey, _now: SimTime, out: &mut Actions) {
                if let Some((node, packet, dest)) = self.pending.take() {
                    out.send(dest, packet.forward(node, vec![dest], 0));
                }
            }
        }
        let topo = line(2, SimDuration::from_millis(10));
        let wl = Workload::from_topics(vec![TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(10),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(
                topo.node(1),
                SimDuration::from_millis(30),
            )],
            burst: None,
        }]);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let rt = OverlayRuntime::new(
            &topo,
            &wl,
            failure,
            LossModel::new(0.0),
            RuntimeConfig::paper(SimDuration::from_secs(5), 1),
        );
        let mut s = OneHop {
            deliver,
            late,
            pending: None,
        };
        rt.run(&mut s)
    }

    #[test]
    fn metrics_of_perfect_run() {
        let log = tiny_log(true, false);
        let m = RunMetrics::from_log(&log);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!((m.qos_delivery_ratio() - 1.0).abs() < 1e-12);
        assert!((m.packets_per_subscriber() - 1.0).abs() < 1e-12);
        assert_eq!(m.pairs(), 1);
        assert_eq!(m.messages(), 1);
        assert_eq!(m.gave_up(), 0);
        assert_eq!(m.lateness().count(), 0);
    }

    #[test]
    fn metrics_of_failed_run() {
        let log = tiny_log(false, false);
        let m = RunMetrics::from_log(&log);
        assert_eq!(m.delivery_ratio(), 0.0);
        assert_eq!(m.qos_delivery_ratio(), 0.0);
        assert_eq!(m.packets_per_subscriber(), 0.0);
    }

    #[test]
    fn late_delivery_fills_lateness_histogram() {
        let log = tiny_log(true, true);
        let m = RunMetrics::from_log(&log);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(m.qos_delivery_ratio(), 0.0);
        assert_eq!(m.lateness().count(), 1);
        // 510ms actual vs 30ms deadline → ratio 17 → overflow bucket.
        assert_eq!(m.lateness().overflow(), 1);
    }

    #[test]
    fn aggregate_pools_by_counts() {
        let good = RunMetrics::from_log(&tiny_log(true, false));
        let bad = RunMetrics::from_log(&tiny_log(false, false));
        let mut agg = AggregateMetrics::new("test");
        agg.add(&good);
        agg.add(&bad);
        assert_eq!(agg.runs(), 2);
        assert_eq!(agg.pairs(), 2);
        assert!((agg.delivery_ratio() - 0.5).abs() < 1e-12);
        assert!((agg.qos_delivery_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(agg.name(), "test");
        // Spread over {0, 1} → std dev ≈ 0.707.
        assert!((agg.delivery_std_dev() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!(agg.qos_std_dev() > 0.0);
        assert!(agg.traffic_std_dev() >= 0.0);
        // No auditing was enabled, so no violations are counted.
        assert_eq!(good.audit_violations(), 0);
        assert_eq!(agg.audit_violations(), 0);
    }

    #[test]
    fn empty_aggregate_is_zero() {
        let agg = AggregateMetrics::new("empty");
        assert_eq!(agg.runs(), 0);
        assert_eq!(agg.delivery_ratio(), 0.0);
        assert_eq!(agg.packets_per_subscriber(), 0.0);
        assert_eq!(agg.lateness().count(), 0);
    }
}
