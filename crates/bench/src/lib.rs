//! # dcrd-bench — benchmark support
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `figures` — one Criterion group per paper figure (Figs. 2–8), each
//!   running the corresponding experiment driver at smoke quality. These
//!   regenerate the paper's series; `dcrd-experiments` produces the full
//!   tables.
//! * `kernels` — micro-benchmarks of the computational kernels: Eq. 1/2/3,
//!   Theorem-1 sorting, sending-list propagation, Dijkstra/Yen, and the
//!   event queue.
//! * `ablations` — the DESIGN.md ablation sweeps at smoke quality.
//!
//! This library crate only hosts small helpers shared by the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcrd_experiments::scenario::{Scenario, ScenarioBuilder};

/// A small scenario suitable for repeated benchmark iterations.
#[must_use]
pub fn bench_scenario(pf: f64) -> Scenario {
    ScenarioBuilder::new()
        .nodes(12)
        .full_mesh()
        .failure_probability(pf)
        .topics(4)
        .duration_secs(10)
        .repetitions(1)
        .seed(42)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenario_is_small() {
        let s = bench_scenario(0.05);
        assert_eq!(s.nodes, 12);
        assert_eq!(s.repetitions, 1);
    }
}
