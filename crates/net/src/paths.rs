//! Shortest-path machinery: Dijkstra, all-pairs sweeps, Yen's k-shortest
//! simple paths, and the paper's multipath pair selection.
//!
//! Two metrics are supported, matching the paper's baselines: **delay**
//! (sum of link delays — D-Tree, ORACLE, Multipath) and **hops** (link
//! count — R-Tree, "most reliable" because fewer links mean fewer failure
//! opportunities).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dcrd_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, NodeId, Topology};
use crate::nodeset::NodeSet;

/// The edge-weight metric used by a shortest-path computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Minimize total link delay.
    Delay,
    /// Minimize hop count.
    Hops,
}

impl Metric {
    /// The cost of traversing `edge` under this metric (µs for delay, 1 for
    /// hops).
    #[must_use]
    pub fn cost(self, topo: &Topology, edge: EdgeId) -> u64 {
        match self {
            Metric::Delay => topo.delay(edge).as_micros(),
            Metric::Hops => 1,
        }
    }
}

/// A simple (loop-free) path through the overlay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
    cost: u64,
}

impl Path {
    /// Assembles a path from its parts (used by sibling path algorithms
    /// such as [`edge_disjoint_pair`](crate::disjoint::edge_disjoint_pair)).
    ///
    /// # Panics
    ///
    /// Panics if the node and edge counts are inconsistent.
    #[must_use]
    pub fn from_parts(nodes: Vec<NodeId>, edges: Vec<EdgeId>, cost: u64) -> Self {
        assert_eq!(
            nodes.len(),
            edges.len() + 1,
            "a path over k edges visits k+1 nodes"
        );
        Path { nodes, edges, cost }
    }

    /// The sequence of nodes from source to destination (inclusive).
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The sequence of edges traversed.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Total cost under the metric the path was computed with.
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Number of hops (edges).
    #[must_use]
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// Source node.
    ///
    /// # Panics
    ///
    /// Never: paths always contain at least the source node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("path has a source")
    }

    /// Destination node.
    #[must_use]
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path has a destination")
    }

    /// Total propagation delay along the path (independent of the metric the
    /// path was found with).
    #[must_use]
    pub fn total_delay(&self, topo: &Topology) -> SimDuration {
        self.edges
            .iter()
            .fold(SimDuration::ZERO, |acc, &e| acc + topo.delay(e))
    }

    /// Number of edges shared with `other`.
    #[must_use]
    pub fn overlap(&self, other: &Path) -> usize {
        self.edges
            .iter()
            .filter(|e| other.edges.contains(e))
            .count()
    }
}

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Option<u64>>,
    prev: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// The source node of the computation.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost from the source to `node`, or `None` if unreachable (or the
    /// node is unknown to the computation).
    #[must_use]
    pub fn cost_to(&self, node: NodeId) -> Option<u64> {
        self.dist.get(node.index()).copied().flatten()
    }

    /// The predecessor `(node, edge)` of `node` on its shortest path, or
    /// `None` for the source and unreachable nodes.
    #[must_use]
    pub fn predecessor(&self, node: NodeId) -> Option<(NodeId, EdgeId)> {
        self.prev.get(node.index()).copied().flatten()
    }

    /// Reconstructs the full path from the source to `dst`, or `None` if
    /// unreachable.
    #[must_use]
    pub fn path_to(&self, dst: NodeId) -> Option<Path> {
        let cost = self.dist[dst.index()]?;
        let mut nodes = vec![dst];
        let mut edges = Vec::new();
        let mut cur = dst;
        while let Some((p, e)) = self.prev[cur.index()] {
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        debug_assert_eq!(cur, self.source, "predecessor chain must end at source");
        nodes.reverse();
        edges.reverse();
        Some(Path { nodes, edges, cost })
    }
}

/// Single-source Dijkstra under `metric`.
///
/// Ties between equal-cost relaxations keep the first-found predecessor,
/// which (with deterministic neighbor order) makes results reproducible.
#[must_use]
pub fn dijkstra(topo: &Topology, source: NodeId, metric: Metric) -> ShortestPaths {
    dijkstra_filtered(topo, source, metric, |_| true)
}

/// Single-source Dijkstra over the overlay minus the `absent` brokers:
/// edges touching an absent node are never traversed, so paths route
/// around departed or confirmed-dead brokers. With an empty mask the
/// result is identical to [`dijkstra`] (same traversal order, same
/// predecessors). An absent source yields an all-unreachable result.
#[must_use]
pub fn dijkstra_masked(
    topo: &Topology,
    source: NodeId,
    metric: Metric,
    absent: &NodeSet,
) -> ShortestPaths {
    if absent.contains(source) {
        let n = topo.num_nodes();
        return ShortestPaths {
            source,
            dist: vec![None; n],
            prev: vec![None; n],
        };
    }
    dijkstra_filtered(topo, source, metric, |e| {
        let edge = topo.edge(e);
        !absent.contains(edge.a()) && !absent.contains(edge.b())
    })
}

/// Single-source Dijkstra that only traverses edges for which `edge_ok`
/// returns `true`. Used by the ORACLE baseline to avoid currently-failed
/// links and by Yen's algorithm for edge removal.
#[must_use]
pub fn dijkstra_filtered<F>(
    topo: &Topology,
    source: NodeId,
    metric: Metric,
    mut edge_ok: F,
) -> ShortestPaths
where
    F: FnMut(EdgeId) -> bool,
{
    let n = topo.num_nodes();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    if let Some(d0) = dist.get_mut(source.index()) {
        *d0 = Some(0);
    }
    heap.push(Reverse((0, source.index() as u32)));

    while let Some(Reverse((d, idx))) = heap.pop() {
        let node = NodeId::new(idx);
        if dist.get(node.index()).copied().flatten() != Some(d) {
            continue; // stale entry
        }
        for &(next, edge) in topo.neighbors(node) {
            if !edge_ok(edge) {
                continue;
            }
            let nd = d + metric.cost(topo, edge);
            if dist
                .get(next.index())
                .copied()
                .flatten()
                .is_none_or(|old| nd < old)
            {
                if let Some(slot) = dist.get_mut(next.index()) {
                    *slot = Some(nd);
                }
                if let Some(slot) = prev.get_mut(next.index()) {
                    *slot = Some((node, edge));
                }
                heap.push(Reverse((nd, next.index() as u32)));
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

/// Shortest path between two nodes under `metric`, or `None` if
/// disconnected.
#[must_use]
pub fn shortest_path(topo: &Topology, src: NodeId, dst: NodeId, metric: Metric) -> Option<Path> {
    if src == dst {
        return Some(Path {
            nodes: vec![src],
            edges: Vec::new(),
            cost: 0,
        });
    }
    dijkstra(topo, src, metric).path_to(dst)
}

/// All-pairs shortest-path costs under `metric` (repeated Dijkstra);
/// `result[src][dst]`.
#[must_use]
pub fn all_pairs_costs(topo: &Topology, metric: Metric) -> Vec<Vec<Option<u64>>> {
    topo.nodes()
        .map(|src| {
            let sp = dijkstra(topo, src, metric);
            topo.nodes().map(|dst| sp.cost_to(dst)).collect()
        })
        .collect()
}

/// Yen's algorithm: the `k` shortest *simple* paths from `src` to `dst`
/// under `metric`, in non-decreasing cost order. Returns fewer than `k`
/// paths when the graph doesn't contain that many simple paths.
///
/// # Panics
///
/// Panics if `k == 0` or `src == dst`.
#[must_use]
pub fn k_shortest_paths(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
    metric: Metric,
) -> Vec<Path> {
    assert!(k > 0, "k must be positive");
    assert!(src != dst, "k-shortest-paths needs distinct endpoints");

    let Some(first) = shortest_path(topo, src, dst, metric) else {
        return Vec::new();
    };
    let mut found = vec![first];
    // Candidate set: (cost, insertion order, path); insertion order breaks
    // ties deterministically.
    let mut candidates: Vec<Path> = Vec::new();

    while found.len() < k {
        let prev_path = found.last().expect("at least one found path").clone();
        // For each node along the previous path, branch off ("spur").
        for i in 0..prev_path.nodes.len() - 1 {
            let spur_node = prev_path.nodes[i];
            let root_nodes = &prev_path.nodes[..=i];
            let root_edges = &prev_path.edges[..i];

            // Edges to exclude: the next edge of every found/candidate path
            // sharing this root.
            let mut banned_edges: Vec<EdgeId> = Vec::new();
            for p in found.iter().chain(candidates.iter()) {
                if p.nodes.len() > i + 1 && p.nodes[..=i] == *root_nodes {
                    banned_edges.push(p.edges[i]);
                }
            }
            // Nodes of the root (except the spur node) must not be revisited.
            let banned_nodes: Vec<NodeId> = root_nodes[..i].to_vec();

            let sp = dijkstra_filtered(topo, spur_node, metric, |e| {
                if banned_edges.contains(&e) {
                    return false;
                }
                let edge = topo.edge(e);
                !banned_nodes.contains(&edge.a()) && !banned_nodes.contains(&edge.b())
            });
            let Some(spur_path) = sp.path_to(dst) else {
                continue;
            };
            // Guard against the filter approximation admitting a root node.
            if spur_path.nodes[1..]
                .iter()
                .any(|n| banned_nodes.contains(n))
            {
                continue;
            }

            let mut nodes = root_nodes.to_vec();
            nodes.extend_from_slice(&spur_path.nodes[1..]);
            let mut edges = root_edges.to_vec();
            edges.extend_from_slice(&spur_path.edges);
            let cost = edges.iter().map(|&e| metric.cost(topo, e)).sum();
            let total = Path { nodes, edges, cost };

            if !found.contains(&total) && !candidates.contains(&total) {
                candidates.push(total);
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the cheapest candidate (stable under ties by keeping the
        // earliest inserted).
        let best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (p.cost, *i))
            .map(|(i, _)| i)
            .expect("candidates nonempty");
        found.push(candidates.swap_remove(best));
        // swap_remove perturbs order; re-sort by (cost) to keep determinism
        // of future tie-breaks stable regardless of removal order.
        candidates.sort_by_key(|p| p.cost);
    }
    found
}

/// The paper's Multipath pair: the shortest-delay path plus, among the top-5
/// shortest-delay paths, the one sharing the fewest links with it (ties
/// broken toward lower delay). Returns `None` when `src` and `dst` are
/// disconnected; returns a single-element pair `(p, None)` when only one
/// simple path exists.
#[must_use]
pub fn multipath_pair(topo: &Topology, src: NodeId, dst: NodeId) -> Option<(Path, Option<Path>)> {
    let top = k_shortest_paths(topo, src, dst, 5, Metric::Delay);
    let mut it = top.into_iter();
    let primary = it.next()?;
    let secondary = it.min_by_key(|p| (p.overlap(&primary), p.cost));
    Some((primary, secondary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopologyBuilder;
    use crate::topology::{full_mesh, line, random_connected, ring, DelayRange};
    use dcrd_sim::rng::rng_for;
    use dcrd_sim::SimDuration;

    /// Diamond: 0-1 (10), 0-2 (20), 1-3 (10), 2-3 (5), 1-2 (1).
    fn diamond() -> Topology {
        let mut b = TopologyBuilder::new(4);
        let n = b.nodes();
        b.link(n[0], n[1], SimDuration::from_millis(10));
        b.link(n[0], n[2], SimDuration::from_millis(20));
        b.link(n[1], n[3], SimDuration::from_millis(10));
        b.link(n[2], n[3], SimDuration::from_millis(5));
        b.link(n[1], n[2], SimDuration::from_millis(1));
        b.build()
    }

    #[test]
    fn dijkstra_delay_on_diamond() {
        let t = diamond();
        let p = shortest_path(&t, t.node(0), t.node(3), Metric::Delay).unwrap();
        // 0-1 (10) + 1-2 (1) + 2-3 (5) = 16ms beats 0-1-3 (20ms).
        assert_eq!(p.cost(), 16_000);
        assert_eq!(p.nodes(), &[t.node(0), t.node(1), t.node(2), t.node(3)]);
        assert_eq!(p.total_delay(&t), SimDuration::from_millis(16));
    }

    #[test]
    fn dijkstra_hops_on_diamond() {
        let t = diamond();
        let p = shortest_path(&t, t.node(0), t.node(3), Metric::Hops).unwrap();
        assert_eq!(p.hops(), 2);
        assert_eq!(p.cost(), 2);
    }

    #[test]
    fn same_node_path_is_empty() {
        let t = diamond();
        let p = shortest_path(&t, t.node(2), t.node(2), Metric::Delay).unwrap();
        assert_eq!(p.hops(), 0);
        assert_eq!(p.cost(), 0);
        assert_eq!(p.source(), p.destination());
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new(4);
        let n = b.nodes();
        b.link(n[0], n[1], SimDuration::from_millis(1));
        b.link(n[2], n[3], SimDuration::from_millis(1));
        let t = b.build();
        assert!(shortest_path(&t, t.node(0), t.node(3), Metric::Delay).is_none());
        let sp = dijkstra(&t, t.node(0), Metric::Delay);
        assert_eq!(sp.cost_to(t.node(3)), None);
        assert_eq!(sp.predecessor(t.node(3)), None);
    }

    #[test]
    fn dijkstra_matches_bellman_ford_on_random_graphs() {
        for seed in 0..5u64 {
            let mut rng = rng_for(seed, "bf");
            let t = random_connected(12, 4, DelayRange::PAPER, &mut rng);
            let src = t.node(0);
            let sp = dijkstra(&t, src, Metric::Delay);

            // Bellman-Ford reference.
            let n = t.num_nodes();
            let mut dist = vec![u64::MAX; n];
            dist[src.index()] = 0;
            for _ in 0..n {
                for e in t.edge_ids() {
                    let edge = t.edge(e);
                    let w = t.delay(e).as_micros();
                    let (a, b) = (edge.a().index(), edge.b().index());
                    if dist[a] != u64::MAX && dist[a] + w < dist[b] {
                        dist[b] = dist[a] + w;
                    }
                    if dist[b] != u64::MAX && dist[b] + w < dist[a] {
                        dist[a] = dist[b] + w;
                    }
                }
            }
            for node in t.nodes() {
                assert_eq!(
                    sp.cost_to(node),
                    Some(dist[node.index()]),
                    "seed {seed} {node}"
                );
            }
        }
    }

    #[test]
    fn filtered_dijkstra_avoids_edges() {
        let t = diamond();
        let banned = t.edge_between(t.node(1), t.node(2)).unwrap();
        let sp = dijkstra_filtered(&t, t.node(0), Metric::Delay, |e| e != banned);
        let p = sp.path_to(t.node(3)).unwrap();
        assert!(!p.edges().contains(&banned));
        assert_eq!(p.cost(), 20_000); // 0-1-3
    }

    #[test]
    fn all_pairs_symmetry_and_triangle_inequality() {
        let mut rng = rng_for(9, "ap");
        let t = random_connected(10, 4, DelayRange::PAPER, &mut rng);
        let costs = all_pairs_costs(&t, Metric::Delay);
        for i in 0..10 {
            assert_eq!(costs[i][i], Some(0));
            for j in 0..10 {
                assert_eq!(
                    costs[i][j], costs[j][i],
                    "undirected graph must be symmetric"
                );
                for k in 0..10 {
                    let (Some(ij), Some(ik), Some(kj)) = (costs[i][j], costs[i][k], costs[k][j])
                    else {
                        continue;
                    };
                    assert!(ij <= ik + kj, "triangle inequality violated");
                }
            }
        }
    }

    #[test]
    fn yen_on_diamond_enumerates_all_simple_paths() {
        let t = diamond();
        let paths = k_shortest_paths(&t, t.node(0), t.node(3), 10, Metric::Delay);
        // Simple paths 0→3: 0-1-2-3 (16), 0-1-3 (20), 0-2-3 (25),
        // 0-2-1-3 (31). Exactly four.
        let costs: Vec<u64> = paths.iter().map(Path::cost).collect();
        assert_eq!(costs, vec![16_000, 20_000, 25_000, 31_000]);
        // All simple.
        for p in &paths {
            let mut nodes = p.nodes().to_vec();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), p.nodes().len(), "path must be simple");
        }
    }

    #[test]
    fn yen_costs_nondecreasing_on_random_graphs() {
        for seed in 0..5u64 {
            let mut rng = rng_for(seed, "yen");
            let t = random_connected(10, 4, DelayRange::PAPER, &mut rng);
            let paths = k_shortest_paths(&t, t.node(0), t.node(7), 6, Metric::Delay);
            assert!(!paths.is_empty());
            for w in paths.windows(2) {
                assert!(w[0].cost() <= w[1].cost());
            }
            // No duplicates.
            for i in 0..paths.len() {
                for j in i + 1..paths.len() {
                    assert_ne!(paths[i], paths[j]);
                }
            }
            // First equals Dijkstra.
            let best = shortest_path(&t, t.node(0), t.node(7), Metric::Delay).unwrap();
            assert_eq!(paths[0].cost(), best.cost());
        }
    }

    #[test]
    fn yen_on_line_finds_single_path() {
        let t = line(5, SimDuration::from_millis(10));
        let paths = k_shortest_paths(&t, t.node(0), t.node(4), 5, Metric::Delay);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops(), 4);
    }

    #[test]
    fn yen_on_ring_finds_two_paths() {
        let t = ring(6, SimDuration::from_millis(10));
        let paths = k_shortest_paths(&t, t.node(0), t.node(2), 5, Metric::Delay);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].hops(), 2);
        assert_eq!(paths[1].hops(), 4);
        assert_eq!(paths[0].overlap(&paths[1]), 0);
    }

    #[test]
    fn multipath_prefers_disjoint_secondary() {
        let mut rng = rng_for(4, "mp");
        let t = full_mesh(8, DelayRange::PAPER, &mut rng);
        let (primary, secondary) = multipath_pair(&t, t.node(0), t.node(5)).unwrap();
        let secondary = secondary.expect("mesh has many paths");
        assert!(primary.cost() <= secondary.cost());
        // In a full mesh there are plenty of edge-disjoint 2-hop paths.
        assert_eq!(primary.overlap(&secondary), 0);
    }

    #[test]
    fn multipath_on_line_has_no_secondary() {
        let t = line(4, SimDuration::from_millis(10));
        let (primary, secondary) = multipath_pair(&t, t.node(0), t.node(3)).unwrap();
        assert_eq!(primary.hops(), 3);
        assert!(secondary.is_none());
    }

    mod props {
        use super::*;
        use crate::topology::random_connected;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Yen's paths are simple, sorted, distinct, and start with the
            /// Dijkstra optimum on arbitrary random overlays.
            #[test]
            fn yen_invariants(seed in 0u64..500, degree in 3usize..6, k in 1usize..6) {
                let mut rng = rng_for(seed, "yen-prop");
                let t = random_connected(10, degree, DelayRange::PAPER, &mut rng);
                let (src, dst) = (t.node(0), t.node(9));
                let paths = k_shortest_paths(&t, src, dst, k, Metric::Delay);
                prop_assert!(!paths.is_empty());
                prop_assert!(paths.len() <= k);
                let best = shortest_path(&t, src, dst, Metric::Delay).expect("connected");
                prop_assert_eq!(paths[0].cost(), best.cost());
                for w in paths.windows(2) {
                    prop_assert!(w[0].cost() <= w[1].cost());
                    prop_assert_ne!(&w[0], &w[1]);
                }
                for p in &paths {
                    prop_assert_eq!(p.source(), src);
                    prop_assert_eq!(p.destination(), dst);
                    // Simple: no repeated nodes.
                    let mut nodes = p.nodes().to_vec();
                    nodes.sort();
                    nodes.dedup();
                    prop_assert_eq!(nodes.len(), p.nodes().len());
                    // Edges consistent with nodes.
                    prop_assert_eq!(p.edges().len() + 1, p.nodes().len());
                    for (i, &e) in p.edges().iter().enumerate() {
                        let edge = t.edge(e);
                        let (a, b) = (p.nodes()[i], p.nodes()[i + 1]);
                        prop_assert!(
                            (edge.a() == a && edge.b() == b) || (edge.a() == b && edge.b() == a)
                        );
                    }
                    // Cost equals the recomputed metric sum.
                    let sum: u64 = p.edges().iter().map(|&e| Metric::Delay.cost(&t, e)).sum();
                    prop_assert_eq!(p.cost(), sum);
                }
            }

            /// Hop-metric shortest paths never have more hops than
            /// delay-metric ones between the same endpoints.
            #[test]
            fn hop_paths_minimize_hops(seed in 0u64..500) {
                let mut rng = rng_for(seed, "hops-prop");
                let t = random_connected(12, 4, DelayRange::PAPER, &mut rng);
                for dst in 1..12 {
                    let hop = shortest_path(&t, t.node(0), t.node(dst), Metric::Hops).unwrap();
                    let delay = shortest_path(&t, t.node(0), t.node(dst), Metric::Delay).unwrap();
                    prop_assert!(hop.hops() <= delay.hops());
                    prop_assert!(
                        delay.total_delay(&t) <= hop.total_delay(&t),
                        "delay metric must minimize delay"
                    );
                }
            }
        }
    }

    #[test]
    fn path_overlap_counts_shared_edges() {
        let t = diamond();
        let paths = k_shortest_paths(&t, t.node(0), t.node(3), 4, Metric::Delay);
        // 0-1-2-3 vs 0-1-3 share edge 0-1.
        assert_eq!(paths[0].overlap(&paths[1]), 1);
        // 0-1-3 vs 0-2-3 share nothing.
        assert_eq!(paths[1].overlap(&paths[2]), 0);
    }
}
