//! The workspace symbol graph: modules, functions, calls, reachability.
//!
//! Built from [`crate::items`] output across every scanned file, the graph
//! gives the v2 rules what the per-file lexer cannot: *which function* a
//! pattern lives in and *whether the hot path can reach it*. Three layers:
//!
//! 1. **Crate table** — one entry per workspace crate (directory under
//!    `crates/` plus the root facade), with its `dcrd-*` dependency edges
//!    parsed from `Cargo.toml` (used by `LAYER001` and to bound call
//!    resolution).
//! 2. **Function table** — every parsed `fn`, keyed by
//!    `(crate, owner type, name)`, with its file, span and per-function
//!    *panic sources* (panicking macros, `unwrap`/`expect`, indexing).
//! 3. **Call graph** — name-resolved edges between functions. Resolution
//!    is deliberately an **over-approximation**: a call edge is added to
//!    every plausible target (same crate plus transitive dependencies),
//!    so panic-reachability (`PANIC001`) errs toward flagging. Function
//!    *references* passed as values (`iter.map(Self::cost)`) are the one
//!    known under-approximation; the lexical `SAFE001` rule stays active
//!    in the hot-path crates as the belt-and-braces for that gap.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{FileItems, FnItem};

/// How a function can panic at a given site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    /// `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`,
    /// `assert_eq!`, `assert_ne!` (but not `debug_assert*`, which release
    /// builds compile out).
    Macro,
    /// `.unwrap()` on `Option`/`Result`.
    Unwrap,
    /// `.expect(..)` on `Option`/`Result`.
    Expect,
    /// Slice/array/map indexing `x[i]` (including panicking range forms);
    /// the full-range `x[..]` is exempt.
    Index,
}

impl PanicKind {
    /// Human-readable label for diagnostics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Macro => "panicking macro",
            PanicKind::Unwrap => "unwrap()",
            PanicKind::Expect => "expect()",
            PanicKind::Index => "indexing",
        }
    }
}

/// One potential panic site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// Byte offset in the file's masked source.
    pub offset: usize,
    /// What kind of panic.
    pub kind: PanicKind,
}

/// One call site inside a function body, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CallSite {
    /// `name(..)` — a free function call (possibly module-qualified).
    Free(String),
    /// `recv.name(..)` — a method call on an unknown receiver.
    Method(String),
    /// `Type::name(..)` — a qualified associated call.
    Qualified(String, String),
    /// `self.name(..)` / `Self::name(..)` — a call on the enclosing type.
    OnSelf(String),
}

/// One function node in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Crate key (directory name under `crates/`, or `dcrd` for the root).
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// The parsed item.
    pub item: FnItem,
    /// Potential panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Unresolved call sites in the body.
    calls: Vec<CallSite>,
}

impl FnNode {
    /// `Owner::name` or `name`, for chain rendering.
    #[must_use]
    pub fn qualified_name(&self) -> String {
        match &self.item.owner {
            Some(o) => format!("{o}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }
}

/// The assembled workspace graph.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// All function nodes, in deterministic (file, offset) order.
    pub fns: Vec<FnNode>,
    /// Crate → direct `dcrd-*` dependency crates (dir-name keys).
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
    /// Resolved call edges, caller index → callee indices (sorted).
    pub edges: Vec<Vec<usize>>,
    /// Per-file parsed items (module graph inputs), keyed by path.
    pub files: BTreeMap<String, FileItems>,
}

/// The crate key for a workspace-relative path: `crates/core/src/x.rs` →
/// `core`; anything under the root `src/` belongs to the `dcrd` facade.
#[must_use]
pub fn crate_of(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix("crates/") {
        return rest.split('/').next().map(str::to_string);
    }
    path.starts_with("src/").then(|| "dcrd".to_string())
}

impl SymbolGraph {
    /// Builds the graph from `(path, masked_source)` pairs plus the
    /// crate-dependency table (see [`parse_cargo_deps`]).
    #[must_use]
    pub fn build(
        files: &[(String, String)],
        crate_deps: BTreeMap<String, BTreeSet<String>>,
    ) -> SymbolGraph {
        let mut graph = SymbolGraph {
            crate_deps,
            ..SymbolGraph::default()
        };
        for (path, masked) in files {
            let Some(krate) = crate_of(path) else {
                continue;
            };
            let items = crate::items::parse_items(masked);
            for f in &items.fns {
                let (panics, calls) = match f.body {
                    Some((open, close)) => scan_body(masked, open, close),
                    None => (Vec::new(), Vec::new()),
                };
                graph.fns.push(FnNode {
                    krate: krate.clone(),
                    file: path.clone(),
                    item: f.clone(),
                    panics,
                    calls,
                });
            }
            graph.files.insert(path.clone(), items);
        }
        graph.resolve();
        graph
    }

    /// Name-resolves every call site into edges.
    fn resolve(&mut self) {
        // name → fn indices, split by free fns vs methods, plus
        // (owner, name) → indices for qualified calls.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut owned: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            match &f.item.owner {
                Some(o) => {
                    methods.entry(&f.item.name).or_default().push(i);
                    owned.entry((o, &f.item.name)).or_default().push(i);
                }
                None => free.entry(&f.item.name).or_default().push(i),
            }
        }
        // Transitive dependency closure per crate.
        let closures: BTreeMap<&String, BTreeSet<&String>> = self
            .crate_deps
            .keys()
            .map(|k| (k, dep_closure(&self.crate_deps, k)))
            .collect();

        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(self.fns.len());
        for f in &self.fns {
            let visible = |idx: &usize| -> bool {
                let target = &self.fns[*idx];
                target.krate == f.krate
                    || closures
                        .get(&f.krate)
                        .is_some_and(|c| c.contains(&target.krate))
            };
            let mut out: Vec<usize> = Vec::new();
            for call in &f.calls {
                match call {
                    CallSite::Free(name) => {
                        // A free call may also be a tuple-struct ctor or a
                        // std fn; unknown names simply resolve to nothing.
                        if let Some(v) = free.get(name.as_str()) {
                            out.extend(v.iter().filter(|i| visible(i)));
                        }
                    }
                    CallSite::Method(name) => {
                        if let Some(v) = methods.get(name.as_str()) {
                            out.extend(v.iter().filter(|i| visible(i)));
                        }
                    }
                    CallSite::Qualified(ty, name) => {
                        if let Some(v) = owned.get(&(ty.as_str(), name.as_str())) {
                            out.extend(v.iter().filter(|i| visible(i)));
                        }
                    }
                    CallSite::OnSelf(name) => {
                        if let Some(o) = &f.item.owner {
                            if let Some(v) = owned.get(&(o.as_str(), name.as_str())) {
                                out.extend(v.iter().filter(|i| visible(i)));
                            }
                        }
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        self.edges = edges;
    }

    /// Indices of functions matching `(crate, owner, name)`; `owner = None`
    /// matches free functions only.
    #[must_use]
    pub fn find(&self, krate: &str, owner: Option<&str>, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.krate == krate && f.item.name == name && f.item.owner.as_deref() == owner
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS over call edges from `roots`; returns, for every reached
    /// function, the index of its BFS parent (roots map to themselves).
    /// Deterministic: roots and edge lists are processed in sorted order.
    #[must_use]
    pub fn reachable_from(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier: Vec<usize> = Vec::new();
        let mut sorted_roots = roots.to_vec();
        sorted_roots.sort_unstable();
        for &r in &sorted_roots {
            if parent.insert(r, r).is_none() {
                frontier.push(r);
            }
        }
        while let Some(cur) = frontier.pop() {
            for &next in self.edges.get(cur).map_or(&[][..], Vec::as_slice) {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(cur);
                    frontier.push(next);
                }
            }
        }
        parent
    }

    /// Renders a short `entry → … → target` chain from a BFS parent map
    /// (at most 8 frames; longer chains elide the middle with `…`).
    #[must_use]
    pub fn chain(&self, parents: &BTreeMap<usize, usize>, target: usize) -> String {
        let mut names: Vec<String> = Vec::new();
        let mut cur = target;
        loop {
            names.push(self.fns[cur].qualified_name());
            match parents.get(&cur) {
                Some(&p) if p != cur && names.len() < 8 => cur = p,
                Some(&p) if p != cur => {
                    names.push("…".to_string());
                    break;
                }
                _ => break,
            }
        }
        names.reverse();
        names.join(" → ")
    }
}

/// Transitive `dcrd-*` dependency closure of `krate`.
fn dep_closure<'a>(
    deps: &'a BTreeMap<String, BTreeSet<String>>,
    krate: &str,
) -> BTreeSet<&'a String> {
    let mut seen: BTreeSet<&'a String> = BTreeSet::new();
    let mut stack: Vec<&'a String> = deps
        .get(krate)
        .map(|d| d.iter().collect())
        .unwrap_or_default();
    while let Some(k) = stack.pop() {
        if seen.insert(k) {
            if let Some(next) = deps.get(k) {
                stack.extend(next.iter());
            }
        }
    }
    seen
}

/// Parses the `dcrd-*` entries of one `Cargo.toml`'s `[dependencies]`
/// section into dir-name keys (`dcrd-sim` → `sim`). Dev-dependencies are
/// ignored: test-only edges do not constrain the architecture.
#[must_use]
pub fn parse_cargo_deps(toml: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_deps = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(name) = line.split(['=', '.']).next() {
            let name = name.trim();
            if let Some(dir) = name.strip_prefix("dcrd-") {
                out.insert(dir.to_string());
            }
        }
    }
    out
}

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "mut",
    "ref", "move", "unsafe", "as", "in", "fn", "impl", "dyn", "where", "use", "pub", "mod",
    "struct", "enum", "trait", "type", "const", "static", "await", "async", "box", "yield",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Previous non-whitespace byte before `i`, with its index.
fn prev_significant(bytes: &[u8], i: usize) -> Option<(u8, usize)> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !bytes[j].is_ascii_whitespace() {
            return Some((bytes[j], j));
        }
    }
    None
}

/// The identifier ending at byte `end` (exclusive), if any.
fn ident_ending_at(masked: &str, end: usize) -> Option<&str> {
    let bytes = masked.as_bytes();
    if end == 0 || !is_ident(bytes[end - 1]) {
        return None;
    }
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    Some(&masked[start..end])
}

/// Scans one function body (masked bytes `open..close`) for panic sites
/// and call sites.
fn scan_body(masked: &str, open: usize, close: usize) -> (Vec<PanicSite>, Vec<CallSite>) {
    let bytes = masked.as_bytes();
    let close = close.min(bytes.len());
    let mut panics = Vec::new();
    let mut calls = Vec::new();
    let mut i = open;
    while i < close {
        let b = bytes[i];
        if is_ident(b) && (i == 0 || !is_ident(bytes[i - 1])) {
            let start = i;
            while i < close && is_ident(bytes[i]) {
                i += 1;
            }
            let word = &masked[start..i];
            if KEYWORDS.contains(&word) {
                continue;
            }
            // Macro invocation?
            if bytes.get(i) == Some(&b'!') {
                if PANIC_MACROS.contains(&word) {
                    panics.push(PanicSite {
                        offset: start,
                        kind: PanicKind::Macro,
                    });
                }
                continue;
            }
            // A call requires `(` after optional whitespace / turbofish.
            let mut j = i;
            while j < close && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b':') && bytes.get(j + 1) == Some(&b':') {
                if bytes.get(j + 2) == Some(&b'<') {
                    // Turbofish: skip the balanced angle list.
                    let mut depth = 0i32;
                    let mut k = j + 2;
                    while k < close {
                        match bytes[k] {
                            b'<' => depth += 1,
                            b'>' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    j = k + 1;
                } else {
                    // `word::next` — the call name is further right; this
                    // segment is handled when the final segment is read.
                    continue;
                }
            }
            if bytes.get(j) != Some(&b'(') {
                continue;
            }
            // Classify by what precedes the identifier.
            match prev_significant(bytes, start) {
                Some((b'.', _)) => {
                    if word == "unwrap"
                        && bytes
                            .get(j + 1)
                            .copied()
                            .map(|b| b == b')')
                            .unwrap_or(false)
                    {
                        panics.push(PanicSite {
                            offset: start,
                            kind: PanicKind::Unwrap,
                        });
                    } else if word == "expect" {
                        panics.push(PanicSite {
                            offset: start,
                            kind: PanicKind::Expect,
                        });
                    }
                    calls.push(CallSite::Method(word.to_string()));
                }
                Some((b':', colon)) if colon > 0 && bytes[colon - 1] == b':' => {
                    // `Seg::word(` — find the qualifying segment.
                    match ident_ending_at(masked, colon - 1) {
                        Some("Self") => calls.push(CallSite::OnSelf(word.to_string())),
                        Some(seg) if seg.chars().next().is_some_and(|c| c.is_ascii_uppercase()) => {
                            calls.push(CallSite::Qualified(seg.to_string(), word.to_string()));
                        }
                        // `module::word(` or `>::word(`: resolve by name.
                        _ => calls.push(CallSite::Free(word.to_string())),
                    }
                }
                _ => calls.push(CallSite::Free(word.to_string())),
            }
            continue;
        }
        if b == b'[' {
            if let Some(site) = index_site(masked, i, close) {
                panics.push(site);
            }
        }
        i += 1;
    }
    // `self.method(..)` was classified as Method; sharpen it: a method
    // call whose receiver is literally `self` is OnSelf. Re-scan cheaply.
    let mut sharpened = Vec::with_capacity(calls.len());
    let mut seen_self: BTreeSet<String> = BTreeSet::new();
    for pos in find_all(&masked[open..close], "self.") {
        let abs = open + pos;
        if abs > 0 && is_ident(bytes[abs - 1]) {
            continue;
        }
        let after = abs + "self.".len();
        if let Some((name, end)) = read_ident_at(masked, after) {
            let mut j = end;
            while j < close && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'(') {
                seen_self.insert(name);
            }
        }
    }
    for c in calls {
        match c {
            CallSite::Method(name) if seen_self.contains(&name) => {
                // Keep both: the self-edge is precise, but the same name
                // may also be called on other receivers in this body.
                sharpened.push(CallSite::OnSelf(name.clone()));
                sharpened.push(CallSite::Method(name));
            }
            other => sharpened.push(other),
        }
    }
    (panics, sharpened)
}

fn read_ident_at(masked: &str, at: usize) -> Option<(String, usize)> {
    let bytes = masked.as_bytes();
    let mut end = at;
    while end < bytes.len() && is_ident(bytes[end]) {
        end += 1;
    }
    (end > at).then(|| (masked[at..end].to_string(), end))
}

fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        out.push(from + rel);
        from += rel + 1;
    }
    out
}

/// Classifies the `[` at `i` as a panicking index expression, or not.
///
/// Indexing requires an expression on the left: the previous significant
/// byte must be an identifier char, `)`, or `]`, and the identifier (if
/// any) must not be a keyword (`let [a, b] =` is a pattern) or a macro
/// bang (`vec![..]`). The full-range `[..]` never panics and is exempt.
fn index_site(masked: &str, i: usize, close: usize) -> Option<PanicSite> {
    let bytes = masked.as_bytes();
    let (prev, prev_idx) = prev_significant(bytes, i)?;
    let is_expr = match prev {
        b')' | b']' => true,
        b if is_ident(b) => ident_ending_at(masked, prev_idx + 1)
            .map(|w| !KEYWORDS.contains(&w))
            .unwrap_or(true),
        _ => false,
    };
    if !is_expr {
        return None;
    }
    // Find the matching `]` and inspect the content.
    let mut depth = 0i32;
    let mut j = i;
    while j < close {
        match bytes[j] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let content = masked[i + 1..j.min(masked.len())].trim();
    if content == ".." {
        return None;
    }
    Some(PanicSite {
        offset: i,
        kind: PanicKind::Index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::{mask_source, strip_test_regions};

    fn build(files: &[(&str, &str)]) -> SymbolGraph {
        let masked: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), strip_test_regions(&mask_source(s))))
            .collect();
        let mut deps = BTreeMap::new();
        deps.insert("core".to_string(), BTreeSet::from(["net".to_string()]));
        deps.insert("net".to_string(), BTreeSet::new());
        SymbolGraph::build(&masked, deps)
    }

    #[test]
    fn free_calls_resolve_within_crate_and_deps() {
        let g = build(&[
            (
                "crates/core/src/a.rs",
                "pub fn entry() { helper(); remote(); }\nfn helper() {}",
            ),
            ("crates/net/src/b.rs", "pub fn remote() { hidden(); }"),
            // Not a dependency of core: never resolved from core.
            ("crates/sim/src/c.rs", "pub fn helper() {}"),
        ]);
        let entry = g.find("core", None, "entry")[0];
        let reach = g.reachable_from(&[entry]);
        let names: Vec<String> = reach.keys().map(|&i| g.fns[i].qualified_name()).collect();
        assert!(names.contains(&"helper".to_string()));
        assert!(names.contains(&"remote".to_string()));
        // Only the core helper, not the sim one.
        assert_eq!(
            reach
                .keys()
                .filter(|&&i| g.fns[i].item.name == "helper")
                .map(|&i| g.fns[i].krate.clone())
                .collect::<Vec<_>>(),
            vec!["core".to_string()]
        );
    }

    #[test]
    fn method_and_qualified_calls_resolve() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "struct R; impl R { pub fn process(&mut self) { self.step(); } \
             fn step(&self) { Helper::go(); } }\n\
             struct Helper; impl Helper { fn go() { x.boom() } fn unrelated() {} }\n\
             struct Other; impl Other { fn boom(&self) { panic!(\"\") } }",
        )]);
        let entry = g.find("core", Some("R"), "process")[0];
        let reach = g.reachable_from(&[entry]);
        let reached: Vec<String> = reach.keys().map(|&i| g.fns[i].qualified_name()).collect();
        assert!(reached.contains(&"R::step".to_string()));
        assert!(reached.contains(&"Helper::go".to_string()));
        // `.boom()` on an unknown receiver over-approximates to any impl.
        assert!(reached.contains(&"Other::boom".to_string()));
        assert!(!reached.contains(&"Helper::unrelated".to_string()));
    }

    #[test]
    fn panic_sites_are_classified() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "fn f(v: &[u32], o: Option<u32>) -> u32 {\n\
                 let a = o.unwrap();\n\
                 let b = o.expect(\"msg\");\n\
                 let c = v[0];\n\
                 let d = &v[..];\n\
                 if a > b { panic!(\"no\") }\n\
                 a + b + c + d.len() as u32\n\
             }",
        )]);
        let kinds: Vec<PanicKind> = g.fns[0].panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::Index,
                PanicKind::Macro
            ]
        );
    }

    #[test]
    fn index_detection_skips_patterns_macros_attributes_and_types() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "#[derive(Debug)]\nfn f(xs: &[u32; 4]) {\n\
                 let [a, b] = [1u32, 2];\n\
                 let v = vec![0u32; 4];\n\
                 let t: [u8; 2] = [0; 2];\n\
                 let w = xs[a as usize];\n\
             }",
        )]);
        let kinds: Vec<PanicKind> = g.fns[0].panics.iter().map(|p| p.kind).collect();
        assert_eq!(kinds, vec![PanicKind::Index], "only `xs[..]` indexes");
    }

    #[test]
    fn debug_asserts_and_unwrap_or_are_not_panic_sites() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "fn f(o: Option<u32>) -> u32 {\n\
                 debug_assert!(o.is_some());\n\
                 debug_assert_eq!(1, 1);\n\
                 o.unwrap_or(0) + o.unwrap_or_default()\n\
             }",
        )]);
        assert!(g.fns[0].panics.is_empty(), "{:?}", g.fns[0].panics);
    }

    #[test]
    fn chains_render_from_the_entry_point() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { mid() } fn mid() { deep() } fn deep() { panic!() }",
        )]);
        let entry = g.find("core", None, "entry")[0];
        let deep = g.find("core", None, "deep")[0];
        let reach = g.reachable_from(&[entry]);
        assert_eq!(g.chain(&reach, deep), "entry → mid → deep");
    }

    #[test]
    fn cargo_deps_parse_both_styles() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\n\
                    dcrd-sim.workspace = true\n\
                    dcrd-net = { path = \"../net\" }\n\
                    rand = \"0.8\"\n\
                    [dev-dependencies]\n\
                    dcrd-metrics.workspace = true\n";
        let deps = parse_cargo_deps(toml);
        assert_eq!(deps, BTreeSet::from(["sim".to_string(), "net".to_string()]));
    }
}
