//! One Criterion benchmark per paper figure: each runs the experiment
//! driver that regenerates that figure's series, at smoke quality (the
//! `dcrd-experiments` binary produces the full-quality tables).

use criterion::{criterion_group, criterion_main, Criterion};
use dcrd_experiments::figures;
use dcrd_experiments::scenario::Quality;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig2_mesh_pf_sweep", |b| {
        b.iter(|| std::hint::black_box(figures::fig2(Quality::Smoke)))
    });
    group.bench_function("fig3_degree5_pf_sweep", |b| {
        b.iter(|| std::hint::black_box(figures::fig3(Quality::Smoke)))
    });
    group.bench_function("fig4_degree_sweep", |b| {
        b.iter(|| std::hint::black_box(figures::fig4(Quality::Smoke)))
    });
    group.bench_function("fig5_size_sweep", |b| {
        b.iter(|| std::hint::black_box(figures::fig5(Quality::Smoke)))
    });
    group.bench_function("fig6_deadline_sweep", |b| {
        b.iter(|| std::hint::black_box(figures::fig6(Quality::Smoke)))
    });
    group.bench_function("fig7_lateness_cdf", |b| {
        b.iter(|| std::hint::black_box(figures::fig7(Quality::Smoke)))
    });
    group.bench_function("fig8_loss_and_m_sweep", |b| {
        b.iter(|| std::hint::black_box(figures::fig8(Quality::Smoke)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
