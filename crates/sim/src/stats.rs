//! Online statistics: Welford mean/variance, ratio counters, histograms and
//! empirical CDFs.
//!
//! These are the primitives the metrics crate aggregates experiment results
//! with. Everything is single-pass and allocation-light so statistics can be
//! collected inline in the simulation hot path.

use serde::{Deserialize, Serialize};

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use dcrd_sim::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    /// `None` until the first sample (avoids non-JSON-serializable ±∞
    /// sentinels).
    min: Option<f64>,
    max: Option<f64>,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: None,
            max: None,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count = self.count.saturating_add(1);
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Merges another accumulator into this one (Chan et al. parallel merge).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); `0.0` for fewer than 2 samples.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`); `0.0` for fewer than 2 samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

/// A success/total ratio counter (e.g. delivered / published).
///
/// # Example
///
/// ```
/// use dcrd_sim::stats::Ratio;
///
/// let mut r = Ratio::new();
/// r.record(true);
/// r.record(true);
/// r.record(false);
/// assert!((r.value() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        Ratio::default()
    }

    /// Records one trial; `hit` marks it a success.
    pub fn record(&mut self, hit: bool) {
        self.total = self.total.saturating_add(1);
        if hit {
            self.hits = self.hits.saturating_add(1);
        }
    }

    /// Adds `hits` successes out of `total` trials at once.
    ///
    /// # Panics
    ///
    /// Panics if `hits > total`.
    pub fn record_many(&mut self, hits: u64, total: u64) {
        assert!(hits <= total, "hits {hits} exceed total {total}");
        self.hits += hits;
        self.total += total;
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }

    /// Number of successes.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of trials.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The ratio in `[0, 1]`; `0.0` when no trials were recorded.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// Fixed-range linear-bucket histogram over `f64` samples, with an exact
/// empirical-CDF query for the bucketed range.
///
/// Values below the range count into a dedicated underflow counter and
/// values at or above the range into an overflow counter — neither skews
/// the bucketed mass, but both participate in [`Histogram::count`] and the
/// CDF. Intended for bounded quantities like "actual delay ÷ deadline".
///
/// # Example
///
/// ```
/// use dcrd_sim::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in 0..10 {
///     h.push(x as f64 + 0.5);
/// }
/// assert_eq!(h.count(), 10);
/// assert!((h.cdf_at(5.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    overflow: u64,
    /// Samples strictly below `lo` (absent in older serialized histograms).
    #[serde(default)]
    underflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `buckets` equal buckets.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`, either bound is non-finite, or `buckets == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "invalid histogram range"
        );
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            overflow: 0,
            underflow: 0,
            count: 0,
        }
    }

    /// Adds one sample. Non-finite samples count into the overflow bucket;
    /// samples strictly below `lo` count into the underflow counter instead
    /// of being clamped into the first bucket (which would fabricate
    /// low-end mass at `lo`).
    pub fn push(&mut self, x: f64) {
        self.count = self.count.saturating_add(1);
        if !x.is_finite() || x >= self.hi {
            self.overflow = self.overflow.saturating_add(1);
            return;
        }
        if x < self.lo {
            self.underflow = self.underflow.saturating_add(1);
            return;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let idx = ((x - self.lo) / width).floor() as usize;
        let idx = idx.min(self.buckets.len().saturating_sub(1));
        if let Some(b) = self.buckets.get_mut(idx) {
            *b = b.saturating_add(1);
        }
    }

    /// Merges another histogram with identical configuration.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different ranges or bucket counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram range mismatch");
        assert_eq!(self.hi, other.hi, "histogram range mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.underflow += other.underflow;
        self.count += other.count;
    }

    /// Total samples, including underflow and overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples that fell at or above the upper bound (or were non-finite).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Samples that fell strictly below the lower bound.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Empirical CDF evaluated at `x`: fraction of samples `< x`
    /// (approximated at bucket granularity with linear interpolation inside
    /// the containing bucket). Underflow samples are below every `x ≥ lo`,
    /// so they contribute to the CDF everywhere in range. Returns `0.0`
    /// when empty.
    #[must_use]
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if x <= self.lo {
            return self.underflow as f64 / self.count as f64;
        }
        if x >= self.hi {
            return (self.count - self.overflow) as f64 / self.count as f64;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let pos = (x - self.lo) / width;
        let full = pos.floor() as usize;
        let frac = pos - full as f64;
        let mut below: f64 =
            self.underflow as f64 + self.buckets[..full].iter().map(|&c| c as f64).sum::<f64>();
        if full < self.buckets.len() {
            below += self.buckets[full] as f64 * frac;
        }
        below / self.count as f64
    }

    /// The `(x, cdf)` series at every bucket boundary — ready for plotting.
    /// The series starts at `(lo, underflow/count)`.
    #[must_use]
    pub fn cdf_series(&self) -> Vec<(f64, f64)> {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        let mut acc = self.underflow;
        let y_of = |acc: u64| {
            if self.count == 0 {
                0.0
            } else {
                acc as f64 / self.count as f64
            }
        };
        out.push((self.lo, y_of(acc)));
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            let x = self.lo + width * (i + 1) as f64;
            out.push((x, y_of(acc)));
        }
        out
    }

    /// Approximate `q`-quantile (`q` in `[0,1]`) using bucket interpolation.
    /// Returns `None` when empty or when the quantile lands in underflow or
    /// overflow — those samples' values are unknown, only their counts are.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * self.count as f64;
        if self.underflow > 0 && target <= self.underflow as f64 {
            return None;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut acc = self.underflow as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            // Empty buckets can never contain the quantile: skipping them
            // keeps e.g. `quantile(0.0)` from answering `lo` when all the
            // mass actually sits in overflow.
            if c > 0 && acc + c as f64 >= target {
                let within = ((target - acc) / c as f64).max(0.0);
                return Some(self.lo + width * (i as f64 + within));
            }
            acc += c as f64;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.5, -3.0, 7.0, 0.0, 4.25];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.population_variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), Some(-3.0));
        assert_eq!(w.max(), Some(7.0));
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn welford_empty_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let (a_half, b_half) = xs.split_at(37);
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in a_half {
            a.push(x);
        }
        for &x in b_half {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-9);

        // Merging into empty adopts the other side.
        let mut empty = Welford::new();
        empty.merge(&all);
        assert_eq!(empty.count(), all.count());
    }

    #[test]
    fn ratio_basics() {
        let mut r = Ratio::new();
        assert_eq!(r.value(), 0.0);
        r.record_many(3, 4);
        r.record(false);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 5);
        assert!((r.value() - 0.6).abs() < 1e-12);
        let mut r2 = Ratio::new();
        r2.record_many(1, 5);
        r.merge(&r2);
        assert!((r.value() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceed total")]
    fn ratio_rejects_bad_batch() {
        Ratio::new().record_many(5, 4);
    }

    #[test]
    fn histogram_cdf_and_quantile() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..1000 {
            h.push(i as f64 / 1000.0);
        }
        assert!((h.cdf_at(0.5) - 0.5).abs() < 0.02);
        assert!((h.quantile(0.9).unwrap() - 0.9).abs() < 0.02);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.cdf_at(-1.0), 0.0);
        assert!((h.cdf_at(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_overflow_and_nan() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(5.0);
        h.push(f64::NAN);
        h.push(0.5);
        assert_eq!(h.count(), 3);
        assert_eq!(h.overflow(), 2);
        // CDF at the top excludes overflow samples.
        assert!((h.cdf_at(1.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.push(1.0);
        b.push(9.0);
        b.push(20.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "range mismatch")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 5.0, 10);
        a.merge(&b);
    }

    #[test]
    fn histogram_series_monotone() {
        let mut h = Histogram::new(1.0, 3.0, 8);
        for x in [1.1, 1.5, 2.0, 2.5, 2.9, 1.05] {
            h.push(x);
        }
        let series = h.cdf_series();
        assert_eq!(series.len(), 9);
        assert_eq!(series.first().unwrap().1, 0.0);
        assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
            assert!(w[1].0 > w[0].0);
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Splitting a sample stream at any point and merging gives the
            /// same moments as one pass.
            #[test]
            fn welford_merge_any_split(
                xs in proptest::collection::vec(-1e6f64..1e6, 2..64),
                split in 0usize..64,
            ) {
                let split = split % xs.len();
                let mut whole = Welford::new();
                for &x in &xs {
                    whole.push(x);
                }
                let mut a = Welford::new();
                let mut b = Welford::new();
                for &x in &xs[..split] {
                    a.push(x);
                }
                for &x in &xs[split..] {
                    b.push(x);
                }
                a.merge(&b);
                prop_assert_eq!(a.count(), whole.count());
                prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * whole.mean().abs().max(1.0));
                prop_assert!(
                    (a.sample_variance() - whole.sample_variance()).abs()
                        < 1e-6 * whole.sample_variance().abs().max(1.0)
                );
            }

            /// The histogram CDF is monotone and normalized for any data.
            #[test]
            fn histogram_cdf_monotone(xs in proptest::collection::vec(-2.0f64..12.0, 1..100)) {
                let mut h = Histogram::new(0.0, 10.0, 20);
                for &x in &xs {
                    h.push(x);
                }
                let mut prev = 0.0;
                for i in 0..=40 {
                    let q = h.cdf_at(i as f64 * 0.25);
                    prop_assert!(q >= prev - 1e-12, "CDF decreased");
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&q));
                    prev = q;
                }
                prop_assert_eq!(h.count(), xs.len() as u64);
            }

            /// Ratio pooling equals concatenation.
            #[test]
            fn ratio_merge_is_concat(
                a_hits in 0u64..100, a_extra in 0u64..100,
                b_hits in 0u64..100, b_extra in 0u64..100,
            ) {
                let mut a = Ratio::new();
                a.record_many(a_hits, a_hits + a_extra);
                let mut b = Ratio::new();
                b.record_many(b_hits, b_hits + b_extra);
                let mut merged = a;
                merged.merge(&b);
                prop_assert_eq!(merged.hits(), a_hits + b_hits);
                prop_assert_eq!(merged.total(), a_hits + a_extra + b_hits + b_extra);
            }
        }
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
        let mut h2 = Histogram::new(0.0, 1.0, 4);
        h2.push(10.0); // only overflow
        assert_eq!(h2.quantile(0.9), None);
        assert_eq!(h2.quantile(2.0), None);
    }

    /// Regression: samples below `lo` used to be clamped into bucket 0,
    /// fabricating mass at the low end of the range.
    #[test]
    fn histogram_underflow_does_not_pollute_first_bucket() {
        let mut h = Histogram::new(1.0, 2.0, 10);
        h.push(0.5); // strictly below lo → underflow
        h.push(1.0); // exactly at lo → first bucket
        h.push(2.0); // exactly at hi → overflow
        h.push(1.55);
        assert_eq!(h.count(), 4);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        // CDF at lo already accounts for the underflow sample...
        assert!((h.cdf_at(1.0) - 0.25).abs() < 1e-12);
        // ...and just above lo only adds the at-lo sample, not the 0.5 one.
        assert!((h.cdf_at(1.1) - 0.5).abs() < 1e-12);
        assert!((h.cdf_at(2.0) - 0.75).abs() < 1e-12);
        // The series starts at the underflow mass, stays monotone.
        let series = h.cdf_series();
        assert!((series.first().unwrap().1 - 0.25).abs() < 1e-12);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    /// Regression: `quantile(0.0)` used to claim `Some(lo)` even when every
    /// sample sat in the overflow bucket (or in empty-bucket prefixes).
    #[test]
    fn histogram_quantile_zero_with_only_overflow_is_none() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(5.0);
        h.push(7.0);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        // With real in-range mass the 0-quantile names the first nonempty
        // bucket's start rather than blindly answering `lo`.
        let mut h2 = Histogram::new(0.0, 1.0, 4);
        h2.push(0.6); // third bucket [0.5, 0.75)
        assert_eq!(h2.quantile(0.0), Some(0.5));
    }

    /// Quantiles landing in underflow mass are unanswerable: only the count
    /// of below-range samples is known, not their values.
    #[test]
    fn histogram_quantile_in_underflow_is_none() {
        let mut h = Histogram::new(1.0, 2.0, 4);
        h.push(0.0);
        h.push(0.2);
        h.push(1.5);
        h.push(1.5);
        assert_eq!(h.quantile(0.1), None);
        // Past the underflow mass the quantile resolves in-range.
        assert!(h.quantile(0.9).is_some());
    }

    #[test]
    fn histogram_merge_sums_underflow() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.push(-1.0);
        b.push(-2.0);
        b.push(0.5);
        a.merge(&b);
        assert_eq!(a.underflow(), 2);
        assert_eq!(a.count(), 3);
    }
}
