// Fixture: DET003 must stay quiet — total_cmp comparators, and a
// PartialOrd impl that merely defines partial_cmp without sorting.
use std::cmp::Ordering;

pub struct Score(pub f64);

impl PartialEq for Score {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}

pub fn rank(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
    xs.sort_by(|a, b| a.total_cmp(b));
}
