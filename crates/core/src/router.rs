//! The DCRD dynamic routing scheme (Algorithm 2 of the paper).
//!
//! Every broker forwards each packet toward each of its destinations by
//! trying the destination's sending list in order:
//!
//! 1. send to the first listed neighbor that has not been on the packet's
//!    routing path and has not already been tried for this destination;
//! 2. wait `ack_timeout_factor × α` for the hop-by-hop ACK; retransmit up
//!    to `m` times;
//! 3. on failure, move to the next listed neighbor;
//! 4. when the list is exhausted, reroute the packet **upstream** (read
//!    from the packet's routing path — no per-packet state is needed at
//!    other brokers);
//! 5. the publisher with an exhausted list drops the packet (or parks and
//!    retries it with the persistence extension enabled).
//!
//! Destinations whose current next hop coincides are merged into a single
//! transmission (Algorithm 2 lines 13–19).

use std::collections::BTreeMap;

use dcrd_net::estimate::LinkEstimates;
use dcrd_net::membership::MembershipDelta;
use dcrd_net::paths::ShortestPaths;
use dcrd_net::{NodeId, NodeSet, Topology};
use dcrd_pubsub::hotstate::{NodeMap, PacketNodeMap, PacketNodeSet};
use dcrd_pubsub::packet::{Packet, PacketId, PacketKind};
use dcrd_pubsub::recovery::SequenceTracker;
use dcrd_pubsub::strategy::{
    ack_timeout, Actions, RoutingStrategy, RunParams, SetupContext, TimerKey, ACK_TIMEOUT_SLACK,
};
use dcrd_pubsub::topic::TopicId;
use dcrd_pubsub::workload::Workload;
use dcrd_sim::{SimDuration, SimTime};

use crate::config::{DcrdConfig, DurabilityMode, PersistenceMode, RepairMode, TimeoutPolicy};
use crate::journal::{InFlightJournal, JournalEntry};
use crate::propagation::{
    compute_tables_snapshot_ws, link_transmission_stats, AdjacencySnapshot, SubscriberTables,
    TableWorkspace,
};

/// Tag space reserved for persistence-retry timers (top bit set).
const PERSIST_TAG_BASE: u64 = 1 << 63;

/// Tag space reserved for journal write-completion timers (below the
/// persistence space, above every sequential send tag).
const JOURNAL_TAG_BASE: u64 = 1 << 62;

/// Packet-id space for NACKs, minted by subscribers. The runtime's data
/// packet ids count up from zero, so the spaces never collide.
const NACK_ID_BASE: u64 = 1 << 63;

/// Most `(packet, broker)` pairs remembered by the upstream bounce ledger
/// before the oldest entries are evicted. The ledger only has to outlive
/// the handful of packets still in flight at once; the cap is a safety
/// valve against unbounded growth on very long runs.
const BOUNCED_LEDGER_CAP: usize = 4096;

/// ACK-timeout α used if a timeout is computed for a link the strategy
/// has no estimate for (a bug caught by debug assertions; release builds
/// degrade to this conservative paper-regime upper bound instead).
const FALLBACK_ALPHA: SimDuration = SimDuration::from_millis(50);

/// One outstanding transmission awaiting its hop-by-hop ACK.
#[derive(Debug, Clone)]
struct Pending {
    to: NodeId,
    /// The exact copy on the wire (resent verbatim on retransmission).
    packet: Packet,
    /// Transmissions already made (1 after the first send).
    sends: u32,
    /// True when this send reroutes to the upstream node rather than down a
    /// sending list.
    is_upstream: bool,
    /// When the most recent transmission went out (RTT sampling).
    sent_at: SimTime,
    /// Whether any retransmission happened — Karn's rule: an ACK for a
    /// retransmitted packet is ambiguous and must not feed the estimator.
    retransmitted: bool,
    /// The timeout armed for the most recent transmission (doubled by the
    /// adaptive policy's backoff on each retransmission).
    timeout: SimDuration,
}

/// Jacobson-style smoothed round-trip state for one directed link, in
/// microseconds (gains 1/8 for SRTT, 1/4 for RTTVAR).
#[derive(Debug, Clone, Copy)]
struct RttEstimate {
    srtt: f64,
    rttvar: f64,
}

impl RttEstimate {
    fn first(sample: f64) -> Self {
        RttEstimate {
            srtt: sample,
            rttvar: sample / 2.0,
        }
    }

    fn update(&mut self, sample: f64) {
        self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - sample).abs();
        self.srtt = 0.875 * self.srtt + 0.125 * sample;
    }
}

/// Circuit-breaker bookkeeping for one directed `(node, neighbor)` pair.
#[derive(Debug, Clone, Copy, Default)]
struct Suspicion {
    /// Consecutive `m`-exhausted timeouts without an intervening ACK.
    consecutive: u32,
    /// Demotions served so far (doubles the cooldown each time).
    demotions: u32,
    /// While set and in the future, the neighbor is skipped by
    /// `choose_next_hop`.
    demoted_until: Option<SimTime>,
}

/// Per-(message, broker) forwarding state. Created when a broker takes
/// responsibility for a packet, deleted as soon as every destination is
/// acknowledged downstream (the paper's "aggressively deletes a copy ...
/// once it receives an ACK").
#[derive(Debug)]
struct NodeState {
    packet: Packet,
    /// The neighbor this broker first received the packet from (`None` at
    /// the publisher) — the paper's upstream node ("the upstream node from
    /// which it received this packet", §III).
    upstream: Option<NodeId>,
    /// Destinations fully handled at this broker (acked downstream,
    /// delivered locally, or given up). A bitset: membership is the hot
    /// per-destination skip check.
    done: NodeSet,
    /// Per-destination neighbors already tried and failed from here.
    tried: BTreeMap<NodeId, NodeSet>,
    /// Outstanding sends keyed by tag.
    pending: BTreeMap<u64, Pending>,
    /// Transmissions spent by this broker on this packet.
    attempts: u32,
    /// Persistence retries consumed (publisher only).
    persist_retries: u32,
    /// Destinations parked for a persistence retry.
    parked: Vec<NodeId>,
}

impl NodeState {
    fn new(packet: Packet, upstream: Option<NodeId>) -> Self {
        NodeState {
            packet,
            upstream,
            done: NodeSet::new(),
            tried: BTreeMap::new(),
            pending: BTreeMap::new(),
            attempts: 0,
            persist_retries: 0,
            parked: Vec::new(),
        }
    }

    fn finished(&self) -> bool {
        self.pending.is_empty()
            && self.parked.is_empty()
            && self
                .packet
                .destinations
                .iter()
                .all(|&d| self.done.contains(d))
    }
}

/// The DCRD routing strategy (the paper's contribution), implementing
/// [`RoutingStrategy`] for the overlay runtime.
///
/// # Example
///
/// ```
/// use dcrd_core::{DcrdConfig, DcrdStrategy};
///
/// let strategy = DcrdStrategy::new(DcrdConfig::default());
/// assert_eq!(strategy.config().max_attempts_per_node, 64);
/// ```
#[derive(Debug)]
pub struct DcrdStrategy {
    config: DcrdConfig,
    params: RunParams,
    topology: Option<Topology>,
    estimates: Option<LinkEstimates>,
    workload: Option<Workload>,
    /// Routing tables per subscription `(topic, publisher, subscriber)` —
    /// publisher-qualified so one topic may have several publishers
    /// (many-to-many pub/sub), each with its own deadline geometry.
    tables: BTreeMap<(TopicId, NodeId, NodeId), SubscriberTables>,
    inflight: PacketNodeMap<NodeState>,
    /// Measured ACK round trips per directed link (adaptive timeouts only).
    rtt: BTreeMap<(NodeId, NodeId), RttEstimate>,
    /// Circuit-breaker state per directed link (breaker enabled only).
    suspicion: BTreeMap<(NodeId, NodeId), Suspicion>,
    /// `(message, subscriber)` pairs already handed to the application —
    /// the durable subscriber-side delivery log that makes local delivery
    /// idempotent even when duplicate copies converge (lost ACKs, crash
    /// recovery).
    delivered: PacketNodeSet,
    /// Write-ahead custody journal ([`DurabilityMode::Durable`] only;
    /// stays empty when volatile). Like `delivered`, it models per-broker
    /// durable storage, so it survives `on_restart` wipes.
    journal: InFlightJournal,
    /// Per-(topic, publisher, subscriber) sequencing state: the bounded
    /// dedup window plus gap bookkeeping (recovery mode only).
    trackers: BTreeMap<(TopicId, NodeId, NodeId), SequenceTracker>,
    /// NACKs already issued per (topic, publisher, subscriber, seq) —
    /// bounds recovery traffic for genuinely unrecoverable gaps.
    nack_counts: BTreeMap<(TopicId, NodeId, NodeId, u64), u32>,
    /// Next hop from each node toward each publisher (shortest delay
    /// path), rebuilt with the routing tables: how NACKs travel upstream.
    toward_publisher: BTreeMap<(NodeId, NodeId), NodeId>,
    /// Brokers the membership layer currently believes are gone (confirmed
    /// dead or gracefully departed). Every table computation masks them.
    absent: NodeSet,
    /// The per-publisher shortest-path trees the current tables were built
    /// from — the incremental repair path diffs fresh masked trees against
    /// these to scope recomputation to affected subscriptions.
    dist_cache: NodeMap<ShortestPaths>,
    /// Custody entries seized from a dead broker, queued under their new
    /// custodian until that broker's next tick flushes them (handoff).
    pending_handoff: BTreeMap<NodeId, Vec<(PacketId, JournalEntry)>>,
    /// Upstream reroutes taken per `(packet, broker)` — the reroute
    /// hysteresis ledger. An upstream bounce usually *succeeds* hop-by-hop
    /// (the unreachability is beyond the pair), so the counter must track
    /// reroutes taken, not timeouts; and it lives on the strategy, not the
    /// per-packet [`NodeState`], because every successful bounce concludes
    /// the sender's state and the returning copy resurrects a fresh one
    /// with zeroed counters — two brokers at an unreachability boundary
    /// would otherwise ping-pong the packet forever. Bounded by
    /// [`BOUNCED_LEDGER_CAP`] (oldest packets evicted first).
    upstream_reroutes: BTreeMap<PacketId, BTreeMap<NodeId, u32>>,
    /// From-scratch `rebuild_tables` passes taken after setup. The initial
    /// construction in `setup` is not counted — it is table construction,
    /// not a repair — so a run that heals purely through incremental
    /// repair and gossip reports zero.
    global_rebuilds: u64,
    /// Incremental membership-repair passes taken instead of a rebuild.
    incremental_repairs: u64,
    /// Monotone control-plane version stamped onto every recomputed
    /// [`SubscriberTables`] entry: bumped once per rebuild or repair pass.
    table_version: u64,
    next_tag: u64,
    next_persist_tag: u64,
    next_journal_tag: u64,
    next_nack_id: u64,
    /// Reusable buffers for the per-event fan-out in `process` — the hot
    /// loop borrows these instead of allocating fresh vectors every call.
    scratch: ScratchArena,
}

/// Scratch buffers recycled across [`DcrdStrategy::process`] calls. The
/// fan-out runs once per arrival, ACK timeout and tick; without reuse each
/// call allocates (and immediately frees) four vectors plus a membership
/// probe per destination.
#[derive(Debug, Default)]
struct ScratchArena {
    /// `(next hop, destinations, is_upstream)` assignments under
    /// construction. The inner destination vectors are moved into the
    /// forwarded packets, so only the outer vector's capacity is recycled.
    assignments: Vec<(NodeId, Vec<NodeId>, bool)>,
    /// Destinations this broker abandons this pass.
    give_ups: Vec<NodeId>,
    /// Destinations parked for a persistence retry this pass.
    park: Vec<NodeId>,
    /// Sends armed this pass, staged before the state re-borrow.
    new_pendings: Vec<(u64, Pending, SimTime)>,
    /// Destinations already handled (done ∪ pending ∪ parked), rebuilt
    /// each pass for O(1) skip checks.
    covered: NodeSet,
}

impl ScratchArena {
    /// Empties every buffer, keeping capacity for the next pass.
    fn reset(&mut self) {
        self.assignments.clear();
        self.give_ups.clear();
        self.park.clear();
        self.new_pendings.clear();
        self.covered.clear();
    }
}

impl DcrdStrategy {
    /// Creates a DCRD strategy with the given configuration. `setup` (run
    /// by the runtime) computes the routing tables.
    #[must_use]
    pub fn new(config: DcrdConfig) -> Self {
        DcrdStrategy {
            config,
            params: RunParams::default(),
            topology: None,
            estimates: None,
            workload: None,
            tables: BTreeMap::new(),
            inflight: PacketNodeMap::new(),
            rtt: BTreeMap::new(),
            suspicion: BTreeMap::new(),
            delivered: PacketNodeSet::new(),
            journal: InFlightJournal::new(),
            trackers: BTreeMap::new(),
            nack_counts: BTreeMap::new(),
            toward_publisher: BTreeMap::new(),
            absent: NodeSet::new(),
            dist_cache: NodeMap::new(),
            pending_handoff: BTreeMap::new(),
            upstream_reroutes: BTreeMap::new(),
            global_rebuilds: 0,
            incremental_repairs: 0,
            table_version: 0,
            next_tag: 0,
            next_persist_tag: PERSIST_TAG_BASE,
            next_journal_tag: JOURNAL_TAG_BASE,
            next_nack_id: NACK_ID_BASE,
            scratch: ScratchArena::default(),
        }
    }

    /// The configuration this strategy runs with.
    #[must_use]
    pub fn config(&self) -> &DcrdConfig {
        &self.config
    }

    /// The routing tables of one subscription, once `setup` has run.
    #[must_use]
    pub fn tables_for(
        &self,
        topic: TopicId,
        publisher: NodeId,
        subscriber: NodeId,
    ) -> Option<&SubscriberTables> {
        self.tables.get(&(topic, publisher, subscriber))
    }

    /// Number of in-flight per-broker packet states (diagnostic).
    #[must_use]
    pub fn inflight_states(&self) -> usize {
        self.inflight.len()
    }

    /// The custody journal (populated in [`DurabilityMode::Durable`] only).
    #[must_use]
    pub fn journal(&self) -> &InFlightJournal {
        &self.journal
    }

    /// One subscriber's sequencing state for a stream, if it exists yet
    /// (recovery mode only).
    #[must_use]
    pub fn sequence_tracker(
        &self,
        topic: TopicId,
        publisher: NodeId,
        subscriber: NodeId,
    ) -> Option<&SequenceTracker> {
        self.trackers.get(&(topic, publisher, subscriber))
    }

    /// Whether brokers journal custody before it takes effect.
    fn durable(&self) -> bool {
        matches!(self.config.durability, DurabilityMode::Durable { .. })
    }

    /// How many from-scratch [`rebuild_tables`](Self::on_monitor) passes
    /// have run after setup. The initial table construction in `setup` is
    /// not counted, so this is exactly the number of times the strategy
    /// fell back to a global rebuild instead of healing incrementally.
    #[must_use]
    pub fn global_rebuilds(&self) -> u64 {
        self.global_rebuilds
    }

    /// The monotone control-plane version the most recent table
    /// recomputation was stamped with (zero until `setup` runs).
    #[must_use]
    pub fn table_version(&self) -> u64 {
        self.table_version
    }

    /// How many incremental membership-repair passes have run instead of a
    /// global rebuild.
    #[must_use]
    pub fn incremental_repairs(&self) -> u64 {
        self.incremental_repairs
    }

    /// Brokers currently masked out of every table computation.
    #[must_use]
    pub fn absent_brokers(&self) -> &NodeSet {
        &self.absent
    }

    fn rebuild_tables(&mut self, estimates: &LinkEstimates) {
        debug_assert!(
            self.topology.is_some() && self.workload.is_some(),
            "rebuild_tables before setup"
        );
        let (Some(topo), Some(workload)) = (self.topology.as_ref(), self.workload.as_ref()) else {
            return;
        };
        self.global_rebuilds += 1;
        self.table_version += 1;
        let version = self.table_version;
        self.tables.clear();
        self.toward_publisher.clear();
        self.dist_cache.clear();
        // One snapshot of per-edge m-transmission stats and one masked
        // adjacency snapshot serve every subscription, and topics sharing a
        // publisher share its shortest-path tree. Absent brokers are masked
        // out of the trees, the adjacency, and the `<d, r>` fixed point.
        let link_stats = link_transmission_stats(topo, estimates, self.params.m);
        let snapshot = AdjacencySnapshot::build(topo, &link_stats, &self.absent);
        // Subscriber-rooted α-distances bound the gossip's active set; a
        // subscriber listening on several topics shares one Dijkstra pass.
        let mut spd_cache: std::collections::BTreeMap<NodeId, Vec<f64>> =
            std::collections::BTreeMap::new();
        let mut ws = TableWorkspace::default();
        for spec in workload.topics() {
            let dist = self.dist_cache.get_or_insert_with(spec.publisher, || {
                dcrd_net::paths::dijkstra_masked(
                    topo,
                    spec.publisher,
                    dcrd_net::paths::Metric::Delay,
                    &self.absent,
                )
            });
            // NACKs climb the shortest-delay tree rooted at the publisher:
            // each node's predecessor is its next hop toward the root.
            for i in 0..topo.num_nodes() {
                let n = topo.node(i);
                if let Some((parent, _)) = dist.predecessor(n) {
                    self.toward_publisher.insert((spec.publisher, n), parent);
                }
            }
            for sub in &spec.subscriptions {
                let spd_bound = spd_cache.entry(sub.subscriber).or_insert_with(|| {
                    let spd = snapshot.alpha_distances_from(sub.subscriber);
                    snapshot.neighbor_min(&spd)
                });
                let mut tables = compute_tables_snapshot_ws(
                    &snapshot,
                    spec.publisher,
                    dist,
                    sub.subscriber,
                    spd_bound,
                    sub.deadline.as_micros() as f64,
                    &self.config,
                    &self.absent,
                    &mut ws,
                );
                tables.set_version(version);
                self.tables
                    .insert((spec.topic, spec.publisher, sub.subscriber), tables);
            }
        }
    }

    /// Incremental membership repair: re-derives each publisher's masked
    /// shortest-path tree, diffs it against the cached one, and recomputes
    /// only the subscriptions a delta node can actually influence — those
    /// whose tree changed over live brokers, whose endpoints are delta
    /// nodes, whose live sending lists mention a delta node, or whose
    /// publisher can now reach a joined node. Everything else keeps its
    /// tables byte-for-byte (the skip is sound because requirements,
    /// candidate sets and link stats are then all unchanged, so the frozen
    /// fixed point would replay identically).
    fn repair_incremental(&mut self, changed: &[NodeId]) {
        let (Some(topo), Some(workload), Some(estimates)) = (
            self.topology.as_ref(),
            self.workload.as_ref(),
            self.estimates.as_ref(),
        ) else {
            return;
        };
        self.incremental_repairs += 1;
        self.table_version += 1;
        let version = self.table_version;
        let link_stats = link_transmission_stats(topo, estimates, self.params.m);
        let snapshot = AdjacencySnapshot::build(topo, &link_stats, &self.absent);
        let mut spd_cache: std::collections::BTreeMap<NodeId, Vec<f64>> =
            std::collections::BTreeMap::new();
        let mut ws = TableWorkspace::default();
        for spec in workload.topics() {
            let fresh = dcrd_net::paths::dijkstra_masked(
                topo,
                spec.publisher,
                dcrd_net::paths::Metric::Delay,
                &self.absent,
            );
            // The tree "changed" when any live broker's cost or parent
            // moved; delta nodes themselves are expected to move and do not
            // count (their rows are masked, not routed through).
            let old = self.dist_cache.get(spec.publisher);
            let tree_changed = old.is_none()
                || (0..topo.num_nodes()).any(|i| {
                    let n = topo.node(i);
                    !self.absent.contains(n)
                        && old.is_some_and(|o| {
                            o.cost_to(n) != fresh.cost_to(n)
                                || o.predecessor(n).map(|(p, _)| p)
                                    != fresh.predecessor(n).map(|(p, _)| p)
                        })
                });
            let join_reaches = changed
                .iter()
                .any(|&n| !self.absent.contains(n) && fresh.cost_to(n).is_some());
            for sub in &spec.subscriptions {
                let key = (spec.topic, spec.publisher, sub.subscriber);
                let affected = tree_changed
                    || join_reaches
                    || changed.contains(&spec.publisher)
                    || changed.contains(&sub.subscriber)
                    || self.tables.get(&key).is_none_or(|t| {
                        (0..topo.num_nodes()).any(|i| {
                            let n = topo.node(i);
                            !self.absent.contains(n)
                                && t.sending_list(n)
                                    .iter()
                                    .any(|c| changed.contains(&c.neighbor))
                        })
                    });
                if !affected {
                    continue;
                }
                let spd_bound = spd_cache.entry(sub.subscriber).or_insert_with(|| {
                    let spd = snapshot.alpha_distances_from(sub.subscriber);
                    snapshot.neighbor_min(&spd)
                });
                let mut tables = compute_tables_snapshot_ws(
                    &snapshot,
                    spec.publisher,
                    &fresh,
                    sub.subscriber,
                    spd_bound,
                    sub.deadline.as_micros() as f64,
                    &self.config,
                    &self.absent,
                    &mut ws,
                );
                tables.set_version(version);
                self.tables.insert(key, tables);
            }
            // Patch the NACK climb tree for this publisher from the fresh
            // predecessors (absent brokers lose their entry).
            for i in 0..topo.num_nodes() {
                let n = topo.node(i);
                match fresh.predecessor(n) {
                    Some((parent, _)) if !self.absent.contains(n) => {
                        self.toward_publisher.insert((spec.publisher, n), parent);
                    }
                    _ => {
                        self.toward_publisher.remove(&(spec.publisher, n));
                    }
                }
            }
            self.dist_cache.insert(spec.publisher, fresh);
        }
    }

    /// Counts one upstream reroute of packet `id` taken at `node` in the
    /// durable hysteresis ledger; evicts the oldest packets past the
    /// ledger cap.
    fn note_upstream_reroute(&mut self, id: PacketId, node: NodeId) {
        *self
            .upstream_reroutes
            .entry(id)
            .or_default()
            .entry(node)
            .or_insert(0) += 1;
        while self.upstream_reroutes.len() > BOUNCED_LEDGER_CAP {
            self.upstream_reroutes.pop_first();
        }
    }

    /// Upstream reroutes packet `id` has already taken at `node`.
    fn upstream_reroutes_taken(&self, id: PacketId, node: NodeId) -> u32 {
        self.upstream_reroutes
            .get(&id)
            .and_then(|m| m.get(&node))
            .copied()
            .unwrap_or(0)
    }

    /// Seizes every custody entry held by a confirmed-dead or departed
    /// broker and queues each under its new custodian — the dead broker's
    /// recorded upstream when it has one, the packet's publisher otherwise
    /// (the custody chain's guaranteed terminus). The queue drains on the
    /// new custodian's next tick.
    fn handoff_custody(&mut self, dead: NodeId) {
        for (id, entry) in self.journal.take_for(dead) {
            let custodian = entry.upstream.unwrap_or(entry.packet.publisher);
            if custodian == dead {
                continue;
            }
            self.pending_handoff
                .entry(custodian)
                .or_default()
                .push((id, entry));
        }
    }

    /// Flushes custody entries handed to `node`, re-entering each packet's
    /// unsettled, still-in-budget destinations into the sending-list
    /// machinery — the same delay-cognizant filter restart replay uses.
    fn flush_handoffs(&mut self, node: NodeId, now: SimTime, out: &mut Actions) {
        let Some(entries) = self.pending_handoff.remove(&node) else {
            return;
        };
        let Some(workload) = self.workload.clone() else {
            return;
        };
        for (id, entry) in entries {
            let mut packet = entry.packet.clone();
            packet.path.clear();
            packet.tag = 0;
            let spec = workload
                .topics()
                .iter()
                .find(|s| s.topic == packet.topic && s.publisher == packet.publisher);
            let live: Vec<NodeId> = packet
                .destinations
                .iter()
                .copied()
                .filter(|&dest| {
                    !entry.done.contains(&dest)
                        && !self.absent.contains(dest)
                        && spec
                            .and_then(|s| s.deadline_of(dest))
                            .is_some_and(|dl| now.saturating_since(packet.published_at) < dl)
                })
                .collect();
            if live.is_empty() {
                continue;
            }
            packet.destinations = live;
            if self.durable() {
                self.journal.record(node, &packet, None);
            }
            match self.inflight.get_mut(&(id, node)) {
                Some(state) => {
                    for &dest in &packet.destinations {
                        if !state.packet.destinations.contains(&dest) {
                            state.packet.destinations.push(dest);
                        }
                        state.done.remove(dest);
                        state.tried.remove(&dest);
                    }
                }
                None => {
                    self.inflight
                        .insert((id, node), NodeState::new(packet, None));
                }
            }
            self.process(node, id, now, out);
        }
    }

    /// Applies a batch of membership deltas: updates the absent mask, wipes
    /// the dead brokers' volatile state, seizes their custody (when handoff
    /// is enabled) and repairs the routing tables per the configured
    /// [`RepairMode`].
    fn apply_membership(&mut self, deltas: &[MembershipDelta]) {
        let mut changed: Vec<NodeId> = Vec::new();
        for delta in deltas {
            match delta {
                MembershipDelta::Join { node } => {
                    if self.absent.contains(*node) {
                        self.absent.remove(*node);
                        changed.push(*node);
                    }
                }
                MembershipDelta::Leave { node } | MembershipDelta::ConfirmDead { node } => {
                    if !self.absent.contains(*node) {
                        self.absent.insert(*node);
                        changed.push(*node);
                    }
                }
                MembershipDelta::Refute { .. } => {}
            }
        }
        for delta in deltas {
            if !delta.removes() {
                continue;
            }
            let dead = delta.node();
            // The broker is gone for good: reclaim its volatile state the
            // way a crash wipe would.
            self.inflight.retain(|holder, _| holder != dead);
            self.rtt.retain(|&(from, _), _| from != dead);
            self.suspicion.retain(|&(from, _), _| from != dead);
            if self.config.membership.handoff {
                self.handoff_custody(dead);
            }
        }
        if changed.is_empty() {
            return;
        }
        match self.config.membership.repair {
            RepairMode::None => {}
            RepairMode::GlobalRebuild => {
                if let Some(estimates) = self.estimates.clone() {
                    self.rebuild_tables(&estimates);
                }
            }
            RepairMode::Incremental => self.repair_incremental(&changed),
        }
    }

    fn alpha(&self, a: NodeId, b: NodeId) -> SimDuration {
        let edge = self
            .topology
            .as_ref()
            .and_then(|topo| topo.edge_between(a, b));
        debug_assert!(edge.is_some(), "no link {a}-{b}");
        match (edge, self.estimates.as_ref()) {
            (Some(e), Some(est)) => est.get(e).alpha,
            // Unreachable once setup ran and the caller picked a genuine
            // neighbor; a conservative fallback keeps release builds alive.
            _ => FALLBACK_ALPHA,
        }
    }

    /// The ACK timeout for a fresh transmission `node → to`. Fixed policy:
    /// the paper's `factor × α + slack`. Adaptive policy: `SRTT +
    /// max(4 × RTTVAR, min_rto) + slack`, clamped to `[min_rto, max_rto]`,
    /// falling back to the fixed formula until the first sample arrives.
    fn rto(&self, node: NodeId, to: NodeId) -> SimDuration {
        match self.config.timeout_policy {
            TimeoutPolicy::Fixed => ack_timeout(self.alpha(node, to), &self.params),
            TimeoutPolicy::Adaptive(cfg) => {
                let min = SimDuration::from_millis(cfg.min_rto_ms);
                let max = SimDuration::from_millis(cfg.max_rto_ms);
                match self.rtt.get(&(node, to)) {
                    Some(e) => {
                        let var = SimDuration::from_micros((4.0 * e.rttvar).round() as u64);
                        let rto = SimDuration::from_micros(e.srtt.round() as u64) + var.max(min);
                        (rto + ACK_TIMEOUT_SLACK).clamp(min, max)
                    }
                    None => ack_timeout(self.alpha(node, to), &self.params).clamp(min, max),
                }
            }
        }
    }

    /// The timeout for a retransmission whose previous timer was
    /// `previous`: the adaptive policy doubles it (capped at `max_rto`),
    /// the fixed policy re-arms the same fixed timer.
    fn backoff_timeout(&self, node: NodeId, to: NodeId, previous: SimDuration) -> SimDuration {
        match self.config.timeout_policy {
            TimeoutPolicy::Fixed => ack_timeout(self.alpha(node, to), &self.params),
            TimeoutPolicy::Adaptive(cfg) => {
                (previous + previous).min(SimDuration::from_millis(cfg.max_rto_ms))
            }
        }
    }

    /// Feeds an ACK for a transmission `node → to` back into the RTT
    /// estimator (Karn's rule: never from a retransmitted send) and clears
    /// the neighbor's suspicion record.
    fn record_ack_feedback(
        &mut self,
        node: NodeId,
        to: NodeId,
        sent_at: SimTime,
        retransmitted: bool,
        now: SimTime,
    ) {
        if matches!(self.config.timeout_policy, TimeoutPolicy::Adaptive(_)) && !retransmitted {
            let sample = now.saturating_since(sent_at).as_micros() as f64;
            match self.rtt.get_mut(&(node, to)) {
                Some(e) => e.update(sample),
                None => {
                    self.rtt.insert((node, to), RttEstimate::first(sample));
                }
            }
        }
        if self.config.breaker.is_some() {
            self.suspicion.remove(&(node, to));
        }
    }

    /// Counts one `m`-exhausted timeout on `node → to` and demotes the
    /// neighbor once the threshold of consecutive exhaustions is reached.
    /// The cooldown doubles with every repeated demotion, capped.
    fn record_exhaustion(&mut self, node: NodeId, to: NodeId, now: SimTime) {
        let Some(cfg) = self.config.breaker else {
            return;
        };
        let s = self.suspicion.entry((node, to)).or_default();
        s.consecutive += 1;
        if s.consecutive >= cfg.threshold {
            let factor = 1u64 << s.demotions.min(16);
            let cooldown = cfg
                .cooldown_ms
                .saturating_mul(factor)
                .min(cfg.max_cooldown_ms);
            s.demoted_until = Some(now + SimDuration::from_millis(cooldown));
            s.demotions += 1;
            s.consecutive = 0;
        }
    }

    /// Whether the breaker currently holds `neighbor` out of `node`'s
    /// sending lists.
    fn is_demoted(&self, node: NodeId, neighbor: NodeId, now: SimTime) -> bool {
        self.config.breaker.is_some()
            && self
                .suspicion
                .get(&(node, neighbor))
                .and_then(|s| s.demoted_until)
                .is_some_and(|until| now < until)
    }

    /// Picks the next hop for `dest` at `node`, honoring the sending list,
    /// the packet's routing path, the per-destination tried set, the
    /// circuit breaker, and the upstream fallback. `None` means "give up /
    /// park". The upstream hop is exempt from the breaker — it is the only
    /// way back.
    fn choose_next_hop(
        &self,
        node: NodeId,
        state: &NodeState,
        dest: NodeId,
        now: SimTime,
    ) -> Option<(NodeId, bool)> {
        let tables = self
            .tables
            .get(&(state.packet.topic, state.packet.publisher, dest))?;
        let tried = state.tried.get(&dest);
        let candidate = tables.sending_list(node).iter().find(|c| {
            c.neighbor != node
                && !state.packet.visited(c.neighbor)
                && !tried.is_some_and(|t| t.contains(c.neighbor))
                && !self.is_demoted(node, c.neighbor, now)
        });
        if let Some(c) = candidate {
            return Some((c.neighbor, false));
        }
        if !self.config.reroute_upstream {
            return None;
        }
        // Reroute hysteresis: an upstream bounce is ACKed hop-by-hop even
        // when the destination is unreachable beyond the pair, so each
        // bounce concludes this broker's state and the returning copy
        // resurrects a fresh one — without a durable budget two brokers at
        // an unreachability boundary ping-pong the packet until the run
        // ends. Stop offering the upstream once this broker has spent its
        // reroute budget for this packet, across all state incarnations.
        if self.upstream_reroutes_taken(state.packet.id, node) >= self.config.upstream_retry_cap {
            return None;
        }
        state.upstream.map(|up| (up, true))
    }

    /// Algorithm 2's main loop: assign every unhandled destination a next
    /// hop, merging destinations that share one. Borrows the strategy's
    /// [`ScratchArena`] for the pass so the hot loop stays allocation-free.
    fn process(&mut self, node: NodeId, id: PacketId, now: SimTime, out: &mut Actions) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.process_with(node, id, now, out, &mut scratch);
        scratch.reset();
        self.scratch = scratch;
    }

    fn process_with(
        &mut self,
        node: NodeId,
        id: PacketId,
        now: SimTime,
        out: &mut Actions,
        scratch: &mut ScratchArena,
    ) {
        // Collect assignments first (immutable pass), then mutate.
        let Some(state) = self.inflight.get(&(id, node)) else {
            return;
        };
        let Some(num_nodes) = self.topology.as_ref().map(Topology::num_nodes) else {
            return;
        };
        let path_budget = self.config.max_path_factor as usize * num_nodes;
        let over_cap = state.attempts >= self.config.max_attempts_per_node
            || state.packet.path.len() >= path_budget;

        // One O(pending destinations) sweep replaces a per-destination scan
        // over every pending send.
        scratch.covered.union_with(&state.done);
        for p in state.pending.values() {
            for &d in &p.packet.destinations {
                scratch.covered.insert(d);
            }
        }
        for &d in &state.parked {
            scratch.covered.insert(d);
        }

        for &dest in &state.packet.destinations {
            if scratch.covered.contains(dest) {
                continue;
            }
            // Park instead of giving up when the persistence extension has
            // retries left — both for an exhausted publisher and for any
            // broker that burned through its attempts cap.
            let can_park = matches!(
                self.config.persistence,
                PersistenceMode::Retry { max_retries, .. }
                    if state.persist_retries < max_retries
            );
            if over_cap {
                if can_park {
                    scratch.park.push(dest);
                } else {
                    scratch.give_ups.push(dest);
                }
                continue;
            }
            match self.choose_next_hop(node, state, dest, now) {
                Some((hop, is_upstream)) => {
                    if let Some(entry) = scratch
                        .assignments
                        .iter_mut()
                        .find(|(h, _, up)| *h == hop && *up == is_upstream)
                    {
                        entry.1.push(dest);
                    } else {
                        scratch.assignments.push((hop, vec![dest], is_upstream));
                    }
                }
                None => {
                    if can_park {
                        scratch.park.push(dest);
                    } else {
                        scratch.give_ups.push(dest);
                    }
                }
            }
        }

        // Mutate phase. The timeout needs `&self` while the state is
        // borrowed mutably, so compute it before re-borrowing the state.
        // The destination vectors move out of the scratch into the
        // forwarded packets (they live on as `packet.destinations`).
        for slot in 0..scratch.assignments.len() {
            let Some(entry) = scratch.assignments.get_mut(slot) else {
                continue;
            };
            let (hop, is_upstream) = (entry.0, entry.2);
            let dests = std::mem::take(&mut entry.1);
            let tag = self.next_tag;
            self.next_tag += 1;
            let timeout = self.rto(node, hop);
            if is_upstream {
                // Every upstream send spends reroute budget the moment it
                // is armed: bounces are ACKed (so no timeout ever fires for
                // them) and conclude this state, which makes this the only
                // point that survives to see every incarnation.
                self.note_upstream_reroute(id, node);
            }
            let Some(state) = self.inflight.get_mut(&(id, node)) else {
                return;
            };
            let forwarded = state.packet.forward(node, dests, tag);
            state.attempts += 1;
            scratch.new_pendings.push((
                tag,
                Pending {
                    to: hop,
                    packet: forwarded,
                    sends: 1,
                    is_upstream,
                    sent_at: now,
                    retransmitted: false,
                    timeout,
                },
                now + timeout,
            ));
        }
        let Some(state) = self.inflight.get_mut(&(id, node)) else {
            return;
        };
        for (tag, pending, deadline) in scratch.new_pendings.drain(..) {
            out.send(pending.to, pending.packet.clone());
            out.set_timer(deadline, TimerKey { packet: id, tag });
            state.pending.insert(tag, pending);
        }
        for dest in scratch.give_ups.drain(..) {
            state.done.insert(dest);
            self.journal.note_done(node, id, dest);
            out.give_up(id, dest);
        }
        if !scratch.park.is_empty() {
            state.parked.append(&mut scratch.park);
            state.persist_retries += 1;
            if let PersistenceMode::Retry { retry_after_ms, .. } = self.config.persistence {
                let tag = self.next_persist_tag;
                self.next_persist_tag += 1;
                out.set_timer(
                    now + SimDuration::from_millis(retry_after_ms),
                    TimerKey { packet: id, tag },
                );
            }
        }
        if state.finished() {
            self.conclude(node, id);
        }
    }

    /// Drops a finished in-flight state and retires its custody entry —
    /// unless the holder is the packet's publisher. The publisher keeps
    /// custody for the whole run so a NACK climbing toward it is always
    /// guaranteed a custodian at the top.
    fn conclude(&mut self, node: NodeId, id: PacketId) {
        let Some(state) = self.inflight.remove(&(id, node)) else {
            return;
        };
        if node != state.packet.publisher {
            self.journal.retire(node, id);
        }
    }

    /// Journals `holder`'s custody of `packet` before it takes effect (the
    /// write-ahead discipline). With a nonzero write cost the forwarding
    /// work is deferred by that cost via a timer in the journal tag space;
    /// returns whether such a timer was armed. No-op returning `false`
    /// when volatile.
    fn take_custody(
        &mut self,
        node: NodeId,
        packet: &Packet,
        upstream: Option<NodeId>,
        now: SimTime,
        out: &mut Actions,
    ) -> bool {
        let Some(cost) = self.config.durability.write_cost_ms() else {
            return false;
        };
        self.journal.record(node, packet, upstream);
        if cost == 0 {
            return false;
        }
        let tag = self.next_journal_tag;
        self.next_journal_tag += 1;
        out.set_timer(
            now + SimDuration::from_millis(cost),
            TimerKey {
                packet: packet.id,
                tag,
            },
        );
        true
    }

    /// Handles local delivery (at most once per `(message, subscriber)`
    /// pair — duplicate copies born from lost ACKs or crash recovery are
    /// absorbed here) and strips this node from the destinations still
    /// needing routing.
    ///
    /// In recovery mode the per-stream [`SequenceTracker`] sits in front:
    /// its bounded dedup window replaces the silent drop with an explicit
    /// [`Suppress`](dcrd_pubsub::strategy::Action::Suppress), so the
    /// auditor can tell benign replay duplicates from protocol bugs.
    fn deliver_locally(&mut self, node: NodeId, packet: &mut Packet, out: &mut Actions) {
        if let Some(pos) = packet.destinations.iter().position(|&d| d == node) {
            let fresh_id = self.delivered.insert((packet.id, node));
            match self.config.recovery {
                Some(rc) => {
                    let tracker = self
                        .trackers
                        .entry((packet.topic, packet.publisher, node))
                        .or_insert_with(|| SequenceTracker::new(rc.dedup_window as usize));
                    let fresh_seq = tracker.observe(packet.seq);
                    if fresh_id && fresh_seq {
                        out.deliver(packet.id);
                    } else {
                        out.suppress(packet.id);
                    }
                }
                None => {
                    if fresh_id {
                        out.deliver(packet.id);
                    }
                }
            }
            packet.destinations.swap_remove(pos);
        }
    }

    /// Re-derives the upstream hop of a broker whose per-packet state was
    /// already reclaimed (the packet returned after we ACKed it away).
    ///
    /// The natural answer is the paper's "node before my first occurrence
    /// on the routing path", but when duplicate copies converged somewhere
    /// the recorded path is a merge of several physical paths and that
    /// entry may not be a neighbor. Fall back along progressively weaker
    /// candidates, requiring each to be an actual neighbor; the sender of
    /// the returning copy always is.
    fn derive_upstream(&self, node: NodeId, packet: &Packet, from: NodeId) -> Option<NodeId> {
        let topo = self.topology.as_ref()?;
        let path = packet.path.as_slice();
        let first = path.iter().position(|&n| n == node);
        let last = path.iter().rposition(|&n| n == node);
        let candidates = [
            first.and_then(|i| i.checked_sub(1)).map(|i| path[i]),
            last.and_then(|i| i.checked_sub(1)).map(|i| path[i]),
            Some(from),
        ];
        candidates
            .into_iter()
            .flatten()
            .find(|&c| c != node && topo.edge_between(node, c).is_some())
    }

    /// Handles an incoming NACK at this broker. Every missing sequence
    /// number the broker has eligible custody for is re-served to the
    /// requesting subscriber through the normal sending-list machinery;
    /// the rest are relayed onward toward the publisher, whose permanent
    /// custody makes it the guaranteed terminus. A NACK reaching the
    /// publisher for something it never journalled simply dies.
    fn handle_nack(&mut self, node: NodeId, packet: Packet, now: SimTime, out: &mut Actions) {
        let PacketKind::Nack {
            subscriber,
            ref missing,
        } = packet.kind
        else {
            return;
        };
        let mut unresolved: Vec<u64> = Vec::new();
        let mut serve: Vec<(PacketId, Packet)> = Vec::new();
        for &seq in missing {
            match self
                .journal
                .find_custody(node, packet.topic, packet.publisher, seq)
            {
                // Serve only subscribers this custody ever covered —
                // otherwise a NACK could conjure deliveries the protocol
                // never owed (e.g. to a subscriber that joined late).
                Some((id, entry))
                    if entry.packet.destinations.contains(&subscriber)
                        || entry.done.contains(&subscriber) =>
                {
                    let mut copy = entry.packet.clone();
                    copy.destinations = vec![subscriber];
                    copy.path.clear();
                    copy.tag = 0;
                    serve.push((id, copy));
                }
                _ => unresolved.push(seq),
            }
        }
        for (id, copy) in serve {
            self.journal.note_undone(node, id, subscriber);
            match self.inflight.get_mut(&(id, node)) {
                Some(state) => {
                    if !state.packet.destinations.contains(&subscriber) {
                        state.packet.destinations.push(subscriber);
                    }
                    state.done.remove(subscriber);
                    state.tried.remove(&subscriber);
                    state.parked.retain(|&d| d != subscriber);
                    // Re-open the send budget: a state worn down by earlier
                    // speculative retries would otherwise give up on the
                    // spot, wedging this pair forever. Demand-driven repair
                    // is bounded by the NACK-per-seq budget instead.
                    state.attempts = 0;
                    state.persist_retries = 0;
                }
                None => {
                    self.inflight.insert((id, node), NodeState::new(copy, None));
                }
            }
            self.process(node, id, now, out);
        }
        if !unresolved.is_empty() && node != packet.publisher {
            if let Some(&hop) = self.toward_publisher.get(&(packet.publisher, node)) {
                let mut fwd = packet.forward(node, vec![packet.publisher], 0);
                fwd.kind = PacketKind::Nack {
                    subscriber,
                    missing: unresolved,
                };
                out.send(hop, fwd);
            }
        }
    }
}

impl RoutingStrategy for DcrdStrategy {
    fn name(&self) -> &'static str {
        "DCRD"
    }

    fn setup(&mut self, ctx: &SetupContext<'_>) {
        self.params = ctx.params;
        self.topology = Some(ctx.topology.clone());
        self.estimates = Some(ctx.estimates.clone());
        self.workload = Some(ctx.workload.clone());
        let estimates = ctx.estimates.clone();
        self.rebuild_tables(&estimates);
        // Setup is table *construction*, not a repair: the rebuild counter
        // only measures from-scratch passes the control plane fell back to
        // after the run started.
        self.global_rebuilds = 0;
    }

    fn on_publish(&mut self, node: NodeId, mut packet: Packet, now: SimTime, out: &mut Actions) {
        self.deliver_locally(node, &mut packet, out);
        if packet.destinations.is_empty() {
            return;
        }
        let id = packet.id;
        let deferred = self.take_custody(node, &packet, None, now, out);
        self.inflight
            .insert((id, node), NodeState::new(packet, None));
        if !deferred {
            self.process(node, id, now, out);
        }
    }

    fn on_packet(
        &mut self,
        node: NodeId,
        from: NodeId,
        mut packet: Packet,
        now: SimTime,
        out: &mut Actions,
    ) {
        if packet.is_nack() {
            self.handle_nack(node, packet, now, out);
            return;
        }
        self.deliver_locally(node, &mut packet, out);
        if packet.destinations.is_empty() {
            return;
        }
        let id = packet.id;
        let durable = self.durable();
        let mut deferred = false;
        match self.inflight.get_mut(&(id, node)) {
            Some(state) => {
                // A second copy: either a RETURNED packet (we are on its
                // path — a downstream broker failed and sent it back) or a
                // converging DUPLICATE (born upstream when an ACK was lost
                // and both the timeout path and the original copy went on).
                let returned = packet.visited(node);
                state.packet.path.merge(&packet.path);
                for dest in packet.destinations {
                    if !state.packet.destinations.contains(&dest) {
                        state.packet.destinations.push(dest);
                    }
                    // Only a returned packet invalidates earlier handling:
                    // its destinations genuinely failed downstream. A mere
                    // duplicate must NOT resurrect destinations we already
                    // forwarded — that would amplify every duplicate.
                    if returned {
                        state.done.remove(dest);
                        self.journal.note_undone(node, id, dest);
                    }
                }
                // A widened destination set widens the custody too. The
                // entry is already journalled, so the rewrite carries no
                // second write cost.
                if durable {
                    let snapshot = state.packet.clone();
                    let upstream = state.upstream;
                    self.journal.record(node, &snapshot, upstream);
                }
            }
            None => {
                // The upstream is only meaningful when the packet came from
                // a broker that has NOT seen it bounce through us before —
                // a returning packet (we are on its path) must not be sent
                // back to the downstream neighbor that returned it.
                let upstream = if packet.visited(node) {
                    self.derive_upstream(node, &packet, from)
                } else {
                    Some(from)
                };
                deferred = self.take_custody(node, &packet, upstream, now, out);
                self.inflight
                    .insert((id, node), NodeState::new(packet, upstream));
            }
        }
        if !deferred {
            self.process(node, id, now, out);
        }
    }

    fn on_ack(
        &mut self,
        node: NodeId,
        _to: NodeId,
        packet: &Packet,
        now: SimTime,
        out: &mut Actions,
    ) {
        let _ = out;
        let Some(state) = self.inflight.get_mut(&(packet.id, node)) else {
            return;
        };
        if let Some(p) = state.pending.remove(&packet.tag) {
            for dest in &p.packet.destinations {
                state.done.insert(*dest);
                self.journal.note_done(node, packet.id, *dest);
            }
            if state.finished() {
                self.conclude(node, packet.id);
            }
            self.record_ack_feedback(node, p.to, p.sent_at, p.retransmitted, now);
        }
    }

    fn on_timer(&mut self, node: NodeId, key: TimerKey, now: SimTime, out: &mut Actions) {
        let id = key.packet;
        if key.tag >= PERSIST_TAG_BASE {
            // Persistence retry: unpark every parked destination and restart
            // the exploration with cleared per-destination history. The
            // retry is semantically a fresh send, so the routing-path record
            // (loop avoidance + path budget) starts over too.
            if let Some(state) = self.inflight.get_mut(&(id, node)) {
                let parked = std::mem::take(&mut state.parked);
                for dest in &parked {
                    state.tried.remove(dest);
                }
                state.attempts = 0;
                state.packet.path.clear();
            }
            self.process(node, id, now, out);
            return;
        }
        if key.tag >= JOURNAL_TAG_BASE {
            // The journal write completed; custody is effective and the
            // packet may now be forwarded. If the broker crashed while the
            // write was in flight, the state is gone and the entry waits
            // for restart replay instead.
            self.process(node, id, now, out);
            return;
        }
        let Some(state) = self.inflight.get_mut(&(id, node)) else {
            return;
        };
        let Some(p) = state.pending.get_mut(&key.tag) else {
            return; // ACK already arrived; stale timer.
        };
        if p.sends < self.params.m {
            // Retransmit on the same link (Eq. 1's m), backing the timer
            // off under the adaptive policy.
            let packet = p.packet.clone();
            let to = p.to;
            let previous = p.timeout;
            let timeout = self.backoff_timeout(node, to, previous);
            let Some(state) = self.inflight.get_mut(&(id, node)) else {
                return;
            };
            let Some(p) = state.pending.get_mut(&key.tag) else {
                return;
            };
            p.sends += 1;
            p.retransmitted = true;
            p.sent_at = now;
            p.timeout = timeout;
            state.attempts += 1;
            out.send(to, packet);
            out.set_timer(now + timeout, key);
            return;
        }
        // Neighbor failed after m transmissions: mark tried and move on.
        // Upstream hops are exempt from the tried set — the upstream link is
        // the only way back, so it is retried (bounded by the attempts cap)
        // rather than written off.
        let Some(p) = state.pending.remove(&key.tag) else {
            return;
        };
        if !p.is_upstream {
            for dest in &p.packet.destinations {
                state.tried.entry(*dest).or_default().insert(p.to);
            }
            self.record_exhaustion(node, p.to, now);
        }
        self.process(node, id, now, out);
    }

    fn on_monitor(&mut self, estimates: &LinkEstimates, _now: SimTime) {
        self.estimates = Some(estimates.clone());
        let estimates = estimates.clone();
        self.rebuild_tables(&estimates);
    }

    fn on_membership(&mut self, deltas: &[MembershipDelta], _now: SimTime) {
        self.apply_membership(deltas);
    }

    fn on_gossip(&mut self, deltas: &[MembershipDelta], _now: SimTime) {
        // Gossip-disseminated deltas mean exactly what detector-broadcast
        // ones do; only their arrival time differs (post-convergence). The
        // same incremental-repair machinery applies them.
        self.apply_membership(deltas);
    }

    fn on_restart(&mut self, node: NodeId, now: SimTime, out: &mut Actions) {
        // With `repair_on_restart`, a broker the membership layer had
        // written off rejoins through the same repair path a detector-
        // observed join takes, instead of waiting for the next probe
        // round. A broker that was never masked repairs nothing, so the
        // PR 3 recovery semantics are untouched.
        if self.config.membership.repair_on_restart && self.absent.contains(node) {
            self.apply_membership(&[MembershipDelta::Join { node }]);
        }
        // A crash wipes the broker's volatile state: in-flight per-packet
        // forwarding state, RTT estimates and breaker bookkeeping. Stale
        // timers for the dropped state fire into the void (on_timer finds
        // nothing and returns). The subscriber delivery log (`delivered`)
        // and the routing tables are durable and survive.
        self.inflight.retain(|holder, _| holder != node);
        self.rtt.retain(|&(from, _), _| from != node);
        self.suspicion.retain(|&(from, _), _| from != node);
        if !self.durable() {
            return;
        }
        // Replay the surviving custody entries, delay-cognizantly: only
        // destinations that are unsettled AND still inside their delay
        // budget re-enter the sending-list machinery. Expired destinations
        // are not replayed — completeness for them is the NACK path's job,
        // which serves from the (kept) journal entry regardless of budget.
        let Some(workload) = self.workload.clone() else {
            return;
        };
        for (id, entry) in self.journal.replay_for(node) {
            let mut packet = entry.packet.clone();
            packet.path.clear();
            packet.tag = 0;
            let spec = workload
                .topics()
                .iter()
                .find(|s| s.topic == packet.topic && s.publisher == packet.publisher);
            let live: Vec<NodeId> = packet
                .destinations
                .iter()
                .copied()
                .filter(|&dest| {
                    !entry.done.contains(&dest)
                        && spec
                            .and_then(|s| s.deadline_of(dest))
                            .is_some_and(|dl| now.saturating_since(packet.published_at) < dl)
                })
                .collect();
            if live.is_empty() {
                continue;
            }
            packet.destinations = live;
            self.inflight
                .insert((id, node), NodeState::new(packet, entry.upstream));
            self.process(node, id, now, out);
        }
    }

    fn on_tick(&mut self, node: NodeId, now: SimTime, out: &mut Actions) {
        self.flush_handoffs(node, now, out);
        let Some(rc) = self.config.recovery else {
            return;
        };
        let Some(workload) = self.workload.clone() else {
            return;
        };
        let grace = SimDuration::from_secs(rc.grace_epochs);
        let horizon = self.params.horizon;
        for spec in workload.topics() {
            if spec.publisher == node || !spec.subscriptions.iter().any(|s| s.subscriber == node) {
                continue;
            }
            let tracker = self
                .trackers
                .entry((spec.topic, spec.publisher, node))
                .or_insert_with(|| SequenceTracker::new(rc.dedup_window as usize));
            // The newest sequence number that was actually published
            // (inside the horizon) and has been overdue for at least the
            // grace period — everything below it should have arrived.
            let mut expected_hi: Option<u64> = None;
            let mut k = tracker.low();
            loop {
                let t = spec.publish_time(k);
                if t > now
                    || t.saturating_since(SimTime::ZERO) > horizon
                    || now.saturating_since(t) < grace
                {
                    break;
                }
                expected_hi = Some(k);
                k += 1;
            }
            let Some(hi) = expected_hi else {
                continue;
            };
            let missing = tracker.missing_through(hi);
            let mut wanted: Vec<u64> = Vec::new();
            for seq in missing {
                let sent = self
                    .nack_counts
                    .entry((spec.topic, spec.publisher, node, seq))
                    .or_insert(0);
                if *sent < rc.max_nacks_per_seq {
                    *sent += 1;
                    wanted.push(seq);
                }
            }
            if wanted.is_empty() {
                continue;
            }
            let Some(&hop) = self.toward_publisher.get(&(spec.publisher, node)) else {
                continue;
            };
            // Fresh id per sweep: the NACK is fire-and-forget (no ACK
            // timer guards it), so a lost one is simply re-minted — and
            // re-used ids would trip the auditor's edge-budget check.
            let id = PacketId::new(self.next_nack_id);
            self.next_nack_id += 1;
            let nack = Packet::nack(id, spec.topic, spec.publisher, now, node, wanted);
            out.send(hop, nack.forward(node, vec![spec.publisher], 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::failure::{FailureModel, LinkFailureModel};
    use dcrd_net::loss::LossModel;
    use dcrd_net::topology::{full_mesh, line, ring, DelayRange};
    use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig};
    use dcrd_pubsub::topic::Subscription;
    use dcrd_pubsub::workload::{TopicSpec, Workload, WorkloadConfig};
    use dcrd_sim::rng::rng_for;

    fn one_topic_workload(
        topo: &Topology,
        publisher: usize,
        subscribers: &[usize],
        deadline: SimDuration,
    ) -> Workload {
        Workload::from_topics(vec![TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(publisher),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: subscribers
                .iter()
                .map(|&s| Subscription::new(topo.node(s), deadline))
                .collect(),
            burst: None,
        }])
    }

    fn run(
        topo: &Topology,
        wl: &Workload,
        pf: f64,
        pl: f64,
        secs: u64,
        seed: u64,
        config: DcrdConfig,
    ) -> dcrd_pubsub::runtime::DeliveryLog {
        let failure = FailureModel::links_only(LinkFailureModel::new(pf, seed ^ 0xFA11));
        let rt_config = RuntimeConfig::paper(SimDuration::from_secs(secs), seed);
        let rt = OverlayRuntime::new(topo, wl, failure, LossModel::new(pl), rt_config);
        rt.run(&mut DcrdStrategy::new(config))
    }

    #[test]
    fn lossless_line_delivers_on_time() {
        let topo = line(4, SimDuration::from_millis(10));
        let wl = one_topic_workload(&topo, 0, &[3], SimDuration::from_millis(90));
        let log = run(&topo, &wl, 0.0, 0.0, 20, 1, DcrdConfig::default());
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!((log.qos_delivery_ratio() - 1.0).abs() < 1e-12);
        // Exactly 3 hops per message, no retries.
        assert!((log.packets_per_subscriber() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_subscribers_are_merged_where_paths_share_hops() {
        // Line 0-1-2-3: subscribers 2 and 3. Hop 0→1→2 is shared, so the
        // merged packet costs 2 sends up to node 2 plus 1 send to 3.
        let topo = line(4, SimDuration::from_millis(10));
        let wl = one_topic_workload(&topo, 0, &[2, 3], SimDuration::from_millis(200));
        let log = run(&topo, &wl, 0.0, 0.0, 10, 2, DcrdConfig::default());
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
        // 3 transmissions per message for 2 (msg, sub) pairs → 1.5.
        assert!(
            (log.packets_per_subscriber() - 1.5).abs() < 1e-9,
            "merging broken: {}",
            log.packets_per_subscriber()
        );
    }

    #[test]
    fn reroutes_around_permanently_failed_link() {
        // Ring of 4: direct route 0→1, detour 0→3→2→1. Kill link 0-1 by
        // giving it pf=1? Per-link failure control isn't exposed, so use a
        // custom topology where the "direct" link is dead via node pair
        // distance: instead simulate pf high and rely on rerouting to lift
        // delivery above the single-path baseline.
        let topo = ring(4, SimDuration::from_millis(10));
        let wl = one_topic_workload(&topo, 0, &[1], SimDuration::from_millis(400));
        let log = run(&topo, &wl, 0.3, 0.0, 120, 3, DcrdConfig::default());
        // A fixed single path delivers ≈70% (direct link up). The oracle
        // ceiling is P(any path up) = 1−0.3·(1−0.7³) ≈ 80%. DCRD must land
        // well above the fixed path and near the ceiling.
        assert!(
            log.delivery_ratio() > 0.75,
            "delivery ratio {} too low for DCRD",
            log.delivery_ratio()
        );
        assert!(log.delivery_ratio() <= 0.85);
    }

    #[test]
    fn mesh_under_paper_conditions_is_near_perfect() {
        let mut rng = rng_for(4, "router");
        let topo = full_mesh(10, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        let log = run(&topo, &wl, 0.04, 1e-4, 60, 4, DcrdConfig::default());
        assert!(
            log.delivery_ratio() > 0.995,
            "delivery ratio {}",
            log.delivery_ratio()
        );
        assert!(
            log.qos_delivery_ratio() > 0.97,
            "QoS ratio {}",
            log.qos_delivery_ratio()
        );
    }

    #[test]
    fn no_reroute_ablation_gives_up_earlier() {
        let topo = ring(4, SimDuration::from_millis(10));
        let wl = one_topic_workload(&topo, 0, &[2], SimDuration::from_millis(400));
        let with = run(&topo, &wl, 0.25, 0.0, 120, 5, DcrdConfig::default());
        let without = run(
            &topo,
            &wl,
            0.25,
            0.0,
            120,
            5,
            DcrdConfig {
                reroute_upstream: false,
                ..DcrdConfig::default()
            },
        );
        assert!(
            with.delivery_ratio() >= without.delivery_ratio(),
            "reroute {} < no-reroute {}",
            with.delivery_ratio(),
            without.delivery_ratio()
        );
    }

    #[test]
    fn persistence_mode_recovers_parked_packets() {
        // Two nodes, one link: when the link's epoch fails, the publisher
        // has no alternative and (without persistence) gives up; with
        // persistence it retries next epoch and delivers late.
        let topo = line(2, SimDuration::from_millis(10));
        let wl = one_topic_workload(&topo, 0, &[1], SimDuration::from_millis(100));
        let base = run(&topo, &wl, 0.4, 0.0, 120, 6, DcrdConfig::default());
        let persist = run(
            &topo,
            &wl,
            0.4,
            0.0,
            120,
            6,
            DcrdConfig {
                persistence: PersistenceMode::Retry {
                    max_retries: 10,
                    retry_after_ms: 1000,
                },
                ..DcrdConfig::default()
            },
        );
        assert!(
            persist.delivery_ratio() > base.delivery_ratio() + 0.1,
            "persistence {} vs base {}",
            persist.delivery_ratio(),
            base.delivery_ratio()
        );
        // Late deliveries don't help QoS much, but delivery must be ~1.
        assert!(persist.delivery_ratio() > 0.95);
    }

    #[test]
    fn retransmission_m2_sends_more() {
        let topo = line(2, SimDuration::from_millis(10));
        let wl = one_topic_workload(&topo, 0, &[1], SimDuration::from_millis(100));
        let mut m2 = DcrdConfig::default();
        let _ = &mut m2;
        // m comes from RunParams; craft runtimes directly.
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 77));
        let mut cfg1 = RuntimeConfig::paper(SimDuration::from_secs(60), 7);
        cfg1.params.m = 1;
        let mut cfg2 = cfg1;
        cfg2.params.m = 2;
        // Heavy random loss so retransmissions matter.
        let log1 = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.3), cfg1)
            .run(&mut DcrdStrategy::new(DcrdConfig::default()));
        let log2 = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.3), cfg2)
            .run(&mut DcrdStrategy::new(DcrdConfig::default()));
        assert!(
            log2.delivery_ratio() > log1.delivery_ratio(),
            "m=2 {} should beat m=1 {} under pure loss on a single path",
            log2.delivery_ratio(),
            log1.delivery_ratio()
        );
    }

    #[test]
    fn inflight_state_is_cleaned_up() {
        let topo = line(3, SimDuration::from_millis(10));
        let wl = one_topic_workload(&topo, 0, &[2], SimDuration::from_millis(100));
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let rt_config = RuntimeConfig::paper(SimDuration::from_secs(10), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), rt_config);
        let mut strategy = DcrdStrategy::new(DcrdConfig::default());
        let log = rt.run(&mut strategy);
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(
            strategy.inflight_states(),
            0,
            "all per-packet state must be reclaimed after ACKs"
        );
    }

    #[test]
    fn chaos_hardened_matches_default_on_healthy_network() {
        // With no chaos, no loss and no failures, the adaptive timers never
        // fire and the breaker never trips: behavior is byte-identical to
        // the paper's configuration.
        let topo = line(4, SimDuration::from_millis(10));
        let wl = one_topic_workload(&topo, 0, &[3], SimDuration::from_millis(90));
        let log = run(&topo, &wl, 0.0, 0.0, 20, 1, DcrdConfig::chaos_hardened());
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!((log.qos_delivery_ratio() - 1.0).abs() < 1e-12);
        assert!((log.packets_per_subscriber() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn adaptive_timeouts_survive_paper_conditions() {
        let mut rng = rng_for(4, "router");
        let topo = full_mesh(10, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        let log = run(&topo, &wl, 0.04, 1e-4, 60, 4, DcrdConfig::chaos_hardened());
        assert!(
            log.delivery_ratio() > 0.99,
            "delivery ratio {}",
            log.delivery_ratio()
        );
    }

    #[test]
    fn rtt_estimator_follows_samples_and_honors_karn() {
        let mut s = DcrdStrategy::new(DcrdConfig::chaos_hardened());
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        // First sample: srtt = s, rttvar = s/2 →
        // RTO = 30ms + max(4 × 15ms → capped…, min) — here 30 + 60 + slack,
        // clamped to max_rto = 500ms.
        s.record_ack_feedback(a, b, SimTime::ZERO, false, SimTime::from_millis(30));
        let rto1 = s.rto(a, b);
        assert_eq!(rto1, SimDuration::from_millis(91));
        // A retransmitted send must not perturb the estimate (Karn).
        s.record_ack_feedback(a, b, SimTime::ZERO, true, SimTime::from_secs(9));
        assert_eq!(s.rto(a, b), rto1);
        // Repeated identical samples shrink RTTVAR toward zero, so the RTO
        // tightens toward srtt + min_rto + slack.
        for _ in 0..200 {
            s.record_ack_feedback(a, b, SimTime::ZERO, false, SimTime::from_millis(30));
        }
        let rto2 = s.rto(a, b);
        assert!(rto2 < rto1);
        assert_eq!(rto2, SimDuration::from_millis(33));
        // Backoff doubles and caps at max_rto.
        let doubled = s.backoff_timeout(a, b, rto2);
        assert_eq!(doubled, SimDuration::from_millis(66));
        let capped = s.backoff_timeout(a, b, SimDuration::from_millis(400));
        assert_eq!(capped, SimDuration::from_millis(500));
    }

    #[test]
    fn breaker_demotes_and_probes_back_in() {
        let mut s = DcrdStrategy::new(DcrdConfig::chaos_hardened());
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let t = SimTime::from_secs(10);
        // Below the threshold: still usable.
        s.record_exhaustion(a, b, t);
        s.record_exhaustion(a, b, t);
        assert!(!s.is_demoted(a, b, t));
        // Third consecutive exhaustion trips the breaker for 1000ms.
        s.record_exhaustion(a, b, t);
        assert!(s.is_demoted(a, b, t));
        assert!(s.is_demoted(a, b, t + SimDuration::from_millis(999)));
        assert!(!s.is_demoted(a, b, t + SimDuration::from_millis(1000)));
        // A second demotion doubles the cooldown.
        let t2 = t + SimDuration::from_secs(5);
        for _ in 0..3 {
            s.record_exhaustion(a, b, t2);
        }
        assert!(s.is_demoted(a, b, t2 + SimDuration::from_millis(1999)));
        assert!(!s.is_demoted(a, b, t2 + SimDuration::from_millis(2000)));
        // An ACK clears everything, including the doubling history.
        s.record_ack_feedback(a, b, SimTime::ZERO, false, t2);
        assert!(!s.is_demoted(a, b, t2));
        for _ in 0..3 {
            s.record_exhaustion(a, b, t2);
        }
        assert!(!s.is_demoted(a, b, t2 + SimDuration::from_millis(1000)));
    }

    #[test]
    fn breaker_disabled_never_demotes() {
        let mut s = DcrdStrategy::new(DcrdConfig::default());
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        for _ in 0..10 {
            s.record_exhaustion(a, b, SimTime::ZERO);
        }
        assert!(!s.is_demoted(a, b, SimTime::ZERO));
    }

    #[test]
    fn local_delivery_is_idempotent() {
        use dcrd_pubsub::strategy::Action;

        let mut s = DcrdStrategy::new(DcrdConfig::default());
        let node = NodeId::new(2);
        let mut first = Packet::new(
            PacketId::new(7),
            TopicId::new(0),
            NodeId::new(0),
            SimTime::ZERO,
            vec![node],
        );
        let mut dup = first.clone();
        let mut out = Actions::new();
        s.deliver_locally(node, &mut first, &mut out);
        s.deliver_locally(node, &mut dup, &mut out);
        let delivers = out
            .drain()
            .filter(|a| matches!(a, Action::Deliver { .. }))
            .count();
        assert_eq!(delivers, 1, "duplicate copy must not deliver twice");
        assert!(first.destinations.is_empty());
        assert!(dup.destinations.is_empty());
    }

    #[test]
    fn restart_drops_volatile_state_keeps_delivery_log() {
        let mut s = DcrdStrategy::new(DcrdConfig::chaos_hardened());
        let crashed = NodeId::new(1);
        let healthy = NodeId::new(2);
        let mk = |n: u32| {
            Packet::new(
                PacketId::new(u64::from(n)),
                TopicId::new(0),
                NodeId::new(0),
                SimTime::ZERO,
                vec![NodeId::new(5)],
            )
        };
        s.inflight
            .insert((PacketId::new(1), crashed), NodeState::new(mk(1), None));
        s.inflight
            .insert((PacketId::new(2), healthy), NodeState::new(mk(2), None));
        s.record_ack_feedback(
            crashed,
            healthy,
            SimTime::ZERO,
            false,
            SimTime::from_millis(5),
        );
        s.record_ack_feedback(
            healthy,
            crashed,
            SimTime::ZERO,
            false,
            SimTime::from_millis(5),
        );
        s.delivered.insert((PacketId::new(1), crashed));
        let mut out = Actions::new();
        s.on_restart(crashed, SimTime::from_secs(3), &mut out);
        assert_eq!(
            s.inflight_states(),
            1,
            "only the crashed broker's state goes"
        );
        assert!(s.inflight.contains_key(&(PacketId::new(2), healthy)));
        assert!(!s.rtt.contains_key(&(crashed, healthy)));
        assert!(s.rtt.contains_key(&(healthy, crashed)));
        assert!(
            s.delivered.contains(&(PacketId::new(1), crashed)),
            "the subscriber delivery log is durable across restarts"
        );
        assert!(out.is_empty());
    }

    #[test]
    fn tables_are_exposed_after_setup() {
        let topo = line(3, SimDuration::from_millis(10));
        let wl = one_topic_workload(&topo, 0, &[2], SimDuration::from_millis(100));
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let rt_config = RuntimeConfig::paper(SimDuration::from_secs(1), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), rt_config);
        let mut strategy = DcrdStrategy::new(DcrdConfig::default());
        let _ = rt.run(&mut strategy);
        let tables = strategy
            .tables_for(TopicId::new(0), topo.node(0), topo.node(2))
            .expect("tables computed in setup");
        assert!(tables.converged());
        assert_eq!(tables.subscriber(), topo.node(2));
        assert!(strategy
            .tables_for(TopicId::new(9), topo.node(0), topo.node(2))
            .is_none());
        assert_eq!(strategy.name(), "DCRD");
    }
}
