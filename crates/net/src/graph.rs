//! The overlay topology graph.
//!
//! An overlay is an undirected graph of broker nodes. Every link carries a
//! propagation delay (the paper draws them uniformly from 10–50 ms, modeled
//! on AT&T backbone measurements). Links are symmetric: the same delay and
//! failure state applies in both directions, matching the paper's model.

use std::fmt;

use dcrd_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Identifier of a broker node within one [`Topology`] (dense, `0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node, usable to index per-node arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an undirected overlay link within one [`Topology`]
/// (dense, `0..m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        EdgeId(index)
    }

    /// The dense index of this edge, usable to index per-edge arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One undirected overlay link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    a: NodeId,
    b: NodeId,
    delay: SimDuration,
}

/// Fallback for out-of-range edge lookups: a zero-delay self-loop on node
/// 0, an edge no routing logic will ever traverse. Reachable only through
/// a bogus `EdgeId` (a caller bug); returning it keeps the accessors
/// panic-free on the hot path.
const DEGENERATE_EDGE: Edge = Edge {
    a: NodeId(0),
    b: NodeId(0),
    delay: SimDuration::ZERO,
};

impl Edge {
    /// One endpoint.
    #[must_use]
    pub fn a(&self) -> NodeId {
        self.a
    }

    /// The other endpoint.
    #[must_use]
    pub fn b(&self) -> NodeId {
        self.b
    }

    /// One-way propagation delay of the link.
    #[must_use]
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this edge.
    #[must_use]
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of edge {self:?}")
        }
    }
}

/// An immutable overlay topology: broker nodes plus undirected delay-weighted
/// links.
///
/// Built through [`TopologyBuilder`] or the generators in
/// [`topology`](crate::topology). Node and edge ids are dense indices so
/// per-node/per-edge state can live in plain vectors.
///
/// Adjacency is stored in compressed-sparse-row (CSR) form: one flat
/// `(neighbor, edge)` array plus per-node offsets into it. A neighbor scan
/// is a contiguous slice read — no per-node `Vec` headers, no pointer
/// chasing — which is what Dijkstra and table repair spend their time on at
/// 1k-broker scale.
///
/// # Example
///
/// ```
/// use dcrd_net::graph::TopologyBuilder;
/// use dcrd_sim::SimDuration;
///
/// let mut b = TopologyBuilder::new(3);
/// let n = b.nodes();
/// b.link(n[0], n[1], SimDuration::from_millis(10));
/// b.link(n[1], n[2], SimDuration::from_millis(20));
/// let topo = b.build();
/// assert_eq!(topo.num_nodes(), 3);
/// assert_eq!(topo.num_edges(), 2);
/// assert!(topo.is_connected());
/// assert_eq!(topo.degree(n[1]), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    edges: Vec<Edge>,
    /// CSR row offsets: node `v`'s neighbors live at
    /// `csr_pairs[csr_offsets[v] .. csr_offsets[v + 1]]`. Length is
    /// `num_nodes + 1`; the final entry equals `csr_pairs.len()`.
    csr_offsets: Vec<u32>,
    /// Flat `(neighbor, edge)` pairs, each node's segment sorted by
    /// neighbor id. Length is `2 * num_edges`.
    csr_pairs: Vec<(NodeId, EdgeId)>,
}

/// Builds the CSR arrays from an edge list: degree count, prefix-sum
/// offsets, scatter, then an in-segment sort by neighbor id (the invariant
/// [`Topology::edge_between`]'s binary search relies on).
fn build_csr(num_nodes: usize, edges: &[Edge]) -> (Vec<u32>, Vec<(NodeId, EdgeId)>) {
    let mut offsets = vec![0u32; num_nodes + 1];
    for e in edges {
        offsets[e.a.index() + 1] += 1;
        offsets[e.b.index() + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut pairs = vec![(NodeId(0), EdgeId(0)); edges.len() * 2];
    let mut cursor: Vec<u32> = offsets[..num_nodes].to_vec();
    for (i, e) in edges.iter().enumerate() {
        let id = EdgeId(i as u32);
        let slot_a = cursor[e.a.index()];
        pairs[slot_a as usize] = (e.b, id);
        cursor[e.a.index()] = slot_a + 1;
        let slot_b = cursor[e.b.index()];
        pairs[slot_b as usize] = (e.a, id);
        cursor[e.b.index()] = slot_b + 1;
    }
    for v in 0..num_nodes {
        pairs[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable_by_key(|&(n, _)| n);
    }
    (offsets, pairs)
}

/// Wire form of [`Topology`]: the CSR arrays are derived state, so only the
/// edge list and node count travel. [`Topology::from_wire`] validates the
/// edges and rebuilds the CSR, so a persisted topology can never smuggle in
/// a malformed adjacency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyWire {
    /// Number of broker nodes (edges may not reference ids at or above it).
    pub num_nodes: usize,
    /// The undirected edge list; edge `i` has id `EdgeId(i)`.
    pub edges: Vec<Edge>,
}

// The offline serde stub is marker-only, so `Topology`'s own impls carry no
// behavior; real persistence goes through the explicit [`TopologyWire`]
// conversion below.
impl Serialize for Topology {}
impl<'de> Deserialize<'de> for Topology {}

impl Topology {
    /// The compact wire form: edge list plus node count, CSR omitted.
    #[must_use]
    pub fn to_wire(&self) -> TopologyWire {
        TopologyWire {
            num_nodes: self.num_nodes(),
            edges: self.edges.clone(),
        }
    }

    /// Rebuilds a topology (including its CSR adjacency) from the wire
    /// form, rejecting edges that reference nodes outside `0..num_nodes`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range edge.
    pub fn from_wire(wire: TopologyWire) -> Result<Topology, String> {
        for e in &wire.edges {
            if e.a.index() >= wire.num_nodes || e.b.index() >= wire.num_nodes {
                return Err(format!(
                    "edge {}-{} references a node outside 0..{}",
                    e.a, e.b, wire.num_nodes
                ));
            }
        }
        let (csr_offsets, csr_pairs) = build_csr(wire.num_nodes, &wire.edges);
        Ok(Topology {
            edges: wire.edges,
            csr_offsets,
            csr_pairs,
        })
    }
}

impl Topology {
    /// Number of broker nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.csr_offsets.len() - 1
    }

    /// Number of undirected links.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The node with dense index `index`. An out-of-range index is a
    /// caller bug; it yields an id no adjacency lookup will resolve
    /// (debug builds assert).
    #[must_use]
    pub fn node(&self, index: usize) -> NodeId {
        debug_assert!(index < self.num_nodes(), "node index {index} out of range");
        NodeId(index as u32)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// The edge with the given id. A bogus id resolves to
    /// [`DEGENERATE_EDGE`] rather than panicking: the hot path treats a
    /// zero-delay self-loop as an edge nothing traverses.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        self.edges.get(id.index()).unwrap_or(&DEGENERATE_EDGE)
    }

    /// One-way propagation delay of the given link (zero for a bogus id).
    #[must_use]
    pub fn delay(&self, id: EdgeId) -> SimDuration {
        self.edges
            .get(id.index())
            .map_or(SimDuration::ZERO, |e| e.delay)
    }

    /// Neighbors of `node` as `(neighbor, connecting edge)` pairs, sorted by
    /// neighbor id (empty for an unknown node).
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, EdgeId)] {
        let v = node.index();
        let (Some(&lo), Some(&hi)) = (self.csr_offsets.get(v), self.csr_offsets.get(v + 1)) else {
            return &[];
        };
        self.csr_pairs.get(lo as usize..hi as usize).unwrap_or(&[])
    }

    /// Number of links incident to `node`.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// The edge connecting `a` and `b`, if one exists.
    #[must_use]
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        let adj = self.neighbors(a);
        let i = adj.binary_search_by_key(&b, |&(n, _)| n).ok()?;
        adj.get(i).map(|&(_, e)| e)
    }

    /// Whether every node can reach every other node.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(node) = stack.pop() {
            for &(next, _) in self.neighbors(node) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    count += 1;
                    stack.push(next);
                }
            }
        }
        count == n
    }

    /// Average node degree.
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.num_nodes() as f64
    }
}

/// Orders an undirected endpoint pair canonically for set membership.
fn normalized(a: NodeId, b: NodeId) -> (u32, u32) {
    let (x, y) = (a.index() as u32, b.index() as u32);
    (x.min(y), x.max(y))
}

/// Incremental builder for [`Topology`].
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// Normalized `(min, max)` endpoint pairs of every added link, so the
    /// `has_link` queries random generators issue per candidate edge are a
    /// set lookup instead of an `O(E)` scan.
    pairs: std::collections::BTreeSet<(u32, u32)>,
    /// Per-node link count, maintained incrementally.
    degrees: Vec<u32>,
}

impl TopologyBuilder {
    /// Starts a topology with `num_nodes` nodes and no links.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero or exceeds `u32::MAX`.
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "topology needs at least one node");
        assert!(num_nodes <= u32::MAX as usize, "too many nodes");
        TopologyBuilder {
            num_nodes,
            edges: Vec::new(),
            pairs: std::collections::BTreeSet::new(),
            degrees: vec![0; num_nodes],
        }
    }

    /// All node ids of the topology being built.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeId> {
        (0..self.num_nodes as u32).map(NodeId).collect()
    }

    /// Whether a link between `a` and `b` has already been added.
    #[must_use]
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.pairs.contains(&normalized(a, b))
    }

    /// Current number of links incident to `node`.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.degrees.get(node.index()).copied().unwrap_or(0) as usize
    }

    /// Adds an undirected link between `a` and `b` with one-way delay
    /// `delay`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, on duplicate links, or if either endpoint is
    /// out of range.
    pub fn link(&mut self, a: NodeId, b: NodeId, delay: SimDuration) -> EdgeId {
        assert!(a != b, "self-loop on {a}");
        assert!(
            a.index() < self.num_nodes && b.index() < self.num_nodes,
            "endpoint out of range"
        );
        assert!(!self.has_link(a, b), "duplicate link {a}-{b}");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { a, b, delay });
        self.pairs.insert(normalized(a, b));
        self.degrees[a.index()] += 1;
        self.degrees[b.index()] += 1;
        id
    }

    /// Finalizes the topology.
    #[must_use]
    pub fn build(self) -> Topology {
        let (csr_offsets, csr_pairs) = build_csr(self.num_nodes, &self.edges);
        Topology {
            edges: self.edges,
            csr_offsets,
            csr_pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = TopologyBuilder::new(3);
        let n = b.nodes();
        b.link(n[0], n[1], SimDuration::from_millis(10));
        b.link(n[1], n[2], SimDuration::from_millis(20));
        b.link(n[0], n[2], SimDuration::from_millis(30));
        b.build()
    }

    #[test]
    fn builder_and_accessors() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.degree(t.node(0)), 2);
        assert!((t.average_degree() - 2.0).abs() < 1e-12);
        let e = t.edge_between(t.node(0), t.node(2)).unwrap();
        assert_eq!(t.delay(e), SimDuration::from_millis(30));
        assert_eq!(t.edge(e).other(t.node(0)), t.node(2));
        assert_eq!(t.edge(e).other(t.node(2)), t.node(0));
    }

    #[test]
    fn edge_between_is_symmetric() {
        let t = triangle();
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(t.edge_between(a, b), t.edge_between(b, a));
            }
        }
        assert_eq!(t.edge_between(t.node(0), t.node(0)), None);
    }

    #[test]
    fn neighbors_sorted_by_id() {
        let t = triangle();
        for node in t.nodes() {
            let ns = t.neighbors(node);
            for w in ns.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn connectivity_detection() {
        let t = triangle();
        assert!(t.is_connected());

        let mut b = TopologyBuilder::new(4);
        let n = b.nodes();
        b.link(n[0], n[1], SimDuration::from_millis(1));
        // node 2, 3 isolated except one link between them
        b.link(n[2], n[3], SimDuration::from_millis(1));
        assert!(!b.build().is_connected());

        let single = TopologyBuilder::new(1).build();
        assert!(single.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new(2);
        let n = b.nodes();
        b.link(n[0], n[0], SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_rejected() {
        let mut b = TopologyBuilder::new(2);
        let n = b.nodes();
        b.link(n[0], n[1], SimDuration::from_millis(1));
        b.link(n[1], n[0], SimDuration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_rejects_non_endpoint() {
        let t = triangle();
        let e = t.edge_between(t.node(0), t.node(1)).unwrap();
        let _ = t.edge(e).other(t.node(2));
    }

    #[test]
    fn csr_layout_matches_edge_list() {
        let t = triangle();
        // Offsets are a proper prefix sum over degrees and the pair array
        // holds both directions of every edge.
        assert_eq!(t.csr_offsets.len(), t.num_nodes() + 1);
        assert_eq!(t.csr_pairs.len(), 2 * t.num_edges());
        assert_eq!(*t.csr_offsets.last().unwrap() as usize, t.csr_pairs.len());
        for node in t.nodes() {
            for &(next, e) in t.neighbors(node) {
                assert_eq!(t.edge(e).other(node), next);
            }
        }
        // Unknown nodes resolve to an empty segment, not a panic.
        assert!(t.neighbors(NodeId::new(99)).is_empty());
        assert_eq!(t.degree(NodeId::new(99)), 0);
    }

    #[test]
    fn wire_roundtrip_rebuilds_csr() {
        let t = triangle();
        let back = Topology::from_wire(t.to_wire()).expect("round-trip");
        assert_eq!(back, t);
        assert_eq!(back.csr_offsets, t.csr_offsets);
        assert_eq!(back.csr_pairs, t.csr_pairs);

        // A node with no links still round-trips (trailing empty CSR row).
        let mut b = TopologyBuilder::new(3);
        let n = b.nodes();
        b.link(n[0], n[1], SimDuration::from_millis(5));
        let sparse = b.build();
        let back = Topology::from_wire(sparse.to_wire()).expect("round-trip");
        assert_eq!(back, sparse);
        assert_eq!(back.num_nodes(), 3);
        assert!(back.neighbors(n[2]).is_empty());
    }

    #[test]
    fn wire_rejects_out_of_range_edges() {
        let wire = TopologyWire {
            num_nodes: 2,
            edges: vec![Edge {
                a: NodeId::new(0),
                b: NodeId::new(5),
                delay: SimDuration::from_millis(1),
            }],
        };
        let err = Topology::from_wire(wire).unwrap_err();
        assert!(err.contains("outside"), "got: {err}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(4).to_string(), "n4");
        assert_eq!(EdgeId::new(2).to_string(), "e2");
    }
}
