//! End-to-end broker-churn survival: brokers join, leave and die mid-run
//! while the churn-hardened control plane (SWIM detection → incremental
//! repair → custody handoff) keeps delivering.
//!
//! The unit layers pin the detector and repair mechanics; these tests run
//! the whole stack and check the promises the churn design makes:
//!
//! * **recovery**: after the join/leave burst settles (plus the detector's
//!   suspicion window), delivery of freshly published messages is back to
//!   ≥ 0.99;
//! * **no global rebuilds**: the whole run is absorbed by incremental
//!   repairs — the post-setup rebuild counter stays at zero;
//! * **determinism**: the same seed reproduces a bit-identical
//!   transmission trace across two runs.

use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::experiments::runner::{
    build_broker_churn, build_topology, build_workload, confine_to_churn,
};
use dcrd::experiments::scenario::{BrokerChurnSpec, Scenario, ScenarioBuilder};
use dcrd::net::chaos::ChaosModel;
use dcrd::net::failure::{FailureModel, LinkFailureModel, LinkOutageModel};
use dcrd::net::loss::LossModel;
use dcrd::pubsub::audit::AuditConfig;
use dcrd::pubsub::runtime::{DeliveryLog, OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::strategy::RunParams;
use dcrd::sim::rng::derive_seed_indexed;
use dcrd::sim::SimTime;

/// Clean-link overlay with relay brokers: churn is the only disturbance.
/// 60 s horizon → joins land in epochs [1, 20), departures in [20, 40),
/// and [40, 60) is the recovery window the acceptance test measures.
fn churn_scenario(rate: f64, seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .nodes(12)
        .degree(4)
        .failure_probability(0.0)
        .loss_rate(0.0)
        .topics(4)
        .duration_secs(60)
        .repetitions(1)
        .audit(true)
        .broker_churn(BrokerChurnSpec { rate })
        .dcrd(DcrdConfig::churn_hardened())
        .seed(seed)
        .build()
}

/// Drives one repetition through the runtime with the broker-churn model
/// armed, mirroring `run_once`'s deterministic assembly but returning the
/// full delivery log and the strategy for counter inspection.
fn run_with_log(scenario: &Scenario, capture_trace: bool) -> (DeliveryLog, DcrdStrategy) {
    let topo = build_topology(scenario, 0);
    let workload = build_workload(scenario, &topo, 0);
    let churn = build_broker_churn(scenario, &workload, 0).expect("churn spec set");
    let workload = confine_to_churn(&workload, &churn);
    let links = LinkOutageModel::Epoch(LinkFailureModel::new(
        scenario.pf,
        derive_seed_indexed(scenario.seed, "failures", 0),
    ));
    let failure = FailureModel::new(links, None).with_chaos(ChaosModel::none().with_churn(churn));
    let mut config = RuntimeConfig {
        duration: scenario.duration,
        params: RunParams {
            m: scenario.m,
            ack_timeout_factor: scenario.ack_timeout_factor,
            ..RunParams::default()
        },
        seed: derive_seed_indexed(scenario.seed, "runtime", 0),
        audit: Some(AuditConfig::for_overlay(scenario.nodes, 64)),
        ..RuntimeConfig::paper(scenario.duration, 0)
    };
    config.capture_trace = capture_trace;
    let runtime = OverlayRuntime::new(
        &topo,
        &workload,
        failure,
        LossModel::new(scenario.pl),
        config,
    );
    let mut strategy = DcrdStrategy::new(scenario.dcrd);
    let log = runtime.run(&mut strategy);
    (log, strategy)
}

/// Acceptance: after the burst window and the detector's suspicion lag
/// (departures end at epoch 40, suspicion window 3 epochs, +2 slack),
/// delivery of freshly published messages recovers to ≥ 0.99 — and the
/// auditor saw no deliveries to departed brokers or routes through dead
/// ones anywhere in the run.
#[test]
fn delivery_recovers_after_churn_burst() {
    let scenario = churn_scenario(0.3, 0x0DC2D);
    let (log, strategy) = run_with_log(&scenario, false);
    let audit = log.audit.as_ref().expect("audit armed");
    assert_eq!(
        audit.total_violations, 0,
        "churn invariants violated: {:?}",
        audit.violations
    );
    let recovery_start = SimTime::from_secs(45);
    let (mut expected, mut delivered) = (0u64, 0u64);
    for (_, e) in log.expectations() {
        if e.published >= recovery_start {
            expected += 1;
            if e.delivered.is_some() {
                delivered += 1;
            }
        }
    }
    assert!(expected > 0, "no messages published in the recovery window");
    let ratio = delivered as f64 / expected as f64;
    assert!(
        ratio >= 0.99,
        "post-burst delivery only {ratio:.4} ({delivered}/{expected})"
    );
    // The run survived on incremental repair alone (the counter excludes
    // setup's initial table construction).
    assert_eq!(strategy.global_rebuilds(), 0, "no rebuild after setup");
}

/// Saturated churn: every unprotected broker joins, leaves or dies. The
/// whole upheaval is absorbed by incremental repairs (zero post-setup
/// global rebuilds), departures leave a non-empty absent mask, and
/// confirmed deaths hand their custody off instead of stranding it.
#[test]
fn saturated_churn_needs_no_global_rebuild() {
    let scenario = churn_scenario(1.0, 7);
    let (log, strategy) = run_with_log(&scenario, false);
    assert_eq!(strategy.global_rebuilds(), 0);
    assert!(
        strategy.incremental_repairs() > 0,
        "rate-1.0 churn triggered no incremental repair"
    );
    assert!(
        !strategy.absent_brokers().is_empty(),
        "every churner was a joiner — departures expected"
    );
    let audit = log.audit.as_ref().expect("audit armed");
    assert_eq!(audit.total_violations, 0);
}

/// Same seed, same churn schedule, twice: the full transmission traces
/// must be bit-identical, not just the aggregate metrics. This extends
/// the chaos determinism gate to the membership layer (detector, repair,
/// handoff).
#[test]
fn churn_trace_digests_are_identical_across_reruns() {
    let scenario = churn_scenario(0.3, 77);
    let digest = || {
        let (log, _) = run_with_log(&scenario, true);
        let trace = log.trace.as_ref().expect("trace captured");
        assert!(!trace.is_empty(), "churn run produced no events");
        trace.digest()
    };
    let first = digest();
    let second = digest();
    assert_eq!(
        first, second,
        "same-seed churn runs diverged: membership repair is not deterministic"
    );
}
