//! `--format json`: machine-readable report output.
//!
//! Hand-rolled serialization (the analyzer is dependency-free by
//! charter). The schema is versioned and covered by a golden-file test;
//! bump `SCHEMA_VERSION` on any shape change so downstream consumers
//! (the CI annotation step, dashboards) fail loudly instead of
//! misparsing.

use crate::config::AllowEntry;
use crate::rules::Diagnostic;

/// Version of the JSON report shape.
pub const SCHEMA_VERSION: u32 = 1;

/// Renders the full report: fresh violations, baseline-suppressed ones,
/// and stale baseline entries, plus summary counts.
#[must_use]
pub fn render_report(
    fresh: &[Diagnostic],
    suppressed: &[Diagnostic],
    stale: &[AllowEntry],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str("  \"tool\": \"dcrd-analyzer\",\n");
    out.push_str("  \"violations\": [");
    render_diags(&mut out, fresh);
    out.push_str("],\n");
    out.push_str("  \"suppressed\": [");
    render_diags(&mut out, suppressed);
    out.push_str("],\n");
    out.push_str("  \"stale_allows\": [");
    for (i, a) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"contains\": {}}}",
            escape(&a.rule),
            escape(&a.path),
            escape(&a.contains)
        ));
    }
    if !stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"counts\": {{\"new\": {}, \"suppressed\": {}, \"stale_allows\": {}}}\n",
        fresh.len(),
        suppressed.len(),
        stale.len()
    ));
    out.push_str("}\n");
    out
}

fn render_diags(out: &mut String, diags: &[Diagnostic]) {
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
             \"snippet\": {}, \"note\": {}}}",
            escape(d.rule),
            escape(&d.path),
            d.line,
            d.col,
            escape(&d.snippet),
            escape(&d.note)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
}

/// JSON string escaping per RFC 8259: quotes, backslashes, and control
/// characters; everything else passes through as UTF-8.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, snippet: &str, note: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: "crates/core/src/x.rs".to_string(),
            line: 3,
            col: 7,
            snippet: snippet.to_string(),
            note: note.to_string(),
        }
    }

    #[test]
    fn report_shape_is_stable() {
        let fresh = vec![diag("PANIC001", "let x = v[0];", "indexing via f → g")];
        let text = render_report(&fresh, &[], &[]);
        assert!(text.contains("\"schema_version\": 1"));
        assert!(text.contains("\"tool\": \"dcrd-analyzer\""));
        assert!(text.contains("\"counts\": {\"new\": 1, \"suppressed\": 0, \"stale_allows\": 0}"));
    }

    #[test]
    fn strings_are_escaped() {
        let fresh = vec![diag("DET001", "let s = \"a\\\"b\";\ttab", "")];
        let text = render_report(&fresh, &[], &[]);
        assert!(text.contains("\\\"a\\\\\\\"b\\\";\\ttab"));
        // Control characters never appear raw inside a JSON string.
        assert!(!text
            .lines()
            .any(|l| l.contains('\t') && l.contains("snippet")));
    }

    #[test]
    fn empty_report_is_valid() {
        let text = render_report(&[], &[], &[]);
        assert!(text.contains("\"violations\": [],"));
        assert!(text.contains("\"counts\": {\"new\": 0, \"suppressed\": 0, \"stale_allows\": 0}"));
    }
}
