// Fixture: SAFE002 must stay quiet — saturating/checked construction and
// the (saturating) float path.
pub struct SimTime(u64);
pub struct SimDuration(u64);

pub fn from_millis(millis: u64) -> SimTime {
    SimTime(millis.saturating_mul(1_000))
}

pub fn from_secs_f64(secs: f64) -> SimDuration {
    SimDuration((secs * 1e6).round() as u64)
}

pub fn checked(a: u64, b: u64) -> Option<SimDuration> {
    a.checked_add(b).map(SimDuration)
}
