//! Topology generators.
//!
//! The paper's evaluation uses two topology families: a 20-node **full
//! mesh**, and random overlays with a fixed **node degree** (3–10) at sizes
//! from 10 to 160 nodes. Link delays are drawn uniformly from 10–50 ms
//! (AT&T backbone measurements). This module generates both families plus a
//! few deterministic shapes used heavily in tests.

use dcrd_sim::SimDuration;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{NodeId, Topology, TopologyBuilder};

/// Inclusive range of one-way link delays assigned by the generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayRange {
    /// Minimum link delay.
    pub min: SimDuration,
    /// Maximum link delay.
    pub max: SimDuration,
}

impl DelayRange {
    /// The paper's 10–50 ms range.
    pub const PAPER: DelayRange = DelayRange {
        min: SimDuration::from_millis(10),
        max: SimDuration::from_millis(50),
    };

    /// A degenerate range producing a fixed delay (useful in tests).
    #[must_use]
    pub const fn fixed(delay: SimDuration) -> Self {
        DelayRange {
            min: delay,
            max: delay,
        }
    }

    /// Draws one delay uniformly from the range (microsecond granularity).
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        assert!(self.min <= self.max, "invalid delay range");
        if self.min == self.max {
            return self.min;
        }
        SimDuration::from_micros(rng.gen_range(self.min.as_micros()..=self.max.as_micros()))
    }
}

impl Default for DelayRange {
    fn default() -> Self {
        DelayRange::PAPER
    }
}

/// Generates a full mesh of `n` nodes (every pair directly linked), with
/// delays drawn from `delays`. This is the paper's Fig. 2 topology.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn full_mesh<R: Rng + ?Sized>(n: usize, delays: DelayRange, rng: &mut R) -> Topology {
    let mut b = TopologyBuilder::new(n);
    let nodes = b.nodes();
    for i in 0..n {
        for j in (i + 1)..n {
            b.link(nodes[i], nodes[j], delays.sample(rng));
        }
    }
    b.build()
}

/// Generates a connected random overlay in which every node has degree as
/// close as possible to `degree` — the paper's "mesh with reduced
/// connectivity" family (Figs. 3–8).
///
/// Construction: a random Hamiltonian ring guarantees connectivity and gives
/// every node degree 2; random extra links are then added between the
/// least-connected nodes until every node reaches the target degree or no
/// legal pair remains (a pair is legal if unlinked and both below target).
/// For even moderately sized graphs this yields degrees within ±1 of the
/// target, matching the paper's "randomly choose the neighboring nodes for a
/// given link degree".
///
/// # Panics
///
/// Panics if `n < 3` or `degree < 2` or `degree >= n`.
#[must_use]
pub fn random_connected<R: Rng + ?Sized>(
    n: usize,
    degree: usize,
    delays: DelayRange,
    rng: &mut R,
) -> Topology {
    assert!(n >= 3, "random overlay needs at least 3 nodes");
    assert!(degree >= 2, "degree must be at least 2 for connectivity");
    assert!(degree < n, "degree must be below the node count");

    let mut b = TopologyBuilder::new(n);
    let mut order: Vec<NodeId> = b.nodes();
    order.shuffle(rng);
    // Random ring: connected, degree 2 everywhere.
    for i in 0..n {
        let a = order[i];
        let c = order[(i + 1) % n];
        b.link(a, c, delays.sample(rng));
    }

    let mut deg = vec![2usize; n];
    // Greedily add links between random under-target pairs.
    let mut attempts_left = 50 * n * degree;
    while attempts_left > 0 {
        attempts_left -= 1;
        let below: Vec<u32> = (0..n as u32)
            .filter(|&i| deg[i as usize] < degree)
            .collect();
        if below.len() < 2 {
            break;
        }
        let a = NodeId::new(*below.choose(rng).expect("nonempty"));
        let candidates: Vec<u32> = below
            .iter()
            .copied()
            .filter(|&i| {
                let node = NodeId::new(i);
                node != a && !b.has_link(a, node)
            })
            .collect();
        let Some(&pick) = candidates.choose(rng) else {
            // `a` is saturated against every other below-target node; if this
            // holds for all of them no legal pair remains.
            let stuck = below.iter().all(|&i| {
                let node = NodeId::new(i);
                below
                    .iter()
                    .all(|&j| j == i || b.has_link(node, NodeId::new(j)))
            });
            if stuck {
                break;
            }
            continue;
        };
        let c = NodeId::new(pick);
        b.link(a, c, delays.sample(rng));
        deg[a.index()] += 1;
        deg[c.index()] += 1;
    }

    let topo = b.build();
    debug_assert!(topo.is_connected());
    topo
}

/// Generates a ring of `n` nodes with fixed `delay` per link.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn ring(n: usize, delay: SimDuration) -> Topology {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut b = TopologyBuilder::new(n);
    let nodes = b.nodes();
    for i in 0..n {
        b.link(nodes[i], nodes[(i + 1) % n], delay);
    }
    b.build()
}

/// Generates a line (path graph) of `n` nodes with fixed `delay` per link.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn line(n: usize, delay: SimDuration) -> Topology {
    assert!(n >= 2, "line needs at least 2 nodes");
    let mut b = TopologyBuilder::new(n);
    let nodes = b.nodes();
    for i in 0..n - 1 {
        b.link(nodes[i], nodes[i + 1], delay);
    }
    b.build()
}

/// Generates a geo-tiered overlay: `regions` regional full meshes of
/// `per_region` brokers each with fast `intra` delays, joined through a
/// full mesh of per-region gateways (node 0 of each region) with slow
/// `inter` delays. The resulting link-delay distribution is bimodal —
/// most links are fast, but every cross-region path pays at least one
/// slow hop — which is exactly the regime where delay-cognizant routing
/// and deadline pricing diverge from hop-count routing.
///
/// Node indexing: region `r` owns the contiguous block
/// `[r × per_region, (r + 1) × per_region)`; the region's gateway is the
/// first node of the block.
///
/// # Panics
///
/// Panics if `regions < 2` or `per_region < 2`.
#[must_use]
pub fn geo_tiered<R: Rng + ?Sized>(
    regions: usize,
    per_region: usize,
    intra: DelayRange,
    inter: DelayRange,
    rng: &mut R,
) -> Topology {
    assert!(regions >= 2, "geo-tiered needs at least 2 regions");
    assert!(
        per_region >= 2,
        "geo-tiered needs at least 2 brokers per region"
    );
    let n = regions * per_region;
    let mut b = TopologyBuilder::new(n);
    let nodes = b.nodes();
    for r in 0..regions {
        let base = r * per_region;
        for i in 0..per_region {
            for j in (i + 1)..per_region {
                b.link(nodes[base + i], nodes[base + j], intra.sample(rng));
            }
        }
    }
    for r in 0..regions {
        for s in (r + 1)..regions {
            b.link(
                nodes[r * per_region],
                nodes[s * per_region],
                inter.sample(rng),
            );
        }
    }
    let topo = b.build();
    debug_assert!(topo.is_connected());
    topo
}

/// Generates a star: node 0 is the hub, linked to every other node with
/// fixed `delay`.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn star(n: usize, delay: SimDuration) -> Topology {
    assert!(n >= 2, "star needs at least 2 nodes");
    let mut b = TopologyBuilder::new(n);
    let nodes = b.nodes();
    for i in 1..n {
        b.link(nodes[0], nodes[i], delay);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_sim::rng::rng_for;

    #[test]
    fn full_mesh_shape() {
        let mut rng = rng_for(1, "mesh");
        let t = full_mesh(20, DelayRange::PAPER, &mut rng);
        assert_eq!(t.num_nodes(), 20);
        assert_eq!(t.num_edges(), 20 * 19 / 2);
        assert!(t.is_connected());
        for node in t.nodes() {
            assert_eq!(t.degree(node), 19);
        }
    }

    #[test]
    fn delays_within_range() {
        let mut rng = rng_for(2, "mesh");
        let t = full_mesh(10, DelayRange::PAPER, &mut rng);
        for e in t.edge_ids() {
            let d = t.delay(e);
            assert!(d >= SimDuration::from_millis(10), "delay too small: {d}");
            assert!(d <= SimDuration::from_millis(50), "delay too large: {d}");
        }
    }

    #[test]
    fn fixed_delay_range() {
        let mut rng = rng_for(3, "mesh");
        let d = SimDuration::from_millis(25);
        let t = full_mesh(4, DelayRange::fixed(d), &mut rng);
        for e in t.edge_ids() {
            assert_eq!(t.delay(e), d);
        }
    }

    #[test]
    fn random_connected_hits_target_degree() {
        for seed in 0..10u64 {
            let mut rng = rng_for(seed, "deg");
            for degree in [3usize, 5, 8] {
                let t = random_connected(20, degree, DelayRange::PAPER, &mut rng);
                assert!(t.is_connected(), "seed {seed} degree {degree}");
                let avg = t.average_degree();
                assert!(
                    (avg - degree as f64).abs() < 1.0,
                    "seed {seed}: average degree {avg} far from target {degree}"
                );
                for node in t.nodes() {
                    assert!(t.degree(node) >= 2);
                    // Never exceeds target by more than the ring allowance.
                    assert!(t.degree(node) <= degree.max(2) + 1);
                }
            }
        }
    }

    #[test]
    fn random_connected_various_sizes() {
        for &n in &[10usize, 40, 80, 160] {
            let mut rng = rng_for(n as u64, "size");
            let t = random_connected(n, 8, DelayRange::PAPER, &mut rng);
            assert_eq!(t.num_nodes(), n);
            assert!(t.is_connected());
        }
    }

    #[test]
    fn random_connected_is_deterministic_per_seed() {
        let a = random_connected(15, 4, DelayRange::PAPER, &mut rng_for(7, "t"));
        let b = random_connected(15, 4, DelayRange::PAPER, &mut rng_for(7, "t"));
        assert_eq!(a, b);
        let c = random_connected(15, 4, DelayRange::PAPER, &mut rng_for(8, "t"));
        assert_ne!(a, c);
    }

    #[test]
    fn deterministic_shapes() {
        let d = SimDuration::from_millis(10);
        let r = ring(5, d);
        assert_eq!(r.num_edges(), 5);
        assert!(r.nodes().all(|n| r.degree(n) == 2));

        let l = line(5, d);
        assert_eq!(l.num_edges(), 4);
        assert_eq!(l.degree(l.node(0)), 1);
        assert_eq!(l.degree(l.node(2)), 2);

        let s = star(5, d);
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.degree(s.node(0)), 4);
        assert_eq!(s.degree(s.node(3)), 1);
        assert!(s.is_connected());
    }

    #[test]
    fn geo_tiered_shape_and_bimodal_delays() {
        let mut rng = rng_for(4, "geo");
        let intra = DelayRange {
            min: SimDuration::from_millis(2),
            max: SimDuration::from_millis(8),
        };
        let inter = DelayRange {
            min: SimDuration::from_millis(60),
            max: SimDuration::from_millis(120),
        };
        let regions = 4;
        let per = 5;
        let t = geo_tiered(regions, per, intra, inter, &mut rng);
        assert_eq!(t.num_nodes(), regions * per);
        assert!(t.is_connected());
        // 4 regional meshes of C(5,2) links plus a C(4,2) gateway mesh.
        let intra_edges = regions * per * (per - 1) / 2;
        let inter_edges = regions * (regions - 1) / 2;
        assert_eq!(t.num_edges(), intra_edges + inter_edges);
        // Delays are bimodal: every link is either fast-intra or slow-inter,
        // with nothing in the gap between the two modes.
        let mut fast = 0usize;
        let mut slow = 0usize;
        for e in t.edge_ids() {
            let d = t.delay(e);
            if d <= intra.max {
                assert!(d >= intra.min);
                fast += 1;
            } else {
                assert!(d >= inter.min, "link delay {d} falls between modes");
                assert!(d <= inter.max);
                slow += 1;
            }
        }
        assert_eq!(fast, intra_edges);
        assert_eq!(slow, inter_edges);
        // Gateways (first node of each block) carry the inter-region links:
        // degree per-region mesh (per-1) plus gateway mesh (regions-1).
        for r in 0..regions {
            let gw = t.node(r * per);
            assert_eq!(t.degree(gw), (per - 1) + (regions - 1));
        }
        // Non-gateway brokers only see their own region.
        assert_eq!(t.degree(t.node(1)), per - 1);
    }

    #[test]
    fn geo_tiered_is_deterministic_per_seed() {
        let intra = DelayRange::fixed(SimDuration::from_millis(5));
        let inter = DelayRange {
            min: SimDuration::from_millis(60),
            max: SimDuration::from_millis(120),
        };
        let a = geo_tiered(3, 4, intra, inter, &mut rng_for(9, "geo"));
        let b = geo_tiered(3, 4, intra, inter, &mut rng_for(9, "geo"));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 2 regions")]
    fn geo_tiered_rejects_single_region() {
        let mut rng = rng_for(0, "geo");
        let _ = geo_tiered(1, 4, DelayRange::PAPER, DelayRange::PAPER, &mut rng);
    }

    #[test]
    #[should_panic(expected = "degree must be below")]
    fn random_connected_rejects_degree_too_high() {
        let mut rng = rng_for(0, "bad");
        let _ = random_connected(5, 5, DelayRange::PAPER, &mut rng);
    }
}
