//! Time-resolved metrics: delivery and QoS ratios bucketed by publish time.
//!
//! The paper reports whole-run averages; a timeline makes the *transients*
//! visible — e.g. the dips when a burst of link failures hits, and how fast
//! each strategy recovers. Messages are attributed to the window containing
//! their publish instant.

use dcrd_pubsub::runtime::DeliveryLog;
use dcrd_sim::stats::Ratio;
use dcrd_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One time window's delivery counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBucket {
    delivered: Ratio,
    on_time: Ratio,
}

impl TimeBucket {
    /// Fraction of the window's pairs delivered at all.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        self.delivered.value()
    }

    /// Fraction of the window's pairs delivered on time.
    #[must_use]
    pub fn qos_delivery_ratio(&self) -> f64 {
        self.on_time.value()
    }

    /// Number of `(message, subscriber)` pairs published in the window.
    #[must_use]
    pub fn pairs(&self) -> u64 {
        self.delivered.total()
    }
}

/// Delivery metrics bucketed by publish time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    window: SimDuration,
    buckets: Vec<TimeBucket>,
}

impl Timeline {
    /// Buckets `log` by publish time into windows of length `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn from_log(log: &DeliveryLog, window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        let mut buckets: Vec<TimeBucket> = Vec::new();
        for (_, exp) in log.expectations() {
            let idx = (exp.published.as_micros() / window.as_micros()) as usize;
            if idx >= buckets.len() {
                buckets.resize(idx + 1, TimeBucket::default());
            }
            buckets[idx].delivered.record(exp.delivered.is_some());
            buckets[idx].on_time.record(exp.on_time());
        }
        Timeline { window, buckets }
    }

    /// The window length.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The buckets in time order.
    #[must_use]
    pub fn buckets(&self) -> &[TimeBucket] {
        &self.buckets
    }

    /// `(window start, bucket)` pairs in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &TimeBucket)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| (SimTime::from_micros(i as u64 * self.window.as_micros()), b))
    }

    /// The worst (lowest) per-window QoS ratio across non-empty windows,
    /// with its window start — where the biggest transient hit.
    #[must_use]
    pub fn worst_window(&self) -> Option<(SimTime, f64)> {
        self.iter()
            .filter(|(_, b)| b.pairs() > 0)
            .map(|(t, b)| (t, b.qos_delivery_ratio()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Renders an aligned text table.
    #[must_use]
    pub fn render(&self, label: &str) -> String {
        let mut out = format!(
            "# timeline — {label} (window {})\n{:>10}{:>10}{:>12}{:>12}\n",
            self.window, "t_start", "pairs", "delivery", "QoS"
        );
        for (t, b) in self.iter() {
            out.push_str(&format!(
                "{:>10.1}{:>10}{:>12.4}{:>12.4}\n",
                t.as_secs_f64(),
                b.pairs(),
                b.delivery_ratio(),
                b.qos_delivery_ratio()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::failure::{FailureModel, LinkFailureModel};
    use dcrd_net::loss::LossModel;
    use dcrd_net::topology::line;
    use dcrd_net::NodeId;
    use dcrd_pubsub::packet::Packet;
    use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig};
    use dcrd_pubsub::strategy::{Actions, RoutingStrategy, SetupContext, TimerKey};
    use dcrd_pubsub::topic::{Subscription, TopicId};
    use dcrd_pubsub::workload::{TopicSpec, Workload};

    /// One-hop forwarder used to produce a real DeliveryLog.
    struct OneHop;
    impl RoutingStrategy for OneHop {
        fn name(&self) -> &'static str {
            "one-hop"
        }
        fn setup(&mut self, _: &SetupContext<'_>) {}
        fn on_publish(&mut self, node: NodeId, p: Packet, _t: SimTime, out: &mut Actions) {
            let dest = p.destinations[0];
            out.send(dest, p.forward(node, vec![dest], 0));
        }
        fn on_packet(
            &mut self,
            node: NodeId,
            _f: NodeId,
            p: Packet,
            _t: SimTime,
            out: &mut Actions,
        ) {
            if p.destinations.contains(&node) {
                out.deliver(p.id);
            }
        }
        fn on_ack(&mut self, _: NodeId, _: NodeId, _: &Packet, _: SimTime, _: &mut Actions) {}
        fn on_timer(&mut self, _: NodeId, _: TimerKey, _: SimTime, _: &mut Actions) {}
    }

    fn run_log(pf: f64, secs: u64) -> DeliveryLog {
        let topo = line(2, SimDuration::from_millis(10));
        let wl = Workload::from_topics(vec![TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(
                topo.node(1),
                SimDuration::from_millis(50),
            )],
            burst: None,
        }]);
        let failure = FailureModel::links_only(LinkFailureModel::new(pf, 13));
        let config = RuntimeConfig::paper(SimDuration::from_secs(secs), 2);
        OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config).run(&mut OneHop)
    }

    #[test]
    fn buckets_cover_the_whole_run() {
        let log = run_log(0.0, 59);
        let tl = Timeline::from_log(&log, SimDuration::from_secs(10));
        assert_eq!(tl.buckets().len(), 6);
        assert_eq!(tl.window(), SimDuration::from_secs(10));
        let total: u64 = tl.buckets().iter().map(TimeBucket::pairs).sum();
        assert_eq!(total, log.num_expectations() as u64);
        for (_, b) in tl.iter() {
            assert_eq!(b.pairs(), 10);
            assert!((b.delivery_ratio() - 1.0).abs() < 1e-12);
            assert!((b.qos_delivery_ratio() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn failures_show_up_in_their_windows() {
        let log = run_log(0.5, 120);
        let tl = Timeline::from_log(&log, SimDuration::from_secs(10));
        let (worst_t, worst_q) = tl.worst_window().expect("non-empty");
        assert!(
            worst_q < 0.5,
            "a pf=0.5 single-link run must have bad windows"
        );
        // There must also be variation: some window is better than the worst.
        let best = tl
            .iter()
            .filter(|(_, b)| b.pairs() > 0)
            .map(|(_, b)| b.qos_delivery_ratio())
            .fold(0.0f64, f64::max);
        assert!(best > worst_q);
        assert!(worst_t.as_secs_f64() < 120.0);
    }

    #[test]
    fn render_contains_every_window() {
        let log = run_log(0.0, 29);
        let tl = Timeline::from_log(&log, SimDuration::from_secs(10));
        let text = tl.render("test");
        assert!(text.contains("timeline — test"));
        // Header + title + 3 windows.
        assert_eq!(text.lines().count(), 2 + 3);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let log = run_log(0.0, 5);
        let _ = Timeline::from_log(&log, SimDuration::ZERO);
    }
}
