//! Fixture-driven rule tests plus a whole-workspace smoke test.
//!
//! Each rule gets a positive fixture (must fire) and a negative fixture
//! (must stay quiet) under `tests/fixtures/`. Fixtures are fed through
//! [`dcrd_analyzer::analyze_source`] with a synthetic workspace-relative
//! path chosen to land inside the rule's scope; the fixtures directory
//! itself is excluded from real workspace scans, so the bait never shows
//! up in `--deny-new` runs.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use dcrd_analyzer::graph::SymbolGraph;
use dcrd_analyzer::{
    analyze_source, analyze_workspace, json, mask, partition, AllowEntry, Baseline, Diagnostic,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Diagnostics for `name` scanned as if it lived at `scoped_path`.
fn scan(name: &str, scoped_path: &str) -> Vec<String> {
    analyze_source(scoped_path, &fixture(name))
        .into_iter()
        .map(|d| d.rule.to_string())
        .collect()
}

fn assert_fires(rules: &[String], rule: &str, at_least: usize, fixture_name: &str) {
    let hits = rules.iter().filter(|r| *r == rule).count();
    assert!(
        hits >= at_least,
        "{fixture_name}: expected >= {at_least} {rule} hit(s), got {hits} (all: {rules:?})"
    );
}

fn assert_quiet(rules: &[String], rule: &str, fixture_name: &str) {
    assert!(
        !rules.iter().any(|r| r == rule),
        "{fixture_name}: expected no {rule} hits, got {rules:?}"
    );
}

// ---------------------------------------------------------------- DET001

#[test]
fn det001_flags_hash_containers_in_sim_facing_code() {
    let rules = scan("det001_pos.rs", "crates/core/src/fixture.rs");
    // `use` line + two type annotations + two constructors, each naming
    // HashMap or HashSet: at minimum the two container names must fire.
    assert_fires(&rules, "DET001", 2, "det001_pos.rs");
}

#[test]
fn det001_ignores_ordered_containers_comments_strings_and_tests() {
    let rules = scan("det001_neg.rs", "crates/core/src/fixture.rs");
    assert_quiet(&rules, "DET001", "det001_neg.rs");
}

#[test]
fn det001_is_scoped_to_sim_facing_crates() {
    // The same hash-container bait is fine in a non-sim-facing crate.
    let rules = scan("det001_pos.rs", "crates/metrics/src/fixture.rs");
    assert_quiet(&rules, "DET001", "det001_pos.rs (metrics scope)");
}

// ---------------------------------------------------------------- DET002

#[test]
fn det002_flags_ambient_clocks_and_rngs() {
    let rules = scan("det002_pos.rs", "crates/pubsub/src/fixture.rs");
    // Instant::now, thread_rng, rand::random.
    assert_fires(&rules, "DET002", 3, "det002_pos.rs");
}

#[test]
fn det002_ignores_seeded_rng_and_comments() {
    let rules = scan("det002_neg.rs", "crates/pubsub/src/fixture.rs");
    assert_quiet(&rules, "DET002", "det002_neg.rs");
}

#[test]
fn det002_exempts_the_sim_rng_module() {
    // crates/sim/src/rng.rs is the sanctioned wrapper; ambient entropy
    // there is the whole point.
    let rules = scan("det002_pos.rs", "crates/sim/src/rng.rs");
    assert_quiet(&rules, "DET002", "det002_pos.rs (rng.rs exemption)");
}

// ---------------------------------------------------------------- DET003

#[test]
fn det003_flags_partial_cmp_sort_comparators() {
    let rules = scan("det003_pos.rs", "crates/experiments/src/fixture.rs");
    // One sort_by + one min_by (multi-line comparator).
    assert_fires(&rules, "DET003", 2, "det003_pos.rs");
}

#[test]
fn det003_ignores_total_cmp_and_partial_ord_impls() {
    let rules = scan("det003_neg.rs", "crates/experiments/src/fixture.rs");
    assert_quiet(&rules, "DET003", "det003_neg.rs");
}

// --------------------------------------------------------------- SAFE001

#[test]
fn safe001_flags_unwrap_and_expect_in_hot_path_code() {
    let rules = scan("safe001_pos.rs", "crates/core/src/fixture.rs");
    assert_fires(&rules, "SAFE001", 2, "safe001_pos.rs");
}

#[test]
fn safe001_ignores_graceful_handling_and_test_code() {
    let rules = scan("safe001_neg.rs", "crates/pubsub/src/fixture.rs");
    assert_quiet(&rules, "SAFE001", "safe001_neg.rs");
}

#[test]
fn safe001_is_scoped_to_hot_path_crates() {
    // The simulator shell may unwrap; only core/pubsub are gated.
    let rules = scan("safe001_pos.rs", "crates/sim/src/fixture.rs");
    assert_quiet(&rules, "SAFE001", "safe001_pos.rs (sim scope)");
}

// --------------------------------------------------------------- SAFE002

#[test]
fn safe002_flags_unchecked_arithmetic_in_time_constructors() {
    let rules = scan("safe002_pos.rs", "crates/sim/src/fixture.rs");
    // `millis * 1_000` and `a + b` inside SimTime(..)/SimDuration(..).
    assert_fires(&rules, "SAFE002", 2, "safe002_pos.rs");
}

#[test]
fn safe002_ignores_saturating_and_checked_construction() {
    let rules = scan("safe002_neg.rs", "crates/sim/src/fixture.rs");
    assert_quiet(&rules, "SAFE002", "safe002_neg.rs");
}

// --------------------------------------------------------------- SAFE003

#[test]
fn safe003_flags_unclamped_capacity_in_codec_files() {
    let rules = scan("safe003_pos.rs", "crates/pubsub/src/codec.rs");
    // One unclamped with_capacity + one unclamped reserve.
    assert_fires(&rules, "SAFE003", 2, "safe003_pos.rs");
}

#[test]
fn safe003_ignores_clamped_hints_and_constants() {
    let rules = scan("safe003_neg.rs", "crates/pubsub/src/codec.rs");
    assert_quiet(&rules, "SAFE003", "safe003_neg.rs");
}

#[test]
fn safe003_is_scoped_to_codec_files() {
    // The same bait elsewhere in the crate is out of scope.
    let rules = scan("safe003_pos.rs", "crates/pubsub/src/runtime.rs");
    assert_quiet(&rules, "SAFE003", "safe003_pos.rs (runtime scope)");
}

// ------------------------------------------------- masking regressions

#[test]
fn masking_ignores_bait_in_raw_strings() {
    let rules = scan("mask_raw_strings.rs", "crates/core/src/fixture.rs");
    for rule in ["SAFE001", "DET001", "DET002"] {
        assert_quiet(&rules, rule, "mask_raw_strings.rs");
    }
}

#[test]
fn masking_ignores_bait_in_nested_block_comments() {
    let rules = scan("mask_nested_comments.rs", "crates/core/src/fixture.rs");
    for rule in ["SAFE001", "DET001", "DET002", "PURE002"] {
        assert_quiet(&rules, rule, "mask_nested_comments.rs");
    }
}

#[test]
fn masking_ignores_expect_in_doc_comments() {
    let rules = scan("mask_doc_comments.rs", "crates/core/src/fixture.rs");
    assert_quiet(&rules, "SAFE001", "mask_doc_comments.rs");
}

// --------------------------------------------------------------- PURE00x

#[test]
fn pure_rules_flag_io_clocks_and_sync_in_scope() {
    let rules = scan("pure_pos.rs", "crates/core/src/fixture.rs");
    // std::{net, fs, thread, process}.
    assert_fires(&rules, "PURE001", 4, "pure_pos.rs");
    // std::io + Instant + SystemTime.
    assert_fires(&rules, "PURE002", 3, "pure_pos.rs");
    // Mutex.
    assert_fires(&rules, "PURE003", 1, "pure_pos.rs");
}

#[test]
fn pure_rules_allow_owned_state_and_arc() {
    let rules = scan("pure_neg.rs", "crates/core/src/fixture.rs");
    for rule in ["PURE001", "PURE002", "PURE003"] {
        assert_quiet(&rules, rule, "pure_neg.rs");
    }
}

#[test]
fn pure_rules_are_scoped_to_the_sans_io_core() {
    // The experiment driver writes real files; sans-io rules stay out.
    let rules = scan("pure_pos.rs", "crates/experiments/src/fixture.rs");
    for rule in ["PURE001", "PURE002", "PURE003"] {
        assert_quiet(&rules, rule, "pure_pos.rs (experiments scope)");
    }
}

// ----------------------------------- fixture workspace: the graph passes

fn fixture_workspace() -> Vec<Diagnostic> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_v2");
    analyze_workspace(&root).expect("fixture workspace scans")
}

/// The seeded violation: `DcrdStrategy::process` → `helper` → `deep_util`
/// which indexes a slice. PANIC001 must walk the chain and say so.
#[test]
fn fixture_workspace_catches_seeded_transitive_panic() {
    let diags = fixture_workspace();
    let hits: Vec<_> = diags.iter().filter(|d| d.rule == "PANIC001").collect();
    assert!(
        hits.iter().any(|d| d.path == "crates/core/src/lib.rs"
            && d.note.contains("DcrdStrategy::process")
            && d.note.contains("deep_util")),
        "seeded transitive panic not caught via its chain: {hits:?}"
    );
}

#[test]
fn fixture_workspace_flags_upward_layer_dependency() {
    let diags = fixture_workspace();
    assert!(
        diags.iter().any(|d| d.rule == "LAYER001"
            && d.path == "crates/net/Cargo.toml"
            && d.snippet.contains("dcrd-core")),
        "net -> core upward dependency not flagged: {diags:?}"
    );
    assert!(
        !diags
            .iter()
            .any(|d| d.rule == "LAYER001" && d.path == "crates/core/Cargo.toml"),
        "downward dependencies wrongly flagged"
    );
}

#[test]
fn fixture_workspace_honours_pure_exempt_paths() {
    let diags = fixture_workspace();
    assert!(
        !diags
            .iter()
            .any(|d| d.rule.starts_with("PURE") && d.path.starts_with("crates/net/")),
        "exempt path still produced PURE diagnostics"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "PURE001" && d.path == "crates/core/src/lib.rs"),
        "non-exempt socket bait did not fire PURE001"
    );
}

// ----------------------------------------------- JSON schema golden file

#[test]
fn json_report_matches_the_golden_file() {
    let fresh = vec![Diagnostic {
        rule: "PANIC001",
        path: "crates/core/src/router.rs".to_string(),
        line: 12,
        col: 5,
        snippet: "let x = v[0];".to_string(),
        note: "indexing reachable via DcrdStrategy::process → deep_util".to_string(),
    }];
    let suppressed = vec![Diagnostic {
        rule: "SAFE001",
        path: "crates/pubsub/src/codec.rs".to_string(),
        line: 40,
        col: 9,
        snippet: "len.unwrap()".to_string(),
        note: String::new(),
    }];
    let stale = vec![AllowEntry {
        rule: "DET001".to_string(),
        path: "crates/core/src/router.rs".to_string(),
        contains: "HashMap".to_string(),
        reason: "legacy".to_string(),
    }];
    let rendered = json::render_report(&fresh, &suppressed, &stale);
    let golden = fixture("report_golden.json");
    assert_eq!(
        rendered, golden,
        "JSON report shape drifted — bump json::SCHEMA_VERSION and regenerate the golden file"
    );
}

// ------------------------------------------- core symbol-graph coverage

/// Every `pub fn` the item parser finds in dcrd-core must be resolvable
/// through the graph's lookup — i.e. the call-graph index covers the
/// crate's whole public surface, not a sample of it.
#[test]
fn graph_resolves_every_pub_fn_in_core() {
    let src = workspace_root().join("crates/core/src");
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&src).expect("core src readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let source = std::fs::read_to_string(&path).expect("core source readable");
            let masked = mask::strip_test_regions(&mask::mask_source(&source));
            let name = path
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            files.push((format!("crates/core/src/{name}"), masked));
        }
    }
    files.sort();
    assert!(
        files.len() >= 5,
        "expected the full core crate, got {files:?}"
    );
    let graph = SymbolGraph::build(&files, BTreeMap::new());
    let pubs: Vec<_> = graph.fns.iter().filter(|f| f.item.is_pub).collect();
    assert!(
        pubs.len() >= 20,
        "expected a rich public surface, found {} pub fns",
        pubs.len()
    );
    for f in &pubs {
        let found = graph.find("core", f.item.owner.as_deref(), &f.item.name);
        assert!(
            !found.is_empty(),
            "graph cannot resolve pub fn {} ({})",
            f.qualified_name(),
            f.file
        );
    }
}

// ---------------------------------------------------- workspace smoke test

fn workspace_root() -> PathBuf {
    // crates/analyzer -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

/// The shipped baseline must describe reality: scanning the actual tree
/// yields no violations beyond `analyzer.toml`, no stale allow entries,
/// and the baseline itself stays near-empty (<= 3 entries).
#[test]
fn workspace_is_clean_under_the_shipped_baseline() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );

    let baseline_path = root.join("analyzer.toml");
    let baseline_text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("{} unreadable: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&baseline_text).expect("shipped baseline parses");
    assert!(
        baseline.allows.len() <= 3,
        "baseline has grown to {} entries; fix violations instead of suppressing them",
        baseline.allows.len()
    );

    let diags = analyze_workspace(&root).expect("workspace scan succeeds");
    let (fresh, _suppressed, unused) = partition(diags, &baseline);
    assert!(
        fresh.is_empty(),
        "unbaselined violations in the tree:\n{}",
        fresh
            .iter()
            .map(|d| format!(
                "  {}:{}:{}: {}: {}",
                d.path, d.line, d.col, d.rule, d.snippet
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        unused.is_empty(),
        "stale baseline entries (delete them): {unused:?}"
    );
}
