//! Air-surveillance workload: the paper's motivating application.
//!
//! In ADS-B, every aircraft broadcasts its position about once per second
//! and ground consumers (controllers, displays, archival) need those
//! updates within a hard latency budget. This example models a regional
//! surveillance network: each "sector feed" is a topic published by the
//! broker closest to that sector's radar, and control centers subscribe to
//! several sectors with a tight 1.5× delay requirement.
//!
//! ```text
//! cargo run --release --example air_surveillance
//! ```

use dcrd::core::DcrdStrategy;
use dcrd::net::failure::{FailureModel, LinkFailureModel};
use dcrd::net::loss::LossModel;
use dcrd::net::paths::{dijkstra, Metric};
use dcrd::net::topology::{random_connected, DelayRange};
use dcrd::pubsub::runtime::{OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::topic::{Subscription, TopicId};
use dcrd::pubsub::workload::{TopicSpec, Workload};
use dcrd::sim::rng::rng_for;
use dcrd::sim::SimDuration;
use rand::seq::SliceRandom;
use rand::Rng;

fn main() {
    let seed = 2026;
    let mut rng = rng_for(seed, "air");

    // 30 ground-station brokers, degree 6, WAN delays.
    let topo = random_connected(30, 6, DelayRange::PAPER, &mut rng);

    // 12 sector feeds; each published by a random broker, consumed by 4
    // control centers with a tight 1.5x latency budget.
    let mut brokers: Vec<_> = topo.nodes().collect();
    brokers.shuffle(&mut rng);
    let mut topics = Vec::new();
    for (i, &publisher) in brokers.iter().take(12).enumerate() {
        let sp = dijkstra(&topo, publisher, Metric::Delay);
        let mut subscriptions = Vec::new();
        while subscriptions.len() < 4 {
            let candidate = topo.node(rng.gen_range(0..topo.num_nodes()));
            if candidate == publisher
                || subscriptions
                    .iter()
                    .any(|s: &Subscription| s.subscriber == candidate)
            {
                continue;
            }
            let shortest = sp.cost_to(candidate).expect("connected overlay");
            subscriptions.push(Subscription::new(
                candidate,
                SimDuration::from_micros(shortest).mul_f64(1.5),
            ));
        }
        topics.push(TopicSpec {
            topic: TopicId::new(i as u32),
            publisher,
            interval: SimDuration::from_secs(1), // ADS-B position rate
            offset: SimDuration::from_micros(rng.gen_range(0..1_000_000)),
            subscriptions,
            burst: None,
        });
    }
    let workload = Workload::from_topics(topics);

    // Stormy WAN: 6% of links fail each second.
    let failure = FailureModel::links_only(LinkFailureModel::new(0.06, seed ^ 0xF));
    let config = RuntimeConfig::paper(SimDuration::from_secs(300), seed);
    let runtime = OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config);

    let mut strategy = DcrdStrategy::new(Default::default());
    let log = runtime.run(&mut strategy);

    println!("air surveillance over a 30-broker overlay, 12 sector feeds, 5 minutes:");
    println!("  position updates published : {}", log.messages_published);
    println!("  (update, consumer) pairs   : {}", log.num_expectations());
    println!(
        "  delivered                  : {:.2}%",
        log.delivery_ratio() * 100.0
    );
    println!(
        "  within latency budget      : {:.2}%",
        log.qos_delivery_ratio() * 100.0
    );
    println!(
        "  transmissions per consumer : {:.2}",
        log.packets_per_subscriber()
    );
    println!(
        "  link transmissions blocked by failed links: {} (rerouted around)",
        log.sends_blocked
    );
}
