// Fixture: SAFE003 must stay quiet — capacity hints clamped against the
// bytes actually present, constant hints, and non-call-site uses.
pub fn read_nodes(buf: &[u8], count: usize) -> Vec<u32> {
    let mut nodes = Vec::with_capacity(count.min(buf.len() / 4));
    for chunk in buf.chunks_exact(4).take(count) {
        nodes.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    nodes
}

pub fn scratch() -> Vec<u8> {
    Vec::with_capacity(64)
}

pub fn reserve(slots: usize) -> usize {
    // A function *named* reserve is not an allocation site.
    slots
}
