//! The distributed recursive computation of `⟨d, r⟩` (§III-B).
//!
//! In a deployment every broker recomputes its parameters whenever a
//! neighbor shares fresh ones, starting from the subscriber announcing
//! `⟨0, 1⟩`. We model this as **synchronous gossip rounds**: each round,
//! every broker rebuilds its sending list and `⟨d, r⟩` from the previous
//! round's neighbor values. The computation reaches a fixed point (values
//! stop changing within tolerance) in a handful of rounds on the paper's
//! topologies; the round cap guards against pathological oscillation.
//!
//! Because the per-node delay requirement is `D_XS = D_PS − shortest
//! delay(P → X)`, the tables are specific to a *(publisher, subscriber)*
//! pair, i.e. to one subscription.

use dcrd_net::estimate::LinkEstimates;
use dcrd_net::paths::{dijkstra, Metric, ShortestPaths};
use dcrd_net::{NodeId, NodeSet, Topology};
use serde::{Deserialize, Serialize};

use crate::config::{DcrdConfig, PropagationConfig};
use crate::params::{Candidate, DrPair};
use crate::reliability::{m_transmission_stats, LinkStats};
use crate::sending_list::{build_sending_list_into, node_params, NeighborInfo};

/// The converged routing state of every broker toward one subscription.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscriberTables {
    subscriber: NodeId,
    publisher: NodeId,
    /// Per-node delay requirement `D_XS` in µs (may be ≤ 0 for brokers too
    /// far from the publisher).
    requirements: Vec<f64>,
    /// Per-node sorted sending list.
    lists: Vec<Vec<Candidate>>,
    /// Per-node `⟨d, r⟩`.
    params: Vec<DrPair>,
    rounds_used: u32,
    converged: bool,
    /// Monotone control-plane version of this entry: bumped by the owning
    /// strategy on every recomputation so the gossip layer can summarize
    /// and reconcile divergent table state by `(subscription, version)`
    /// digests instead of comparing full tables.
    #[serde(default)]
    version: u64,
}

impl SubscriberTables {
    /// The subscriber these tables route toward.
    #[must_use]
    pub fn subscriber(&self) -> NodeId {
        self.subscriber
    }

    /// The publisher whose deadline anchors the requirements.
    #[must_use]
    pub fn publisher(&self) -> NodeId {
        self.publisher
    }

    /// The sorted sending list of `node` (empty for an unknown node).
    #[must_use]
    pub fn sending_list(&self, node: NodeId) -> &[Candidate] {
        self.lists.get(node.index()).map_or(&[], Vec::as_slice)
    }

    /// The `⟨d, r⟩` parameters of `node`.
    #[must_use]
    pub fn params(&self, node: NodeId) -> DrPair {
        self.params[node.index()]
    }

    /// The per-node delay requirement `D_XS` in µs.
    #[must_use]
    pub fn requirement(&self, node: NodeId) -> f64 {
        self.requirements[node.index()]
    }

    /// Gossip rounds executed before convergence (or the cap).
    #[must_use]
    pub fn rounds_used(&self) -> u32 {
        self.rounds_used
    }

    /// Whether the computation converged within the round cap.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The control-plane version of this entry (0 until the owning
    /// strategy stamps its first recomputation).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamps the control-plane version (set by the owning strategy on
    /// every build or repair of this entry).
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }
}

fn delta(a: DrPair, b: DrPair) -> (f64, f64) {
    let dd = match (a.d.is_finite(), b.d.is_finite()) {
        (true, true) => (a.d - b.d).abs(),
        (false, false) => 0.0,
        _ => f64::INFINITY,
    };
    (dd, (a.r - b.r).abs())
}

/// Computes the tables for the subscription `(publisher → subscriber)` with
/// end-to-end deadline `deadline_us`, reusing a precomputed shortest-path
/// tree from the publisher.
///
/// # Panics
///
/// Panics if `dist_from_publisher` was not computed from `publisher`, or if
/// `m == 0`.
#[must_use]
#[allow(clippy::too_many_arguments)] // one value per paper parameter; a struct would obscure them
pub fn compute_tables_with_distances(
    topo: &Topology,
    estimates: &LinkEstimates,
    m: u32,
    publisher: NodeId,
    dist_from_publisher: &ShortestPaths,
    subscriber: NodeId,
    deadline_us: f64,
    config: &DcrdConfig,
) -> SubscriberTables {
    let link_stats = link_transmission_stats(topo, estimates, m);
    compute_tables_prepared(
        topo,
        &link_stats,
        publisher,
        dist_from_publisher,
        subscriber,
        deadline_us,
        config,
    )
}

/// Per-edge `m`-transmission statistics for the whole topology, indexed by
/// edge id. Depends only on `(estimates, m)`, so one snapshot serves every
/// subscription of a table rebuild — hoist it out of per-subscription loops.
#[must_use]
pub fn link_transmission_stats(
    topo: &Topology,
    estimates: &LinkEstimates,
    m: u32,
) -> Vec<LinkStats> {
    topo.edge_ids()
        .map(|e| {
            let est = estimates.get(e);
            m_transmission_stats(est.alpha.as_micros() as f64, est.gamma, m)
        })
        .collect()
}

/// [`compute_tables_with_distances`] with the per-edge link statistics
/// precomputed by [`link_transmission_stats`].
///
/// # Panics
///
/// Panics if `dist_from_publisher` was not computed from `publisher`.
#[must_use]
pub fn compute_tables_prepared(
    topo: &Topology,
    link_stats: &[LinkStats],
    publisher: NodeId,
    dist_from_publisher: &ShortestPaths,
    subscriber: NodeId,
    deadline_us: f64,
    config: &DcrdConfig,
) -> SubscriberTables {
    compute_tables_prepared_masked(
        topo,
        link_stats,
        publisher,
        dist_from_publisher,
        subscriber,
        deadline_us,
        config,
        &NodeSet::new(),
    )
}

/// [`compute_tables_prepared`] over the overlay minus the `absent` brokers
/// (departed or confirmed dead): absent nodes contribute no candidates, get
/// no sending lists, and carry `−∞` requirements. With an empty mask the
/// result is **identical** to the unmasked computation — same float
/// operation order, same freeze schedule — which is what lets incremental
/// repair be oracle-checked against a from-scratch rebuild byte for byte.
///
/// `dist_from_publisher` should be computed with
/// [`dijkstra_masked`](dcrd_net::paths::dijkstra_masked) over the same
/// absent set so requirements reflect detours around the missing brokers.
///
/// # Panics
///
/// Panics if `dist_from_publisher` was not computed from `publisher`.
#[must_use]
#[allow(clippy::too_many_arguments)] // one value per paper parameter plus the mask
pub fn compute_tables_prepared_masked(
    topo: &Topology,
    link_stats: &[LinkStats],
    publisher: NodeId,
    dist_from_publisher: &ShortestPaths,
    subscriber: NodeId,
    deadline_us: f64,
    config: &DcrdConfig,
    absent: &NodeSet,
) -> SubscriberTables {
    assert_eq!(
        dist_from_publisher.source(),
        publisher,
        "distance tree must be rooted at the publisher"
    );
    let n = topo.num_nodes();
    let requirements: Vec<f64> = (0..n)
        .map(|i| {
            let node = NodeId::new(i as u32);
            if absent.contains(node) {
                return f64::NEG_INFINITY;
            }
            match dist_from_publisher.cost_to(node) {
                Some(c) => deadline_us - c as f64,
                None => f64::NEG_INFINITY,
            }
        })
        .collect();

    // Static per-node adjacency snapshot `(neighbor, link stats)`: the
    // gossip rounds below only vary in the neighbors' `⟨d, r⟩`, so the
    // round loop can refresh two reusable buffers instead of walking the
    // topology and allocating fresh vectors per node per round. Absent
    // neighbors are dropped from the snapshot, so no round ever considers
    // them as candidates.
    let adjacency: Vec<Vec<(NodeId, LinkStats)>> = (0..n)
        .map(|i| {
            topo.neighbors(NodeId::new(i as u32))
                .iter()
                .filter(|&&(nb, _)| !absent.contains(nb))
                .map(|&(nb, edge)| (nb, link_stats[edge.index()]))
                .collect()
        })
        .collect();
    let mut neigh_buf: Vec<NeighborInfo> = Vec::new();
    let mut list_buf: Vec<Candidate> = Vec::new();

    let mut params: Vec<DrPair> = vec![DrPair::UNREACHABLE; n];
    if !absent.contains(subscriber) {
        params[subscriber.index()] = DrPair::SUBSCRIBER;
    }

    let prop = config.propagation;
    // An absent subscriber never anchors `⟨0, 1⟩`: every broker (correctly)
    // converges to unreachable and all lists come out empty.
    let subscriber_active = !absent.contains(subscriber);
    let mut rounds_used = 0;
    let mut converged = false;
    let mut scratch = params.clone();
    // The deadline filter and the value-dependent sort make the iteration a
    // *discrete* dynamical system: a neighbor whose `d` sits near a
    // requirement boundary can flap in and out of sending lists (and lists
    // can keep re-ordering), sustaining a limit cycle — a case the paper,
    // which assumes the distributed computation settles, never addresses.
    // Remedy: run the exact iteration for a warm-up; if it has not settled,
    // freeze every list's membership *and order* and keep iterating only
    // the `⟨d, r⟩` values, which then converge like an absorption-time
    // system.
    let warmup = (prop.max_rounds / 2).max(8);
    let mut frozen: Option<Vec<Vec<NodeId>>> = None;
    for round in 1..=prop.max_rounds {
        rounds_used = round;
        if round > warmup && frozen.is_none() {
            frozen = Some(
                (0..n)
                    .map(|i| {
                        let node = NodeId::new(i as u32);
                        if node == subscriber && subscriber_active {
                            return Vec::new();
                        }
                        refresh_neighbors(&adjacency[i], &params, &mut neigh_buf);
                        build_sending_list_into(
                            &neigh_buf,
                            requirements[i],
                            config.ordering,
                            &mut list_buf,
                        );
                        list_buf.iter().map(|c| c.neighbor).collect()
                    })
                    .collect(),
            );
        }
        let mut max_dd = 0.0f64;
        let mut max_dr = 0.0f64;
        for i in 0..n {
            let node = NodeId::new(i as u32);
            if node == subscriber && subscriber_active {
                scratch[i] = DrPair::SUBSCRIBER;
                continue;
            }
            match &frozen {
                None => {
                    refresh_neighbors(&adjacency[i], &params, &mut neigh_buf);
                    build_sending_list_into(
                        &neigh_buf,
                        requirements[i],
                        config.ordering,
                        &mut list_buf,
                    );
                }
                Some(orders) => frozen_list_into(&adjacency[i], &params, &orders[i], &mut list_buf),
            }
            let p = node_params(&list_buf);
            let (dd, dr) = delta(p, params[i]);
            max_dd = max_dd.max(dd);
            max_dr = max_dr.max(dr);
            scratch[i] = p;
        }
        std::mem::swap(&mut params, &mut scratch);
        if max_dd <= prop.tolerance_d && max_dr <= prop.tolerance_r {
            converged = true;
            break;
        }
    }

    // Final lists from the converged parameters (honoring the freeze, so
    // the returned lists are consistent with the returned values).
    let lists: Vec<Vec<Candidate>> = (0..n)
        .map(|i| {
            let node = NodeId::new(i as u32);
            if node == subscriber && subscriber_active {
                return Vec::new();
            }
            match &frozen {
                None => {
                    refresh_neighbors(&adjacency[i], &params, &mut neigh_buf);
                    build_sending_list_into(
                        &neigh_buf,
                        requirements[i],
                        config.ordering,
                        &mut list_buf,
                    );
                }
                Some(orders) => frozen_list_into(&adjacency[i], &params, &orders[i], &mut list_buf),
            }
            list_buf.clone()
        })
        .collect();

    SubscriberTables {
        subscriber,
        publisher,
        requirements,
        lists,
        params,
        rounds_used,
        converged,
        version: 0,
    }
}

/// Convenience wrapper computing the publisher's distance tree internally.
#[must_use]
pub fn compute_tables(
    topo: &Topology,
    estimates: &LinkEstimates,
    m: u32,
    publisher: NodeId,
    subscriber: NodeId,
    deadline_us: f64,
    config: &DcrdConfig,
) -> SubscriberTables {
    let dist = dijkstra(topo, publisher, Metric::Delay);
    compute_tables_with_distances(
        topo,
        estimates,
        m,
        publisher,
        &dist,
        subscriber,
        deadline_us,
        config,
    )
}

/// Refreshes the reusable neighbor buffer from an adjacency snapshot and
/// the current round's `⟨d, r⟩` values.
fn refresh_neighbors(
    adjacency: &[(NodeId, LinkStats)],
    params: &[DrPair],
    out: &mut Vec<NeighborInfo>,
) {
    out.clear();
    out.extend(adjacency.iter().map(|&(nb, link)| NeighborInfo {
        neighbor: nb,
        link,
        params: params[nb.index()],
    }));
}

/// Rebuilds a sending list with *fixed* membership and order, refreshing
/// only the Eq. 2 values from the current params.
fn frozen_list_into(
    adjacency: &[(NodeId, LinkStats)],
    params: &[DrPair],
    order: &[NodeId],
    out: &mut Vec<Candidate>,
) {
    out.clear();
    out.extend(order.iter().filter_map(|&nb| {
        let found = adjacency.iter().find(|&&(n, _)| n == nb);
        debug_assert!(found.is_some(), "frozen list entry {nb} not a neighbor");
        let stats = found?.1;
        Some(Candidate::from_link(
            nb,
            stats.alpha,
            stats.gamma,
            params[nb.index()],
        ))
    }));
}

/// Sanity helper for tests/benches: the default propagation settings.
#[must_use]
pub fn default_propagation() -> PropagationConfig {
    PropagationConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::estimate::analytic_estimates;
    use dcrd_net::topology::{full_mesh, line, random_connected, ring, DelayRange};
    use dcrd_sim::rng::rng_for;
    use dcrd_sim::SimDuration;

    const MS: f64 = 1_000.0; // µs per ms

    fn cfg() -> DcrdConfig {
        DcrdConfig::default()
    }

    #[test]
    fn line_topology_hand_computed() {
        // 0 -10ms- 1 -10ms- 2 ; subscriber 2, publisher 0, lossless.
        let topo = line(3, SimDuration::from_millis(10));
        let est = analytic_estimates(&topo, 0.0, 0.0);
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(2),
            100.0 * MS,
            &cfg(),
        );
        assert!(t.converged());
        assert_eq!(t.params(topo.node(2)), DrPair::SUBSCRIBER);
        let p1 = t.params(topo.node(1));
        assert!((p1.d - 10.0 * MS).abs() < 1.0);
        assert!((p1.r - 1.0).abs() < 1e-9);
        let p0 = t.params(topo.node(0));
        assert!((p0.d - 20.0 * MS).abs() < 1.0);
        assert!((p0.r - 1.0).abs() < 1e-9);
        // Node 0's list contains only node 1.
        let l0 = t.sending_list(topo.node(0));
        assert_eq!(l0.len(), 1);
        assert_eq!(l0[0].neighbor, topo.node(1));
        // Requirements decay along the path.
        assert!((t.requirement(topo.node(0)) - 100.0 * MS).abs() < 1.0);
        assert!((t.requirement(topo.node(1)) - 90.0 * MS).abs() < 1.0);
    }

    #[test]
    fn lossy_links_reduce_r_and_grow_lists() {
        let topo = ring(4, SimDuration::from_millis(10));
        let est = analytic_estimates(&topo, 0.1, 0.0);
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(2),
            200.0 * MS,
            &cfg(),
        );
        assert!(t.converged());
        let p0 = t.params(topo.node(0));
        // Two disjoint 2-hop routes, each with per-link γ=0.9; with
        // neighbor feedback r must be at least 1−(1−0.81)² and below 1.
        assert!(p0.r > 0.95, "r0 = {}", p0.r);
        assert!(p0.r < 1.0);
        // Node 0 can go either way around the ring.
        assert_eq!(t.sending_list(topo.node(0)).len(), 2);
    }

    #[test]
    fn requirement_filter_prunes_long_detours() {
        // Tight deadline: only the direct neighbor qualifies.
        let topo = ring(6, SimDuration::from_millis(10));
        let est = analytic_estimates(&topo, 0.0, 0.0);
        // subscriber = node 1 (10ms away clockwise, 50ms the other way).
        // Deadline 15ms: the counter-clockwise route (d=50ms) must be
        // filtered everywhere it would exceed the budget.
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(1),
            15.0 * MS,
            &cfg(),
        );
        let l0 = t.sending_list(topo.node(0));
        assert_eq!(l0.len(), 1, "only the direct neighbor meets 15ms");
        assert_eq!(l0[0].neighbor, topo.node(1));
    }

    #[test]
    fn subscriber_itself_has_empty_list_and_identity_params() {
        let mut rng = rng_for(1, "prop");
        let topo = full_mesh(6, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.02, 1e-4);
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(3),
            500.0 * MS,
            &cfg(),
        );
        assert!(t.sending_list(topo.node(3)).is_empty());
        assert_eq!(t.params(topo.node(3)), DrPair::SUBSCRIBER);
        assert_eq!(t.subscriber(), topo.node(3));
        assert_eq!(t.publisher(), topo.node(0));
    }

    #[test]
    fn mesh_lists_sorted_by_ratio() {
        let mut rng = rng_for(2, "prop");
        let topo = full_mesh(8, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.06, 1e-4);
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(5),
            400.0 * MS,
            &cfg(),
        );
        assert!(t.converged());
        for node in topo.nodes() {
            let list = t.sending_list(node);
            for w in list.windows(2) {
                assert!(
                    w[0].ratio() <= w[1].ratio() + 1e-9,
                    "list of {node} not sorted by d/r"
                );
            }
        }
        // The subscriber's direct link should top every neighbor's list:
        // d/r of the direct hop is hard to beat in a mesh.
        let l0 = t.sending_list(topo.node(0));
        assert!(!l0.is_empty());
    }

    #[test]
    fn unreachable_subscriber_leaves_everything_unreachable() {
        // Disconnected pair: build a line 0-1 and an isolated node 2 via a
        // 3-node line where we only use nodes 0,1 — instead use line(2) plus
        // extra node through builder.
        use dcrd_net::graph::TopologyBuilder;
        let mut b = TopologyBuilder::new(3);
        let nodes = b.nodes();
        b.link(nodes[0], nodes[1], SimDuration::from_millis(10));
        let topo = b.build(); // node 2 isolated
        let est = analytic_estimates(&topo, 0.0, 0.0);
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(2),
            100.0 * MS,
            &cfg(),
        );
        assert!(!t.params(topo.node(0)).reachable());
        assert!(!t.params(topo.node(1)).reachable());
        assert!(t.sending_list(topo.node(0)).is_empty());
        // Nodes unreachable from the publisher have -inf requirement.
        assert_eq!(t.requirement(topo.node(2)), f64::NEG_INFINITY);
    }

    #[test]
    fn convergence_on_random_graphs() {
        for seed in 0..5u64 {
            let mut rng = rng_for(seed, "prop-rand");
            let topo = random_connected(20, 5, DelayRange::PAPER, &mut rng);
            let est = analytic_estimates(&topo, 0.04, 1e-4);
            let t = compute_tables(
                &topo,
                &est,
                1,
                topo.node(0),
                topo.node(10),
                600.0 * MS,
                &cfg(),
            );
            assert!(t.converged(), "seed {seed} did not converge");
            assert!(
                t.rounds_used() < 60,
                "seed {seed} used {} rounds",
                t.rounds_used()
            );
            // Publisher must be able to reach the subscriber.
            assert!(t.params(topo.node(0)).reachable());
        }
    }

    #[test]
    fn m2_increases_r_of_publisher() {
        let mut rng = rng_for(7, "prop-m");
        let topo = random_connected(10, 3, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.2, 0.0);
        let t1 = compute_tables(&topo, &est, 1, topo.node(0), topo.node(5), 1e9, &cfg());
        let t2 = compute_tables(&topo, &est, 2, topo.node(0), topo.node(5), 1e9, &cfg());
        // Per-link γ grows with m, so every per-candidate r grows.
        assert!(
            t2.params(topo.node(0)).r >= t1.params(topo.node(0)).r - 1e-9,
            "m=2 r {} < m=1 r {}",
            t2.params(topo.node(0)).r,
            t1.params(topo.node(0)).r
        );
    }

    #[test]
    fn large_overlays_always_converge() {
        // Regression: the deadline filter can flap neighbors in and out of
        // sending lists and orbit forever; the freeze-after-warm-up phase
        // must terminate every subscription on large overlays.
        let mut rng = rng_for(0xC0, "prop-large");
        let topo = random_connected(120, 8, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.06, 1e-4);
        let dist = dcrd_net::paths::dijkstra(&topo, topo.node(0), dcrd_net::paths::Metric::Delay);
        for sub in 1..40 {
            let deadline = 3.0 * dist.cost_to(topo.node(sub)).expect("connected") as f64;
            let t = compute_tables_with_distances(
                &topo,
                &est,
                1,
                topo.node(0),
                &dist,
                topo.node(sub),
                deadline,
                &cfg(),
            );
            assert!(t.converged(), "subscription to node {sub} did not converge");
            assert!(t.params(topo.node(0)).reachable());
        }
    }

    #[test]
    fn empty_mask_is_byte_identical() {
        let mut rng = rng_for(11, "prop-mask");
        let topo = random_connected(14, 4, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.05, 1e-4);
        let stats = link_transmission_stats(&topo, &est, 1);
        let dist = dijkstra(&topo, topo.node(0), Metric::Delay);
        let plain = compute_tables_prepared(
            &topo,
            &stats,
            topo.node(0),
            &dist,
            topo.node(9),
            500.0 * MS,
            &cfg(),
        );
        let masked = compute_tables_prepared_masked(
            &topo,
            &stats,
            topo.node(0),
            &dist,
            topo.node(9),
            500.0 * MS,
            &cfg(),
            &NodeSet::new(),
        );
        assert_eq!(plain, masked);
    }

    #[test]
    fn masked_computation_routes_around_absent_broker() {
        use dcrd_net::paths::dijkstra_masked;
        // Ring 0-1-2-3-0, subscriber 2, publisher 0. With node 1 absent the
        // only route is 0→3→2.
        let topo = ring(4, SimDuration::from_millis(10));
        let est = analytic_estimates(&topo, 0.0, 0.0);
        let stats = link_transmission_stats(&topo, &est, 1);
        let absent: NodeSet = [topo.node(1)].into_iter().collect();
        let dist = dijkstra_masked(&topo, topo.node(0), Metric::Delay, &absent);
        let t = compute_tables_prepared_masked(
            &topo,
            &stats,
            topo.node(0),
            &dist,
            topo.node(2),
            200.0 * MS,
            &cfg(),
            &absent,
        );
        assert!(t.converged());
        // The dead broker is no candidate anywhere and has no list.
        let l0 = t.sending_list(topo.node(0));
        assert_eq!(l0.len(), 1);
        assert_eq!(l0[0].neighbor, topo.node(3));
        assert!(t.sending_list(topo.node(1)).is_empty());
        assert_eq!(t.requirement(topo.node(1)), f64::NEG_INFINITY);
        assert!(!t.params(topo.node(1)).reachable());
        // Detour delay shows up in the requirement decay: 0 is 20ms from 2
        // the surviving way.
        assert!((t.requirement(topo.node(3)) - 190.0 * MS).abs() < 1.0);
        assert!((t.params(topo.node(0)).d - 20.0 * MS).abs() < 1.0);
    }

    #[test]
    fn masked_absent_subscriber_is_unreachable_everywhere() {
        let topo = line(3, SimDuration::from_millis(10));
        let est = analytic_estimates(&topo, 0.0, 0.0);
        let stats = link_transmission_stats(&topo, &est, 1);
        let absent: NodeSet = [topo.node(2)].into_iter().collect();
        let dist = dijkstra(&topo, topo.node(0), Metric::Delay);
        let t = compute_tables_prepared_masked(
            &topo,
            &stats,
            topo.node(0),
            &dist,
            topo.node(2),
            100.0 * MS,
            &cfg(),
            &absent,
        );
        for i in 0..3 {
            assert!(t.sending_list(topo.node(i)).is_empty());
            assert!(!t.params(topo.node(i)).reachable());
        }
    }

    #[test]
    fn deterministic_output() {
        let mut rng = rng_for(3, "prop-det");
        let topo = random_connected(12, 4, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.05, 1e-4);
        let a = compute_tables(
            &topo,
            &est,
            1,
            topo.node(1),
            topo.node(8),
            500.0 * MS,
            &cfg(),
        );
        let b = compute_tables(
            &topo,
            &est,
            1,
            topo.node(1),
            topo.node(8),
            500.0 * MS,
            &cfg(),
        );
        assert_eq!(a, b);
    }
}
