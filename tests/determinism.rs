//! Whole-system determinism: identical seeds reproduce identical results
//! bit-for-bit across every strategy, and distinct seeds decorrelate.

use dcrd::experiments::runner::{run_once, StrategyKind};
use dcrd::experiments::scenario::{Scenario, ScenarioBuilder};

fn scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .nodes(15)
        .degree(5)
        .failure_probability(0.06)
        .duration_secs(40)
        .seed(seed)
        .build()
}

#[test]
fn every_strategy_is_deterministic() {
    for kind in StrategyKind::ALL {
        let a = run_once(&scenario(123), kind, 0);
        let b = run_once(&scenario(123), kind, 0);
        assert_eq!(
            a.delivery_ratio(),
            b.delivery_ratio(),
            "{} delivery not reproducible",
            kind.label()
        );
        assert_eq!(
            a.qos_delivery_ratio(),
            b.qos_delivery_ratio(),
            "{} QoS not reproducible",
            kind.label()
        );
        assert_eq!(
            a.packets_per_subscriber(),
            b.packets_per_subscriber(),
            "{} traffic not reproducible",
            kind.label()
        );
        assert_eq!(a.pairs(), b.pairs());
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    let a = run_once(&scenario(1), StrategyKind::Dcrd, 0);
    let b = run_once(&scenario(2), StrategyKind::Dcrd, 0);
    // Topology, workload and failures all differ: the traffic metric is a
    // continuous aggregate and will practically never collide.
    assert_ne!(
        a.packets_per_subscriber(),
        b.packets_per_subscriber(),
        "distinct seeds should not produce identical traffic"
    );
}

#[test]
fn repetitions_differ_within_one_scenario() {
    let s = scenario(7);
    let a = run_once(&s, StrategyKind::Dcrd, 0);
    let b = run_once(&s, StrategyKind::Dcrd, 1);
    assert_ne!(
        (a.pairs(), a.packets_per_subscriber()),
        (b.pairs(), b.packets_per_subscriber()),
        "repetition index must derive fresh topology/workload"
    );
}

#[test]
fn strategies_share_the_environment_at_equal_rep() {
    // Paired comparison guarantee: every strategy sees the same number of
    // (message, subscriber) pairs at the same repetition.
    let s = scenario(9);
    let pairs: Vec<u64> = StrategyKind::ALL
        .iter()
        .map(|&k| run_once(&s, k, 0).pairs())
        .collect();
    for w in pairs.windows(2) {
        assert_eq!(w[0], w[1], "strategies must see identical workloads");
    }
}

/// Same seed, same chaos schedule, twice: the **full transmission traces**
/// must be bit-identical, not just the aggregate metrics. This is the
/// regression test backing the analyzer's determinism lints (DET001-003):
/// a stray `HashMap` iteration or ambient RNG anywhere in the hot path
/// shows up here as a digest mismatch long before it skews a figure.
#[test]
fn chaos_trace_digests_are_identical_across_reruns() {
    use dcrd::core::{DcrdConfig, DcrdStrategy};
    use dcrd::experiments::runner::{build_chaos, build_topology, build_workload};
    use dcrd::experiments::scenario::{CrashSpec, GraySpec, PartitionSpec};
    use dcrd::net::failure::{FailureModel, LinkFailureModel, LinkOutageModel};
    use dcrd::net::loss::LossModel;
    use dcrd::pubsub::runtime::{OverlayRuntime, RuntimeConfig};
    use dcrd::sim::SimDuration;

    let scenario = ScenarioBuilder::new()
        .nodes(15)
        .degree(5)
        .failure_probability(0.02)
        .partition(PartitionSpec {
            fraction: 0.3,
            window_secs: 10,
            period_secs: 20,
        })
        .crashes(CrashSpec {
            rate: 0.01,
            mean_down_epochs: 2.0,
        })
        .gray_links(GraySpec {
            fraction: 0.2,
            extra_loss: 0.2,
            delay_factor: 2.0,
        })
        .audit(true)
        .dcrd(DcrdConfig::chaos_hardened())
        .duration_secs(40)
        .seed(77)
        .build();

    let traced_digest = || {
        let topo = build_topology(&scenario, 0);
        let workload = build_workload(&scenario, &topo, 0);
        let links = LinkOutageModel::Epoch(LinkFailureModel::new(scenario.pf, 0xC4A0));
        let failure = FailureModel::new(links, None).with_chaos(build_chaos(&scenario, 0));
        let mut config = RuntimeConfig::paper(SimDuration::from_secs(40), 77);
        config.capture_trace = true;
        let runtime =
            OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config);
        let mut strategy = DcrdStrategy::new(scenario.dcrd);
        let log = runtime.run(&mut strategy);
        let trace = log.trace.as_ref().expect("trace captured");
        assert!(!trace.is_empty(), "chaos run produced no events");
        trace.digest()
    };

    let first = traced_digest();
    let second = traced_digest();
    assert_eq!(
        first, second,
        "same-seed chaos runs diverged: event traces are not deterministic"
    );
}

#[test]
fn chaos_models_are_deterministic() {
    use dcrd::core::DcrdConfig;
    use dcrd::experiments::scenario::{CrashSpec, GraySpec, PartitionSpec};
    let chaos_scenario = |seed: u64| {
        ScenarioBuilder::new()
            .nodes(15)
            .degree(5)
            .failure_probability(0.02)
            .partition(PartitionSpec {
                fraction: 0.3,
                window_secs: 10,
                period_secs: 20,
            })
            .crashes(CrashSpec {
                rate: 0.01,
                mean_down_epochs: 2.0,
            })
            .gray_links(GraySpec {
                fraction: 0.2,
                extra_loss: 0.2,
                delay_factor: 2.0,
            })
            .audit(true)
            .dcrd(DcrdConfig::chaos_hardened())
            .duration_secs(40)
            .seed(seed)
            .build()
    };
    for kind in [StrategyKind::Dcrd, StrategyKind::RTree] {
        let a = run_once(&chaos_scenario(77), kind, 0);
        let b = run_once(&chaos_scenario(77), kind, 0);
        assert_eq!(
            a.delivery_ratio(),
            b.delivery_ratio(),
            "{} delivery not reproducible under chaos",
            kind.label()
        );
        assert_eq!(
            a.qos_delivery_ratio(),
            b.qos_delivery_ratio(),
            "{} QoS not reproducible under chaos",
            kind.label()
        );
        assert_eq!(
            a.packets_per_subscriber(),
            b.packets_per_subscriber(),
            "{} traffic not reproducible under chaos",
            kind.label()
        );
        assert_eq!(a.audit_violations(), b.audit_violations());
    }
    let a = run_once(&chaos_scenario(77), StrategyKind::Dcrd, 0);
    let c = run_once(&chaos_scenario(78), StrategyKind::Dcrd, 0);
    assert_ne!(
        a.packets_per_subscriber(),
        c.packets_per_subscriber(),
        "distinct seeds must re-draw the chaos schedule"
    );
}
