//! # DCRD — Delay-Cognizant Reliable Delivery for Pub/Sub Overlay Networks
//!
//! Facade crate for the reproduction of Guo et al., *Delay-Cognizant
//! Reliable Delivery for Publish/Subscribe Overlay Networks* (ICDCS 2011).
//! It re-exports the whole workspace under stable module names so that
//! downstream users (and the examples in `examples/`) can depend on a single
//! crate.
//!
//! * [`sim`] — deterministic discrete-event simulation engine.
//! * [`net`] — overlay topologies, path algorithms, failure/loss models.
//! * [`pubsub`] — topics, subscriptions, workloads, the routing-strategy
//!   trait and the overlay runtime.
//! * [`core`] — the DCRD algorithm itself (sending lists, optimal ordering,
//!   the dynamic router).
//! * [`baselines`] — R-Tree, D-Tree, ORACLE and Multipath baselines.
//! * [`metrics`] — delivery/QoS/traffic metrics and report rendering.
//! * [`experiments`] — ready-made configurations reproducing every figure
//!   of the paper.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run; in short:
//!
//! ```
//! use dcrd::experiments::scenario::ScenarioBuilder;
//! use dcrd::experiments::runner::run_scenario;
//! use dcrd::experiments::StrategyKind;
//!
//! let scenario = ScenarioBuilder::new()
//!     .nodes(10)
//!     .degree(5)
//!     .failure_probability(0.04)
//!     .duration_secs(30)
//!     .seed(7)
//!     .build();
//! let report = run_scenario(&scenario, StrategyKind::Dcrd);
//! assert!(report.delivery_ratio() > 0.9);
//! ```

pub use dcrd_baselines as baselines;
pub use dcrd_core as core;
pub use dcrd_experiments as experiments;
pub use dcrd_metrics as metrics;
pub use dcrd_net as net;
pub use dcrd_pubsub as pubsub;
pub use dcrd_sim as sim;
