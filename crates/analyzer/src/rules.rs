//! The DCRD lint rules.
//!
//! Every rule is a lexical scan over masked, test-stripped source (see
//! [`crate::mask`]): comments, literals and `#[cfg(test)]` modules can
//! never trigger a diagnostic. Scopes are path prefixes relative to the
//! workspace root; a rule only fires inside its scope.

/// Crates whose code runs inside the deterministic simulation. Iteration
/// order and ambient entropy here change same-seed traces.
pub const SIM_FACING: &[&str] = &[
    "crates/sim",
    "crates/net",
    "crates/core",
    "crates/pubsub",
    "crates/baselines",
];

/// Hot-path crates where a panic aborts a whole experiment sweep.
pub const HOT_PATH: &[&str] = &["crates/core", "crates/pubsub"];

/// The one module allowed to touch raw entropy: the seeded RNG factory.
pub const DET002_EXEMPT: &[&str] = &["crates/sim/src/rng.rs"];

/// Crates that must stay sans-io: the protocol logic the transport split
/// will lift behind a driver. Purity violations here would leak ambient
/// environment effects into code the simulator must fully control.
pub const PURE_SCOPE: &[&str] = &["crates/core", "crates/pubsub", "crates/sim", "crates/net"];

/// Files where the SAFE002 counter extension applies: metrics histogram
/// bucket math and gossip round counters, where a wrap corrupts a whole
/// sweep's statistics silently.
pub const SAFE002_COUNTER_SCOPE: &[&str] = &[
    "crates/metrics",
    "crates/net/src/gossip.rs",
    "crates/sim/src/stats.rs",
];

/// One rule's identity and rationale (`--list-rules` output).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id (`DET001` …).
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Human-readable scope.
    pub scope: &'static str,
}

/// The rule registry, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "DET001",
        summary: "no HashMap/HashSet in sim-facing crates (iteration order is \
                  nondeterministic); use BTreeMap/BTreeSet",
        scope: "crates/{sim,net,core,pubsub,baselines}, non-test code",
    },
    RuleInfo {
        id: "DET002",
        summary: "no ambient nondeterminism (Instant::now, SystemTime::now, \
                  thread_rng, rand::random, from_entropy); derive all entropy \
                  from the run seed via dcrd_sim::rng",
        scope: "crates/{sim,net,core,pubsub,baselines} except sim/src/rng.rs",
    },
    RuleInfo {
        id: "DET003",
        summary: "no partial_cmp inside sort/min/max comparators (NaN makes \
                  the comparator panic or lie); use f64::total_cmp",
        scope: "whole workspace, non-test code",
    },
    RuleInfo {
        id: "SAFE001",
        summary: "no unwrap()/expect() in non-test hot-path code; degrade \
                  gracefully or return a typed error",
        scope: "crates/{core,pubsub}, non-test code",
    },
    RuleInfo {
        id: "SAFE002",
        summary: "no unchecked integer arithmetic inside SimTime/SimDuration \
                  construction, and no bare `+=` on struct-field counters \
                  (histogram buckets, gossip rounds); use the \
                  saturating/checked API",
        scope: "crates/sim; counters also in crates/metrics, \
                net/src/gossip.rs, sim/src/stats.rs",
    },
    RuleInfo {
        id: "SAFE003",
        summary: "no with_capacity/reserve in wire-codec files sized by an \
                  unclamped (possibly attacker-controlled) length prefix; \
                  clamp the hint with .min(..) against the bytes present",
        scope: "codec files in sim-facing crates, non-test code",
    },
    RuleInfo {
        id: "PURE001",
        summary: "no ambient IO, threads or async runtimes (std::{net,thread,\
                  fs,process}, tokio, async-std, mio) in the sans-io crates; \
                  effects belong behind the transport driver",
        scope: "crates/{core,pubsub,sim,net} minus [pure] exempt paths",
    },
    RuleInfo {
        id: "PURE002",
        summary: "no wall clocks or blocking IO traits (std::io, \
                  std::time::Instant, SystemTime) in the sans-io crates; \
                  time flows only through SimTime",
        scope: "crates/{core,pubsub,sim,net} minus [pure] exempt paths",
    },
    RuleInfo {
        id: "PURE003",
        summary: "no std::sync primitives (Mutex, RwLock, Condvar, mpsc, \
                  atomics, parking_lot/crossbeam/rayon) in the sans-io \
                  crates; Arc is allowed, shared mutation is not",
        scope: "crates/{core,pubsub,sim,net} minus [pure] exempt paths",
    },
    RuleInfo {
        id: "PANIC001",
        summary: "no panic source (panic-family macro, unwrap/expect, \
                  indexing) transitively reachable from Router::process, \
                  OverlayRuntime::tick, or the codec entry points, by \
                  call-graph over-approximation",
        scope: "workspace call graph from the hot-path entry points",
    },
    RuleInfo {
        id: "LAYER001",
        summary: "crate dependencies must point strictly down the [layers] \
                  order in analyzer.toml; sim-facing crates may not depend \
                  on experiment/CLI crates",
        scope: "every workspace Cargo.toml [dependencies] section",
    },
];

/// One finding: rule, location (1-based line/column) and the offending
/// source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id.
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// The trimmed original source line.
    pub snippet: String,
    /// Optional extra context (e.g. a PANIC001 reachability chain);
    /// empty when there is none.
    pub note: String,
}

fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| path.starts_with(p))
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Word-boundary occurrences of `word` in `text`.
fn word_positions(text: &str, word: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(rel) = text[from..].find(word) {
        let pos = from + rel;
        let before_ok = pos == 0 || !is_ident(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            hits.push(pos);
        }
        from = pos + word.len().max(1);
    }
    hits
}

/// `(line, col)` of a byte offset, both 1-based.
fn line_col(text: &str, offset: usize) -> (usize, usize) {
    let before = &text.as_bytes()[..offset];
    let line = before.iter().filter(|&&b| b == b'\n').count() + 1;
    let col = offset
        - before
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1)
        + 1;
    (line, col)
}

fn snippet_of(original: &str, line: usize) -> String {
    original
        .lines()
        .nth(line - 1)
        .unwrap_or_default()
        .trim()
        .to_string()
}

/// Builds one diagnostic at a byte offset of the masked source (masking
/// is length-preserving, so the offset maps 1:1 onto `original`).
#[must_use]
pub fn diagnostic_at(
    rule: &'static str,
    path: &str,
    original: &str,
    masked: &str,
    offset: usize,
    note: String,
) -> Diagnostic {
    let (line, col) = line_col(masked, offset);
    Diagnostic {
        rule,
        path: path.to_string(),
        line,
        col,
        snippet: snippet_of(original, line),
        note,
    }
}

fn push(
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    path: &str,
    original: &str,
    masked: &str,
    offset: usize,
) {
    out.push(diagnostic_at(
        rule,
        path,
        original,
        masked,
        offset,
        String::new(),
    ));
}

/// Runs every rule over one file. `path` is workspace-relative and
/// determines which scopes apply; `masked` must be the output of
/// [`crate::mask::mask_source`] + [`crate::mask::strip_test_regions`].
#[must_use]
pub fn scan_file(path: &str, original: &str, masked: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    if in_scope(path, SIM_FACING) {
        for word in ["HashMap", "HashSet"] {
            for pos in word_positions(masked, word) {
                push(&mut out, "DET001", path, original, masked, pos);
            }
        }
        if !DET002_EXEMPT.contains(&path) {
            for pat in [
                "Instant::now",
                "SystemTime::now",
                "thread_rng",
                "rand::random",
                "from_entropy",
            ] {
                let word = pat.split("::").next().unwrap_or(pat);
                for pos in word_positions(masked, word) {
                    let end = pos + pat.len();
                    let after_ok = end >= masked.len() || !is_ident(masked.as_bytes()[end]);
                    if after_ok && masked[pos..].starts_with(pat) {
                        push(&mut out, "DET002", path, original, masked, pos);
                    }
                }
            }
        }
    }

    for pos in det003_positions(masked) {
        push(&mut out, "DET003", path, original, masked, pos);
    }

    if in_scope(path, HOT_PATH) {
        for pos in word_positions(masked, "unwrap") {
            if pos > 0
                && masked.as_bytes()[pos - 1] == b'.'
                && masked[pos..].starts_with("unwrap()")
            {
                push(&mut out, "SAFE001", path, original, masked, pos);
            }
        }
        for pos in word_positions(masked, "expect") {
            if pos > 0 && masked.as_bytes()[pos - 1] == b'.' && masked[pos..].starts_with("expect(")
            {
                push(&mut out, "SAFE001", path, original, masked, pos);
            }
        }
    }

    if path.starts_with("crates/sim") {
        for pos in safe002_positions(masked) {
            push(&mut out, "SAFE002", path, original, masked, pos);
        }
    }

    if in_scope(path, SAFE002_COUNTER_SCOPE) {
        for pos in safe002_counter_positions(masked) {
            push(&mut out, "SAFE002", path, original, masked, pos);
        }
    }

    if in_scope(path, PURE_SCOPE) {
        for (rule, pos) in pure_positions(masked) {
            push(&mut out, rule, path, original, masked, pos);
        }
    }

    if in_scope(path, SIM_FACING) && is_codec_file(path) {
        for pos in safe003_positions(masked) {
            push(&mut out, "SAFE003", path, original, masked, pos);
        }
    }

    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// DET003: `partial_cmp` occurring inside the balanced-paren argument of a
/// comparator-taking call (`sort_by`, `sort_unstable_by`, `min_by`,
/// `max_by`, `binary_search_by`). A `PartialOrd` *impl* defining
/// `partial_cmp` is not a sort and is not flagged.
fn det003_positions(masked: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    for call in [
        "sort_by",
        "sort_unstable_by",
        "min_by",
        "max_by",
        "binary_search_by",
    ] {
        for pos in word_positions(masked, call) {
            let open = pos + call.len();
            if masked.as_bytes().get(open) != Some(&b'(') {
                continue; // e.g. `sort_by_key` already excluded by boundary.
            }
            let close = match matching_paren(masked.as_bytes(), open) {
                Some(c) => c,
                None => masked.len(),
            };
            let span = &masked[open..close];
            for rel in word_positions(span, "partial_cmp") {
                hits.push(open + rel);
            }
        }
    }
    hits.sort_unstable();
    hits.dedup();
    hits
}

/// SAFE002: raw `+`/`-`/`*` inside the argument of a `SimTime(…)` /
/// `SimDuration(…)` tuple construction. Spans that go through the
/// saturating/checked API or the (saturating) float path are exempt.
fn safe002_positions(masked: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    for ctor in ["SimTime", "SimDuration"] {
        for pos in word_positions(masked, ctor) {
            let open = pos + ctor.len();
            if masked.as_bytes().get(open) != Some(&b'(') {
                continue;
            }
            let close = match matching_paren(masked.as_bytes(), open) {
                Some(c) => c,
                None => continue,
            };
            let span = &masked[open + 1..close];
            if span.contains("saturating_")
                || span.contains("checked_")
                || span.contains("wrapping_")
                || span.contains("as u64")
            {
                continue;
            }
            if let Some(rel) = span.bytes().position(|b| matches!(b, b'+' | b'-' | b'*')) {
                hits.push(open + 1 + rel);
            }
        }
    }
    hits.sort_unstable();
    hits.dedup();
    hits
}

/// SAFE002 counter extension: `field.path += <int literal>` (or `-=`) on a
/// struct field. A wrap in a long sweep silently corrupts statistics, so
/// counters must go through `saturating_add`. Bare locals (`salt += 1`)
/// are exempt: they live and die inside one function and overflow panics
/// surface immediately in debug runs.
fn safe002_counter_positions(masked: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    let mut hits = Vec::new();
    for op in 0..bytes.len().saturating_sub(1) {
        // `+=` increments and `-=` decrements (underflow → u64::MAX).
        if !matches!(bytes[op], b'+' | b'-') || bytes[op + 1] != b'=' {
            continue;
        }
        // LHS: walk back over an expression path (`self.buckets[idx]`).
        let mut start = op;
        while start > 0 {
            let b = bytes[start - 1];
            if is_ident(b) || matches!(b, b'.' | b'[' | b']' | b' ') {
                start -= 1;
            } else {
                break;
            }
        }
        let lhs = masked[start..op].trim();
        if !lhs.contains('.') || lhs.contains("..") {
            continue; // bare local, or a range expression — not a counter
        }
        // RHS must be a plain integer literal (`+= 1`, `+= 1_000`).
        let mut r = op + 2;
        while r < bytes.len() && bytes[r] == b' ' {
            r += 1;
        }
        let rhs_start = r;
        while r < bytes.len() && (bytes[r].is_ascii_digit() || bytes[r] == b'_') {
            r += 1;
        }
        let rhs_is_int = r > rhs_start && bytes.get(r).is_none_or(|&b| !is_ident(b) && b != b'.');
        if rhs_is_int {
            hits.push(op);
        }
    }
    hits.sort_unstable();
    hits.dedup();
    hits
}

/// Occurrences of a qualified path pattern like `std::net` or `tokio::`:
/// the first segment must sit on a word boundary and the match must not
/// continue into a longer identifier (`std::fsync` never matches
/// `std::fs`).
fn qualified_positions(masked: &str, pat: &str) -> Vec<usize> {
    let first = pat.split(':').next().unwrap_or(pat);
    word_positions(masked, first)
        .into_iter()
        .filter(|&pos| {
            if !masked[pos..].starts_with(pat) {
                return false;
            }
            let end = pos + pat.len();
            pat.ends_with(':') || end >= masked.len() || !is_ident(masked.as_bytes()[end])
        })
        .collect()
}

/// PURE003 type names: the `std::sync` (and ecosystem) shared-mutation
/// primitives. `Arc` is deliberately absent — refcounted sharing of
/// immutable protocol state is sanctioned; locks, channels and atomics
/// are not.
const PURE003_WORDS: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "OnceLock",
    "LazyLock",
    "mpsc",
    "parking_lot",
    "crossbeam",
    "rayon",
];

/// The sans-io purity scans (PURE001–003) over one masked file.
fn pure_positions(masked: &str) -> Vec<(&'static str, usize)> {
    let mut hits: Vec<(&'static str, usize)> = Vec::new();
    for pat in [
        "std::net",
        "std::thread",
        "std::fs",
        "std::process",
        "tokio::",
        "async_std::",
        "mio::",
    ] {
        for pos in qualified_positions(masked, pat) {
            hits.push(("PURE001", pos));
        }
    }
    for pos in qualified_positions(masked, "std::io") {
        hits.push(("PURE002", pos));
    }
    for word in ["Instant", "SystemTime"] {
        for pos in word_positions(masked, word) {
            hits.push(("PURE002", pos));
        }
    }
    for word in PURE003_WORDS {
        for pos in word_positions(masked, word) {
            hits.push(("PURE003", pos));
        }
    }
    // Atomics: any `Atomic`-prefixed type name (AtomicU64, AtomicBool, …).
    let bytes = masked.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident(bytes[i]) && (i == 0 || !is_ident(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && is_ident(bytes[i]) {
                i += 1;
            }
            let word = &masked[start..i];
            if word.len() > "Atomic".len() && word.starts_with("Atomic") {
                hits.push(("PURE003", start));
            }
        } else {
            i += 1;
        }
    }
    hits.sort_unstable_by_key(|&(_, pos)| pos);
    hits
}

/// Whether `path` names a wire-codec source file (SAFE003 scope).
fn is_codec_file(path: &str) -> bool {
    path.rsplit('/')
        .next()
        .is_some_and(|file| file.contains("codec"))
}

/// SAFE003: a `with_capacity(..)` or `.reserve(..)` call in a wire-codec
/// file whose argument is not visibly clamped. Lengths in codec files come
/// off the wire, so an unclamped capacity hint lets a tiny hostile datagram
/// demand a huge allocation. Spans whose argument contains `.min(` (clamped
/// against the bytes actually present) or is a bare numeric literal are
/// exempt.
fn safe003_positions(masked: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    for call in ["with_capacity", "reserve"] {
        for pos in word_positions(masked, call) {
            let open = pos + call.len();
            if masked.as_bytes().get(open) != Some(&b'(') {
                continue;
            }
            // `reserve` must be a method call; a fn named `reserve` being
            // *defined* here is not an allocation site.
            if call == "reserve" && (pos == 0 || masked.as_bytes()[pos - 1] != b'.') {
                continue;
            }
            let close = match matching_paren(masked.as_bytes(), open) {
                Some(c) => c,
                None => masked.len(),
            };
            let span = &masked[open + 1..close.min(masked.len())];
            let literal_only = !span.trim().is_empty()
                && span
                    .bytes()
                    .all(|b| b.is_ascii_digit() || b == b'_' || b.is_ascii_whitespace());
            if span.contains(".min(") || literal_only {
                continue;
            }
            hits.push(pos);
        }
    }
    hits.sort_unstable();
    hits.dedup();
    hits
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::{mask_source, strip_test_regions};

    fn scan(path: &str, src: &str) -> Vec<Diagnostic> {
        let masked = strip_test_regions(&mask_source(src));
        scan_file(path, src, &masked)
    }

    #[test]
    fn word_boundaries_are_respected() {
        let hits = scan("crates/core/src/x.rs", "type MyHashMapLike = u32;");
        assert!(hits.is_empty());
        let hits = scan("crates/core/src/x.rs", "use std::collections::HashMap;");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "DET001");
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn out_of_scope_paths_are_quiet() {
        let hits = scan("crates/experiments/src/x.rs", "let m: HashMap<u32, u32>;");
        assert!(hits.is_empty());
    }

    #[test]
    fn det003_flags_only_comparator_spans() {
        let src = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());";
        let hits = scan("crates/metrics/src/x.rs", src);
        assert_eq!(hits.iter().filter(|d| d.rule == "DET003").count(), 1);
        // A PartialOrd impl defines partial_cmp without sorting: clean.
        let imp = "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }";
        assert!(scan("crates/metrics/src/x.rs", imp).is_empty());
    }

    #[test]
    fn safe001_ignores_unwrap_or_family() {
        let src =
            "let a = x.unwrap_or(0); let b = y.unwrap_or_else(f); let c = z.unwrap_or_default();";
        assert!(scan("crates/core/src/x.rs", src).is_empty());
        let hits = scan("crates/core/src/x.rs", "let a = x.unwrap();");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "SAFE001");
    }

    #[test]
    fn safe002_exempts_saturating_and_float_paths() {
        let bad = "SimTime(millis * 1_000)";
        let hits = scan("crates/sim/src/time.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "SAFE002");
        for good in [
            "SimTime(millis.saturating_mul(1_000))",
            "SimDuration((secs * 1e6).round() as u64)",
            "SimDuration(self.0.saturating_sub(rhs.0))",
        ] {
            assert!(scan("crates/sim/src/time.rs", good).is_empty(), "{good}");
        }
    }

    #[test]
    fn safe003_flags_unclamped_capacity_in_codec_files() {
        let bad = "let v: Vec<u32> = Vec::with_capacity(count);";
        let hits = scan("crates/pubsub/src/codec.rs", bad);
        assert_eq!(hits.iter().filter(|d| d.rule == "SAFE003").count(), 1);
        let bad_reserve = "out.reserve(len * 4);";
        let hits = scan("crates/pubsub/src/codec.rs", bad_reserve);
        assert_eq!(hits.iter().filter(|d| d.rule == "SAFE003").count(), 1);
    }

    #[test]
    fn safe003_exempts_clamped_and_literal_capacities() {
        for good in [
            "let v = Vec::with_capacity(count.min(buf.remaining() / 4));",
            "let v: Vec<u8> = Vec::with_capacity(64);",
            "fn reserve(n: usize) {}", // a definition, not a call site
        ] {
            assert!(
                scan("crates/pubsub/src/codec.rs", good).is_empty(),
                "{good}"
            );
        }
    }

    #[test]
    fn safe003_is_scoped_to_codec_files_in_sim_facing_crates() {
        let bad = "let v: Vec<u32> = Vec::with_capacity(count);";
        // Same crate, non-codec file: quiet.
        assert!(scan("crates/pubsub/src/packet.rs", bad).is_empty());
        // Codec file outside the sim-facing crates: quiet.
        assert!(scan("crates/experiments/src/codec.rs", bad).is_empty());
    }

    #[test]
    fn line_and_col_are_one_based_and_accurate() {
        let src = "fn f() {}\nlet m = HashMap::new();\n";
        let hits = scan("crates/net/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].line, hits[0].col), (2, 9));
        assert_eq!(hits[0].snippet, "let m = HashMap::new();");
    }
}
