// Fixture: DET001 must stay quiet — ordered containers, plus HashMap
// mentions in comments, strings and test modules only.
use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: BTreeSet<u32> = BTreeSet::new(); // a HashSet would be wrong
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    let _doc = "HashMap is banned here";
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    seen.len() + counts.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash() {
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
