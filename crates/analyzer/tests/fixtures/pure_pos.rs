//! Sans-io bait: ambient I/O, wall clocks, and shared-state sync — all
//! forbidden inside the deterministic simulation core.

use std::net::TcpStream;
use std::sync::Mutex;

pub fn impure() {
    let _ = std::fs::read_to_string("/etc/hosts");
    let _ = std::thread::spawn(|| 7);
    let _t = std::time::Instant::now();
    let _s: Option<std::time::SystemTime> = None;
    let _m: Mutex<u32> = Mutex::new(0);
    let _out = std::io::stdout();
    let _conn: Option<TcpStream> = None;
    std::process::abort();
}
