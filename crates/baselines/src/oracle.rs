//! The ORACLE baseline: the performance upper bound.
//!
//! §IV-B: "routing tree with the shortest-delay path avoiding any failures
//! since the condition of entire network is known". At every hop the oracle
//! recomputes the shortest-delay path to each destination over the links
//! that are up *right now* — something no real broker can do, which is why
//! it upper-bounds every implementable strategy. Random packet loss (`Pl`)
//! is the only thing it cannot foresee; a lost transmission is retried with
//! a fresh path after the ACK timeout.

use std::collections::BTreeMap;

use dcrd_net::failure::FailureModel;
use dcrd_net::paths::{dijkstra_filtered, Metric, ShortestPaths};
use dcrd_net::{NodeId, Topology};
use dcrd_pubsub::packet::Packet;
use dcrd_pubsub::strategy::SetupContext;
use dcrd_sim::SimTime;

use crate::common::{FailureResponse, HopByHopStrategy, NextHopPolicy};

/// Oracle next-hop policy: per-hop shortest-delay routing over currently
/// healthy links, with global knowledge of the failure schedule.
#[derive(Debug)]
pub struct OraclePolicy {
    topology: Option<Topology>,
    failure: Option<FailureModel>,
    /// Cache of shortest-path trees for the current failure epoch.
    cache: BTreeMap<NodeId, ShortestPaths>,
    cache_epoch: u64,
    retry_budget: u32,
}

impl OraclePolicy {
    /// Creates the oracle policy with the default retry budget.
    #[must_use]
    pub fn new() -> Self {
        OraclePolicy {
            topology: None,
            failure: None,
            cache: BTreeMap::new(),
            cache_epoch: u64::MAX,
            retry_budget: 16,
        }
    }

    fn paths_from(&mut self, node: NodeId, now: SimTime) -> &ShortestPaths {
        let topo = self.topology.as_ref().expect("setup ran");
        let failure = self.failure.as_ref().expect("setup ran");
        let epoch = failure.link_model().epoch_index(now);
        if epoch != self.cache_epoch {
            self.cache.clear();
            self.cache_epoch = epoch;
        }
        self.cache.entry(node).or_insert_with(|| {
            dijkstra_filtered(topo, node, Metric::Delay, |e| {
                !failure.edge_blocked(topo, e, now)
            })
        })
    }
}

impl Default for OraclePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl NextHopPolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        "ORACLE"
    }

    fn setup(&mut self, ctx: &SetupContext<'_>) {
        self.topology = Some(ctx.topology.clone());
        self.failure = Some(*ctx.failure_oracle);
        self.cache.clear();
        self.cache_epoch = u64::MAX;
    }

    fn next_hop(
        &mut self,
        node: NodeId,
        _packet: &Packet,
        dest: NodeId,
        now: SimTime,
    ) -> Option<NodeId> {
        let sp = self.paths_from(node, now);
        sp.path_to(dest).map(|p| p.nodes()[1])
    }

    fn on_failure(&self) -> FailureResponse {
        FailureResponse::Retry {
            budget: self.retry_budget,
        }
    }
}

/// The paper's ORACLE baseline strategy.
pub type OracleStrategy = HopByHopStrategy<OraclePolicy>;

/// Creates the ORACLE baseline.
#[must_use]
pub fn oracle() -> OracleStrategy {
    HopByHopStrategy::new(OraclePolicy::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::failure::LinkFailureModel;
    use dcrd_net::loss::LossModel;
    use dcrd_net::topology::{full_mesh, ring, DelayRange};
    use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig};
    use dcrd_pubsub::topic::{Subscription, TopicId};
    use dcrd_pubsub::workload::{TopicSpec, Workload, WorkloadConfig};
    use dcrd_sim::rng::rng_for;
    use dcrd_sim::SimDuration;

    #[test]
    fn oracle_delivers_everything_in_failed_mesh() {
        let mut rng = rng_for(1, "oracle");
        let topo = full_mesh(12, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.1, 13));
        let rt = OverlayRuntime::new(
            &topo,
            &wl,
            failure,
            LossModel::new(1e-4),
            RuntimeConfig::paper(SimDuration::from_secs(60), 1),
        );
        let log = rt.run(&mut oracle());
        // A 12-node mesh at pf=0.1 essentially never partitions.
        assert!(
            log.delivery_ratio() > 0.999,
            "oracle delivery {}",
            log.delivery_ratio()
        );
        assert!(
            log.qos_delivery_ratio() > 0.99,
            "oracle QoS {}",
            log.qos_delivery_ratio()
        );
        // Knowing the failures, the oracle never transmits into a failed
        // link; only the 1e-4 random loss can block it.
        assert_eq!(log.sends_blocked, 0, "oracle must never hit a failed link");
    }

    #[test]
    fn oracle_routes_around_the_ring() {
        // Ring of 5 with pf=0.3: the oracle finds the surviving direction
        // whenever one exists.
        let topo = ring(5, SimDuration::from_millis(10));
        let wl = Workload::from_topics(vec![TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(topo.node(2), SimDuration::from_secs(1))],
            burst: None,
        }]);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.3, 5));
        let rt = OverlayRuntime::new(
            &topo,
            &wl,
            failure,
            LossModel::new(0.0),
            RuntimeConfig::paper(SimDuration::from_secs(200), 2),
        );
        let log = rt.run(&mut oracle());
        // P(clockwise up) = 0.49, P(counter up) = 0.343;
        // P(either) ≈ 0.665. The oracle must hit that ceiling exactly.
        let ratio = log.delivery_ratio();
        assert!(
            (0.55..=0.8).contains(&ratio),
            "oracle on ring delivered {ratio}, expected ≈0.665"
        );
        assert_eq!(log.sends_blocked, 0);
    }

    #[test]
    fn oracle_gives_up_when_partitioned() {
        let topo = ring(3, SimDuration::from_millis(10));
        let wl = Workload::from_topics(vec![TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(topo.node(1), SimDuration::from_secs(1))],
            burst: None,
        }]);
        let failure = FailureModel::links_only(LinkFailureModel::new(1.0, 1));
        let rt = OverlayRuntime::new(
            &topo,
            &wl,
            failure,
            LossModel::new(0.0),
            RuntimeConfig::paper(SimDuration::from_secs(10), 3),
        );
        let log = rt.run(&mut oracle());
        assert_eq!(log.delivery_ratio(), 0.0);
        assert_eq!(log.data_sends, 0, "no path ⇒ oracle sends nothing");
    }

    #[test]
    fn policy_accessors() {
        let p = OraclePolicy::default();
        assert_eq!(p.name(), "ORACLE");
        assert!(matches!(p.on_failure(), FailureResponse::Retry { .. }));
    }
}
