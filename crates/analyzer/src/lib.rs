//! `dcrd-analyzer`: workspace-wide determinism & safety lints.
//!
//! DCRD's evaluation rests on a deterministic discrete-event simulator:
//! identical seeds must yield identical traces, or the chaos/recovery
//! acceptance tests and the paper's delay/reliability comparisons are
//! unreproducible. This crate statically enforces the invariants the
//! simulator's determinism (and the sweeps' crash-resistance) depend on:
//!
//! | rule | what it forbids |
//! |------|-----------------|
//! | `DET001` | `HashMap`/`HashSet` in sim-facing crates |
//! | `DET002` | ambient clocks/RNGs outside `dcrd_sim::rng` |
//! | `DET003` | `partial_cmp` inside sort comparators |
//! | `SAFE001` | `unwrap()`/`expect()` in hot-path crates |
//! | `SAFE002` | unchecked arithmetic in `SimTime` construction and counters |
//! | `SAFE003` | unclamped capacity hints in wire-codec files |
//! | `PURE001` | ambient IO/threads/async runtimes in the sans-io crates |
//! | `PURE002` | wall clocks and `std::io` in the sans-io crates |
//! | `PURE003` | `std::sync` shared-mutation primitives (Arc is allowed) |
//! | `PANIC001` | panic sources reachable from the hot-path entry points |
//! | `LAYER001` | crate dependencies against the `[layers]` order |
//!
//! Violations are reported as `file:line:col` diagnostics. Legacy debt is
//! suppressed through the checked-in `analyzer.toml` baseline so new
//! violations fail CI (`--deny-new`) while the debt stays visible.
//!
//! The v1 rules are per-file lexical scans. The v2 passes (`PURE`,
//! `PANIC`, `LAYER`) ride on a workspace symbol graph: a lightweight item
//! parser ([`items`]) extracts functions, impl owners, `use` declarations
//! and modules from the masked source, and [`graph`] resolves a
//! deliberately over-approximate intra-workspace call graph on top
//! (see `DESIGN.md` §15 for semantics and known gaps).
//!
//! The scanner is a hand-rolled lexer rather than a `syn` walk so the
//! crate has **zero dependencies** — it must build before anything else,
//! including in offline bootstrap environments.

pub mod config;
pub mod graph;
pub mod items;
pub mod json;
pub mod mask;
pub mod rules;
pub mod rules_v2;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::{AllowEntry, AnalyzerConfig, Baseline};
pub use rules::{Diagnostic, RuleInfo, RULES};

/// Directory names never scanned: build output, scratch space, VCS, and
/// test-only trees (rules target non-test code; fixtures are lint bait).
const SKIP_DIRS: &[&str] = &[
    ".git", ".scratch", "target", "results", "tests", "benches", "examples", "fixtures",
];

/// Scans one file's source as if it lived at workspace-relative `path`.
/// This is the unit the fixture tests drive directly.
#[must_use]
pub fn analyze_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let masked = mask::strip_test_regions(&mask::mask_source(source));
    rules::scan_file(path, source, &masked)
}

/// Loads the root `analyzer.toml` (all sections); a missing file yields
/// the default (empty) config.
pub fn load_config(root: &Path) -> io::Result<AnalyzerConfig> {
    let path = root.join("analyzer.toml");
    if !path.exists() {
        return Ok(AnalyzerConfig::default());
    }
    let text = fs::read_to_string(&path)?;
    AnalyzerConfig::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("analyzer.toml: {e}")))
}

/// Walks the workspace under `root` and runs every pass: the per-file
/// lexical rules over each non-test `.rs` file, then the graph passes
/// (`PANIC001` over the symbol graph, `LAYER001` over the manifests).
/// Diagnostics come back sorted by `(path, line, col, rule)`.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let cfg = load_config(root)?;
    let mut files: Vec<PathBuf> = Vec::new();
    collect_files(root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    // path → (original, masked) for every scanned `.rs` file; the graph
    // passes reuse the masking work done for the lexical rules.
    let mut texts: BTreeMap<String, (String, String)> = BTreeMap::new();
    let mut manifests: BTreeMap<String, String> = BTreeMap::new();
    for file in files {
        let Ok(source) = fs::read_to_string(&file) else {
            continue; // Non-UTF-8 file: nothing lexical to scan.
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.ends_with("Cargo.toml") {
            manifests.insert(rel, source);
            continue;
        }
        let masked = mask::strip_test_regions(&mask::mask_source(&source));
        let mut file_diags = rules::scan_file(&rel, &source, &masked);
        if cfg.pure_exempt.iter().any(|p| rel.starts_with(p.as_str())) {
            file_diags.retain(|d| !d.rule.starts_with("PURE"));
        }
        diags.extend(file_diags);
        texts.insert(rel, (source, masked));
    }

    let masked_files: Vec<(String, String)> = texts
        .iter()
        .map(|(p, (_, m))| (p.clone(), m.clone()))
        .collect();
    let crate_deps: BTreeMap<String, BTreeSet<String>> = manifests
        .iter()
        .filter_map(|(path, toml)| {
            let krate = if let Some(rest) = path.strip_prefix("crates/") {
                rest.split('/').next()?.to_string()
            } else if path == "Cargo.toml" {
                "dcrd".to_string()
            } else {
                return None;
            };
            Some((krate, graph::parse_cargo_deps(toml)))
        })
        .collect();
    let symbol_graph = graph::SymbolGraph::build(&masked_files, crate_deps);
    diags.extend(rules_v2::panic_reachability(&symbol_graph, &texts));
    diags.extend(rules_v2::layering(&manifests, &cfg));

    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(diags)
}

/// Collects the `.rs` sources and `Cargo.toml` manifests the passes need.
fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_files(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// Splits diagnostics into `(new, suppressed)` against the baseline and
/// reports baseline entries that no longer match anything (stale debt
/// that should be deleted).
#[must_use]
pub fn partition(
    diags: Vec<Diagnostic>,
    baseline: &Baseline,
) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<AllowEntry>) {
    let mut fresh = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; baseline.allows.len()];
    for d in diags {
        match baseline.allows.iter().position(|a| a.matches(&d)) {
            Some(i) => {
                used[i] = true;
                suppressed.push(d);
            }
            None => fresh.push(d),
        }
    }
    let unused = baseline
        .allows
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(a, _)| a.clone())
        .collect();
    (fresh, suppressed, unused)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_source_ties_mask_and_rules_together() {
        let src = "use std::collections::HashMap; // HashSet in a comment\n";
        let diags = analyze_source("crates/pubsub/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "DET001");
        assert_eq!(diags[0].path, "crates/pubsub/src/x.rs");
    }

    #[test]
    fn partition_tracks_used_and_stale_allows() {
        let diags = analyze_source("crates/core/src/x.rs", "let v = o.unwrap();\n");
        let baseline = Baseline::parse(
            "[[allow]]\nrule = \"SAFE001\"\npath = \"crates/core/src/x.rs\"\ncontains = \"o.unwrap()\"\nreason = \"r\"\n\n[[allow]]\nrule = \"DET001\"\npath = \"crates/core/src/gone.rs\"\ncontains = \"HashMap\"\nreason = \"r\"\n",
        )
        .expect("parses");
        let (fresh, suppressed, unused) = partition(diags, &baseline);
        assert!(fresh.is_empty());
        assert_eq!(suppressed.len(), 1);
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].path, "crates/core/src/gone.rs");
    }
}
