//! Seeded event-script fuzzing of the full router/runtime stack.
//!
//! A *script* here is an arbitrary-but-valid scenario: a random topology,
//! workload (possibly Zipf-skewed, possibly with a flash-crowd burst,
//! possibly with subscriber churn), link loss and failure epochs, chaos
//! (crash-restarts, gray links, broker membership churn) and broker
//! overload (bounded service queues with either shed policy). Running it
//! end-to-end through [`OverlayRuntime`] exercises every event kind the
//! router reacts to — publishes, arrivals, hop-by-hop ACKs and their
//! timeouts, NACK recovery sweeps, duplicate and stale copies raced
//! through lossy links, and membership deltas — in adversarial
//! combinations no hand-written scenario enumerates.
//!
//! The oracle per script:
//!
//! * **no panic** anywhere in the stack;
//! * **clean audit**: the full invariant auditor (loop bounds,
//!   transmission budgets, duplicate deliveries, ACK discipline, churn
//!   gates, shed justification) reports zero violations;
//! * **deterministic**: a sampled subset of scripts is re-run and must
//!   reproduce its trace digest byte-for-byte.
//!
//! Partitions are deliberately *outside* the generated envelope (the
//! partition/heal schedules have their own acceptance suite). Every
//! script runs with upstream reroute **on**: the historical reroute
//! ping-pong — two brokers at a sustained-unreachability boundary
//! bouncing a packet until the attempts cap burned out, blowing the
//! auditor's edge budget — is fixed by the router's reroute hysteresis
//! (`upstream_retry_cap` plus the durable bounce ledger), and this
//! corpus is the regression gate that keeps it fixed.

use dcrd_core::{DcrdConfig, DcrdStrategy};
use dcrd_experiments::runner::{
    build_broker_churn, build_chaos, build_topology, build_workload, confine_to_churn,
};
use dcrd_experiments::scenario::{BrokerChurnSpec, CrashSpec, GraySpec, Scenario, ScenarioBuilder};
use dcrd_net::failure::{FailureModel, LinkFailureModel, LinkOutageModel};
use dcrd_net::loss::LossModel;
use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig, ShedPolicy};
use dcrd_pubsub::workload::BurstConfig;
use dcrd_pubsub::{AckTransit, AuditConfig};
use dcrd_sim::rng::{derive_seed_indexed, rng_for_indexed};
use dcrd_sim::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;

/// Tally of one script-fuzz run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScriptFuzzReport {
    /// Scripts generated and run.
    pub scripts: u64,
    /// Messages published across all scripts.
    pub messages: u64,
    /// Data transmissions across all scripts.
    pub sends: u64,
    /// Packets shed by bounded queues across all scripts.
    pub sheds: u64,
    /// Scripts that were re-run for the digest-equality check.
    pub digest_checks: u64,
    /// Scripts that exercised chaos (crashes, gray links or broker churn).
    pub chaotic_scripts: u64,
}

impl fmt::Display for ScriptFuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scripts ({} chaotic): {} messages, {} sends, {} sheds, {} digest re-runs",
            self.scripts,
            self.chaotic_scripts,
            self.messages,
            self.sends,
            self.sheds,
            self.digest_checks
        )
    }
}

/// One generated script: the scenario plus the matching router config.
#[derive(Debug, Clone)]
pub struct Script {
    /// The generated scenario (topology, workload, chaos, overload knobs).
    pub scenario: Scenario,
    /// The router configuration paired with the scenario's hostility.
    pub dcrd: DcrdConfig,
    /// Whether any chaos dimension is active.
    pub chaotic: bool,
}

/// Generates the script at `(seed, index)`. Same pair, same script.
#[must_use]
pub fn generate_script(seed: u64, index: u64) -> Script {
    let mut rng: SmallRng = rng_for_indexed(seed, "script-gen", index);
    let duration_secs = rng.gen_range(6..=10u64);
    // Roughly half the corpus is loss-only (pf = 0); the other half
    // carries link-outage epochs, so sustained unreachability and the
    // reroute hysteresis both stay well sampled.
    let pf = if rng.gen_bool(0.4) {
        0.0
    } else {
        rng.gen_range(0.005..0.06)
    };
    let mut b = ScenarioBuilder::new()
        .seed(derive_seed_indexed(seed, "script-seed", index))
        .duration_secs(duration_secs)
        .repetitions(1)
        .topics(rng.gen_range(1..=3))
        .deadline_factor(rng.gen_range(2.0..5.0))
        .loss_rate(rng.gen_range(0.0..0.05))
        .failure_probability(pf)
        .transmissions(rng.gen_range(1..=2));

    // Topology family.
    b = match rng.gen_range(0..3u32) {
        0 => b.nodes(rng.gen_range(4..=10)).full_mesh(),
        1 => {
            let n = rng.gen_range(6..=10);
            b.nodes(n).degree(3)
        }
        _ => b.geo_tiered(2, rng.gen_range(2..=4)),
    };

    // Adversarial workload extensions.
    if rng.gen_bool(0.3) {
        b = b.zipf_popularity(rng.gen_range(0.8..1.6), 0.9);
    }
    if rng.gen_bool(0.3) {
        let at = duration_secs / 4;
        b = b.flash_crowd(BurstConfig {
            at: SimDuration::from_secs(at),
            len: SimDuration::from_secs((duration_secs / 4).max(1)),
            multiplier: rng.gen_range(2..=4),
        });
    }

    // Broker overload.
    if rng.gen_bool(0.3) {
        let policy = if rng.gen_bool(0.7) {
            ShedPolicy::LeastSlack
        } else {
            ShedPolicy::TailDrop
        };
        b = b
            .service_time(SimDuration::from_millis(rng.gen_range(1..=5)))
            .bounded_queues(rng.gen_range(1..=6), policy);
    }

    // ACK transit model.
    if rng.gen_bool(0.3) {
        b = b.ack_transit(AckTransit::RoundTrip).ack_timeout_factor(2.5);
    }

    // Chaos envelope (no partitions — see module docs).
    let mut chaotic = false;
    let mut churny = false;
    if rng.gen_bool(0.2) {
        b = b.crashes(CrashSpec {
            rate: rng.gen_range(0.005..0.04),
            mean_down_epochs: rng.gen_range(1.0..3.0),
        });
        chaotic = true;
    }
    if rng.gen_bool(0.2) {
        b = b.gray_links(GraySpec {
            fraction: rng.gen_range(0.1..0.3),
            extra_loss: rng.gen_range(0.1..0.4),
            delay_factor: rng.gen_range(1.5..3.0),
        });
        chaotic = true;
    }
    if rng.gen_bool(0.15) {
        b = b.broker_churn(BrokerChurnSpec {
            rate: rng.gen_range(0.1..0.4),
        });
        chaotic = true;
        churny = true;
    }
    let scenario = b.audit(true).build();

    // Pair the router hardening with the script's hostility, exactly as an
    // operator would: churn needs the churn-survivable config, other chaos
    // the chaos-hardened one, and calm runs the paper's defaults. Upstream
    // reroute stays on everywhere — the reroute hysteresis keeps sustained
    // unreachability (crashes, outage epochs, shedding queues) from
    // ping-ponging packets past the auditor's budgets.
    let dcrd = if churny {
        DcrdConfig::churn_hardened()
    } else if chaotic {
        DcrdConfig::chaos_hardened()
    } else {
        DcrdConfig::default()
    };
    Script {
        scenario,
        dcrd,
        chaotic,
    }
}

/// The outcome of one script run, reduced to what the oracles compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptOutcome {
    /// Trace digest (FNV-1a over the full event stream).
    pub digest: u64,
    /// Audit violations found (must be zero).
    pub violations: u64,
    /// Messages published.
    pub messages: u64,
    /// Data sends attempted.
    pub sends: u64,
    /// Packets shed by bounded queues.
    pub sheds: u64,
    /// Human-readable rendering of the first violations, for diagnostics.
    pub violation_details: Vec<String>,
}

/// Runs one script end-to-end with the full auditor and trace capture.
#[must_use]
pub fn run_script(script: &Script) -> ScriptOutcome {
    let scenario = &script.scenario;
    let rep = 0;
    let topo = build_topology(scenario, rep);
    let workload = build_workload(scenario, &topo, rep);
    let broker_churn = build_broker_churn(scenario, &workload, rep);
    let workload = match &broker_churn {
        Some(churn) => confine_to_churn(&workload, churn),
        None => workload,
    };
    let link_seed = derive_seed_indexed(scenario.seed, "failures", u64::from(rep));
    let links = LinkOutageModel::Epoch(LinkFailureModel::new(scenario.pf, link_seed));
    let mut chaos = build_chaos(scenario, rep);
    if let Some(churn) = broker_churn {
        chaos = chaos.with_churn(churn);
    }
    let failure = FailureModel::new(links, None).with_chaos(chaos);
    let loss = LossModel::new(scenario.pl);
    let config = RuntimeConfig {
        duration: scenario.duration,
        seed: derive_seed_indexed(scenario.seed, "runtime", u64::from(rep)),
        ack_transit: scenario.ack_transit,
        processing_time: scenario.service_time,
        queue_limit: scenario.queue_limit,
        shed_policy: scenario.shed_policy,
        capture_trace: true,
        audit: Some(AuditConfig::for_overlay(scenario.nodes, 64)),
        params: dcrd_pubsub::strategy::RunParams {
            m: scenario.m,
            ack_timeout_factor: scenario.ack_timeout_factor,
            ..Default::default()
        },
        ..RuntimeConfig::paper(scenario.duration, 0)
    };
    let runtime = OverlayRuntime::new(&topo, &workload, failure, loss, config);
    let mut strategy = DcrdStrategy::new(script.dcrd);
    let log = runtime.run(&mut strategy);
    let audit = log.audit.as_ref().expect("auditor was configured");
    ScriptOutcome {
        digest: log.trace.as_ref().map_or(0, |t| t.digest()),
        violations: audit.total_violations,
        messages: log.messages_published,
        sends: log.data_sends,
        sheds: log.sheds,
        violation_details: audit
            .violations
            .iter()
            .take(4)
            .map(ToString::to_string)
            .collect(),
    }
}

/// Generates and runs the single script at `(seed, index)`, panicking on
/// any audit violation — the `cargo fuzz` entry point
/// (`fuzz/fuzz_targets/event_scripts.rs`), which derives the pair from
/// the engine-supplied bytes.
pub fn check_script(seed: u64, index: u64) -> ScriptOutcome {
    let script = generate_script(seed, index);
    let outcome = run_script(&script);
    assert!(
        outcome.violations == 0,
        "script audit failure at seed={seed} index={index}: \
         {} violation(s): {:?}\nscenario: {:?}",
        outcome.violations,
        outcome.violation_details,
        script.scenario
    );
    outcome
}

/// Runs `scripts` generated scripts; every `digest_every`-th script is run
/// twice and must reproduce its digest.
///
/// # Panics
///
/// Panics on the first audit violation or digest divergence, naming the
/// `(seed, index)` pair that regenerates the offending script.
#[must_use]
pub fn run_script_fuzz(seed: u64, scripts: u64) -> ScriptFuzzReport {
    let mut report = ScriptFuzzReport::default();
    for i in 0..scripts {
        let script = generate_script(seed, i);
        let outcome = run_script(&script);
        assert!(
            outcome.violations == 0,
            "script-fuzz audit failure at seed={seed} index={i}: \
             {} violation(s): {:?}\nscenario: {:?}",
            outcome.violations,
            outcome.violation_details,
            script.scenario
        );
        if i % 16 == 0 {
            let again = run_script(&script);
            assert!(
                again == outcome,
                "script-fuzz determinism failure at seed={seed} index={i}: \
                 digest {:#018x} != {:#018x}",
                outcome.digest,
                again.digest
            );
            report.digest_checks += 1;
        }
        report.scripts += 1;
        report.messages += outcome.messages;
        report.sends += outcome.sends;
        report.sheds += outcome.sheds;
        report.chaotic_scripts += u64::from(script.chaotic);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: ≥ 1k generated scripts with zero panics, zero
    /// audit violations, and digest-identical sampled re-runs.
    #[test]
    fn router_survives_1k_event_scripts_under_the_auditor() {
        let seed = 1;
        let report = run_script_fuzz(seed, 1_000);
        println!("script-fuzz seed={seed}: {report}");
        assert_eq!(report.scripts, 1_000);
        assert!(report.messages > 1_000, "scripts too quiet: {report}");
        assert!(report.sends > report.messages, "no forwarding: {report}");
        assert!(report.digest_checks >= 62);
        assert!(
            report.chaotic_scripts > 100,
            "chaos envelope under-sampled: {report}"
        );
        assert!(report.sheds > 0, "overload envelope never shed: {report}");
    }

    #[test]
    fn script_generation_is_deterministic() {
        let a = generate_script(5, 17);
        let b = generate_script(5, 17);
        assert_eq!(a.scenario, b.scenario);
        let c = generate_script(5, 18);
        assert_ne!(a.scenario, c.scenario);
    }

    #[test]
    fn script_outcomes_reproduce_from_their_seed_pair() {
        for index in [0u64, 3, 7] {
            let script = generate_script(2, index);
            assert_eq!(run_script(&script), run_script(&script), "index {index}");
        }
    }
}
