//! SWIM failure-detector state machine: refutation, suspect/confirm
//! races, and the determinism gate — any delivery order of the same
//! membership records converges to the same view.

use dcrd::net::membership::{
    GroundTruth, MemberRecord, MemberStatus, MembershipDelta, MembershipView, SwimConfig,
    SwimDetector,
};
use dcrd::net::NodeId;
use proptest::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn status_from(code: u8) -> MemberStatus {
    match code % 4 {
        0 => MemberStatus::Alive,
        1 => MemberStatus::Suspect,
        2 => MemberStatus::Dead,
        _ => MemberStatus::Left,
    }
}

/// A lossless detector: probes only fail when the target is actually
/// down, so the state machine is exercised without false suspicions.
fn lossless(num_nodes: usize) -> SwimDetector {
    SwimDetector::new(
        num_nodes,
        |_| true,
        SwimConfig {
            probe_loss: 0.0,
            ..SwimConfig::default()
        },
    )
}

/// A briefly unreachable broker is suspected, then refutes the suspicion
/// with a bumped incarnation — it never gets confirmed dead.
#[test]
fn false_suspicion_is_refuted_by_incarnation_bump() {
    let mut det = lossless(4);
    let victim = n(2);
    // Epoch 1: the victim misses every probe → suspected.
    let deltas = det.tick(1, |node| {
        if node == victim {
            GroundTruth::Down
        } else {
            GroundTruth::Up
        }
    });
    assert!(
        deltas.is_empty(),
        "suspicion alone is not a delta: {deltas:?}"
    );
    assert_eq!(
        det.view().record(victim).expect("known").status,
        MemberStatus::Suspect
    );
    assert!(det.view().is_present(victim), "suspects stay routable");
    // Epoch 2: it answers again → refutation with a bumped incarnation.
    let deltas = det.tick(2, |_| GroundTruth::Up);
    assert_eq!(
        deltas,
        vec![MembershipDelta::Refute {
            node: victim,
            incarnation: 1,
        }]
    );
    let record = det.view().record(victim).expect("known");
    assert_eq!(record.status, MemberStatus::Alive);
    assert_eq!(record.incarnation, 1, "refutation must bump incarnation");
}

/// A broker down past the suspicion window is confirmed dead; answering
/// probes afterwards re-joins it at a higher incarnation.
#[test]
fn confirm_dead_then_rejoin() {
    let mut det = lossless(4);
    let victim = n(1);
    let truth_down = |node: NodeId| {
        if node == n(1) {
            GroundTruth::Down
        } else {
            GroundTruth::Up
        }
    };
    let mut confirmed_at = None;
    for epoch in 1..=10 {
        let deltas = det.tick(epoch, truth_down);
        if deltas.contains(&MembershipDelta::ConfirmDead { node: victim }) {
            confirmed_at = Some(epoch);
            break;
        }
    }
    let confirmed_at = confirmed_at.expect("suspicion window never expired");
    assert!(
        confirmed_at > 1,
        "confirmation may not precede the suspicion window"
    );
    assert!(!det.view().is_present(victim));
    // It comes back: a Join at a strictly higher incarnation dominates
    // the Dead record in every view.
    let deltas = det.tick(confirmed_at + 1, |_| GroundTruth::Up);
    assert_eq!(deltas, vec![MembershipDelta::Join { node: victim }]);
    let record = det.view().record(victim).expect("known");
    assert_eq!(record.status, MemberStatus::Alive);
    assert!(record.incarnation > 0);
}

/// An announced departure needs no suspicion window: the leave is
/// reported the epoch it happens, and the broker is immediately absent.
#[test]
fn graceful_leave_skips_suspicion() {
    let mut det = lossless(3);
    let deltas = det.tick(1, |node| {
        if node == n(0) {
            GroundTruth::Departed
        } else {
            GroundTruth::Up
        }
    });
    assert_eq!(deltas, vec![MembershipDelta::Leave { node: n(0) }]);
    assert!(!det.view().is_present(n(0)));
    assert!(det.view().absent_set().contains(n(0)));
}

/// The suspect/confirm race: one peer hears "suspect", another hears
/// "confirmed dead" for the same incarnation, and they exchange records
/// in opposite orders — the lattice resolves both to Dead.
#[test]
fn suspect_confirm_race_converges() {
    let node = n(3);
    let suspect = MemberRecord {
        incarnation: 2,
        status: MemberStatus::Suspect,
    };
    let dead = MemberRecord {
        incarnation: 2,
        status: MemberStatus::Dead,
    };
    let mut a = MembershipView::new();
    a.apply(node, suspect);
    a.apply(node, dead);
    let mut b = MembershipView::new();
    b.apply(node, dead);
    assert!(!b.apply(node, suspect), "stale suspicion must not regress");
    assert_eq!(a, b);
    assert_eq!(a.record(node).expect("known").status, MemberStatus::Dead);
    // A refutation at a higher incarnation still beats the death record.
    let refute = MemberRecord {
        incarnation: 3,
        status: MemberStatus::Alive,
    };
    assert!(a.apply(node, refute));
    assert!(a.is_present(node));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Determinism gate: applying any record set in delivery order and in
    /// reverse (with duplicates) converges both views to the same state,
    /// and merging is idempotent.
    #[test]
    fn any_record_order_converges_to_the_same_view(
        records in proptest::collection::vec((0u32..8, 0u64..4, 0u8..4), 1..40),
    ) {
        let mut forward = MembershipView::new();
        let mut backward = MembershipView::new();
        for &(node, inc, code) in &records {
            forward.apply(n(node), MemberRecord { incarnation: inc, status: status_from(code) });
        }
        for &(node, inc, code) in records.iter().rev() {
            backward.apply(n(node), MemberRecord { incarnation: inc, status: status_from(code) });
        }
        prop_assert_eq!(&forward, &backward);
        // Re-merging everything a second time changes nothing.
        let mut twice = forward.clone();
        twice.merge(&backward);
        prop_assert_eq!(&twice, &forward);
        prop_assert_eq!(forward.absent_set(), backward.absent_set());
    }

    /// Two detectors with the same seed observing the same ground truth
    /// emit identical delta streams and end in identical views.
    #[test]
    fn same_seed_detectors_agree(
        seed in 0u64..1_000_000,
        down_mask in 0u32..256,
        down_from in 1u64..6,
    ) {
        let config = SwimConfig { seed, ..SwimConfig::default() };
        let truth = |node: NodeId, epoch: u64| {
            if epoch >= down_from && down_mask & (1 << node.index()) != 0 {
                GroundTruth::Down
            } else {
                GroundTruth::Up
            }
        };
        let mut a = SwimDetector::new(8, |_| true, config);
        let mut b = SwimDetector::new(8, |_| true, config);
        for epoch in 1..=12 {
            let da = a.tick(epoch, |node| truth(node, epoch));
            let db = b.tick(epoch, |node| truth(node, epoch));
            prop_assert_eq!(da, db, "deltas diverged at epoch {}", epoch);
        }
        prop_assert_eq!(a.view(), b.view());
    }
}
