//! Binary wire format for overlay packets.
//!
//! The simulator passes [`Packet`]s by value, but a deployment puts them on
//! UDP sockets; this codec defines that wire format. The layout is a
//! straightforward length-prefixed little-endian encoding:
//!
//! ```text
//! magic  u8 = 0xDC   version u8 = 2
//! id u64   topic u32   publisher u32   published_at_us u64   tag u64
//! seq u64
//! kind u8 (0 = data; 1 = nack: subscriber u32, missing_count u16, seq u64 ×n)
//! dest_count u16, dest u32 ×n
//! path_len   u16, node u32 ×n
//! route_flag u8 (0/1) [route_len u16, node u32 ×n]
//! payload_len u32, payload bytes
//! ```
//!
//! Decoding validates the header and every length, so a truncated or
//! corrupted datagram produces a typed [`DecodePacketError`] instead of a
//! garbage packet.
//!
//! ## Hostile-input discipline
//!
//! Every length prefix on the wire is attacker-controlled, so the decoder
//! never trusts one when sizing an allocation. Each length-prefixed read
//! follows the same two-step pattern:
//!
//! 1. validate the advertised element count against the bytes actually
//!    remaining ([`need`], with `saturating_mul` so a hostile count cannot
//!    overflow the byte math), then
//! 2. clamp the capacity hint to `count.min(remaining / elem_size)` anyway,
//!    so even if a future edit dropped the guard the allocation could never
//!    exceed the datagram length.
//!
//! A 10-byte datagram claiming `2^32` nodes therefore yields
//! `Truncated`, not a multi-gigabyte `Vec`. The analyzer rule `SAFE003`
//! enforces the clamp lexically: any `with_capacity`/`reserve` in a codec
//! file whose argument is not visibly clamped with `.min(..)` is flagged.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dcrd_net::NodeId;
use dcrd_sim::SimTime;
use std::fmt;

use crate::packet::{Packet, PacketBody, PacketId, PacketKind};
use crate::topic::TopicId;

const MAGIC: u8 = 0xDC;
const VERSION: u8 = 2;

/// Why a datagram failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodePacketError {
    /// The buffer ended before the advertised content.
    Truncated {
        /// Bytes still needed when the buffer ran out.
        needed: usize,
    },
    /// The first byte was not the DCRD magic.
    BadMagic(u8),
    /// Unsupported format version.
    BadVersion(u8),
    /// Bytes remained after the advertised content.
    TrailingBytes(usize),
    /// Unknown packet-kind discriminant.
    BadKind(u8),
    /// Route-presence flag other than 0 or 1. Rejected rather than
    /// interpreted so that every accepted datagram re-encodes to exactly
    /// the bytes it arrived as (canonical form — found by the byte
    /// fuzzer's round-trip oracle).
    BadRouteFlag(u8),
}

impl fmt::Display for DecodePacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodePacketError::Truncated { needed } => {
                write!(f, "packet truncated: {needed} more bytes needed")
            }
            DecodePacketError::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            DecodePacketError::BadVersion(v) => write!(f, "unsupported packet version {v}"),
            DecodePacketError::TrailingBytes(n) => write!(f, "{n} trailing bytes after packet"),
            DecodePacketError::BadKind(k) => write!(f, "unknown packet kind {k}"),
            DecodePacketError::BadRouteFlag(b) => write!(f, "bad route-presence flag {b}"),
        }
    }
}

impl std::error::Error for DecodePacketError {}

/// Largest sensible single-allocation hint while encoding. The buffer still
/// grows to fit genuinely large packets; the clamp only stops a corrupted
/// in-memory length from turning the *hint* into a giant eager allocation.
const MAX_ENCODE_HINT: usize = 1 << 20;

/// Encodes `packet` into a fresh buffer.
///
/// # Panics
///
/// Panics (debug builds) if a list field exceeds the wire format's `u16`
/// count range; release builds would otherwise silently truncate the count.
#[must_use]
pub fn encode_packet(packet: &Packet) -> Bytes {
    debug_assert!(packet.destinations.len() <= u16::MAX as usize);
    debug_assert!(packet.path.len() <= u16::MAX as usize);
    if let PacketKind::Nack { missing, .. } = &packet.kind {
        debug_assert!(missing.len() <= u16::MAX as usize);
    }
    if let Some(route) = &packet.route {
        debug_assert!(route.len() <= u16::MAX as usize);
    }
    let kind_len = match &packet.kind {
        PacketKind::Data => 0,
        PacketKind::Nack { missing, .. } => 6 + 8 * missing.len(),
    };
    let hint = 49
        + kind_len
        + 4 * (packet.destinations.len() + packet.path.len())
        + packet.route.as_ref().map_or(0, |r| 2 + 4 * r.len())
        + packet.payload.len();
    let mut buf = BytesMut::with_capacity(hint.min(MAX_ENCODE_HINT));
    buf.put_u8(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(packet.id.raw());
    buf.put_u32_le(packet.topic.index() as u32);
    buf.put_u32_le(packet.publisher.index() as u32);
    buf.put_u64_le(packet.published_at.as_micros());
    buf.put_u64_le(packet.tag);
    buf.put_u64_le(packet.seq);
    match &packet.kind {
        PacketKind::Data => buf.put_u8(0),
        PacketKind::Nack {
            subscriber,
            missing,
        } => {
            buf.put_u8(1);
            buf.put_u32_le(subscriber.index() as u32);
            buf.put_u16_le(missing.len() as u16);
            for &s in missing {
                buf.put_u64_le(s);
            }
        }
    }
    buf.put_u16_le(packet.destinations.len() as u16);
    for d in &packet.destinations {
        buf.put_u32_le(d.index() as u32);
    }
    buf.put_u16_le(packet.path.len() as u16);
    for n in &packet.path {
        buf.put_u32_le(n.index() as u32);
    }
    match &packet.route {
        Some(route) => {
            buf.put_u8(1);
            buf.put_u16_le(route.len() as u16);
            for n in route {
                buf.put_u32_le(n.index() as u32);
            }
        }
        None => buf.put_u8(0),
    }
    buf.put_u32_le(packet.payload.len() as u32);
    buf.put_slice(&packet.payload);
    buf.freeze()
}

fn need(buf: &impl Buf, n: usize) -> Result<(), DecodePacketError> {
    if buf.remaining() < n {
        Err(DecodePacketError::Truncated {
            needed: n - buf.remaining(),
        })
    } else {
        Ok(())
    }
}

/// Reads a length-prefixed node list whose advertised `count` came off the
/// wire. The count is validated against the remaining bytes *before* any
/// allocation, and the capacity hint is additionally clamped by the buffer
/// length so the guard and the clamp are each independently sufficient.
fn read_nodes(buf: &mut impl Buf, count: usize) -> Result<Vec<NodeId>, DecodePacketError> {
    need(buf, count.saturating_mul(4))?;
    let mut nodes = Vec::with_capacity(count.min(buf.remaining() / 4));
    for _ in 0..count {
        nodes.push(NodeId::new(buf.get_u32_le()));
    }
    Ok(nodes)
}

/// Reads a length-prefixed `u64` list (NACK missing-sequence numbers) under
/// the same validate-then-clamp discipline as [`read_nodes`].
fn read_seqs(buf: &mut impl Buf, count: usize) -> Result<Vec<u64>, DecodePacketError> {
    need(buf, count.saturating_mul(8))?;
    let mut seqs = Vec::with_capacity(count.min(buf.remaining() / 8));
    for _ in 0..count {
        seqs.push(buf.get_u64_le());
    }
    Ok(seqs)
}

/// Decodes one packet from `data`, requiring the buffer to contain exactly
/// one packet.
///
/// # Errors
///
/// Returns a [`DecodePacketError`] on bad magic/version, truncation, or
/// trailing bytes.
pub fn decode_packet(data: &[u8]) -> Result<Packet, DecodePacketError> {
    let mut buf = data;
    need(&buf, 2)?;
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(DecodePacketError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodePacketError::BadVersion(version));
    }
    need(&buf, 8 + 4 + 4 + 8 + 8 + 8 + 1)?;
    let id = PacketId::new(buf.get_u64_le());
    let topic = TopicId::new(buf.get_u32_le());
    let publisher = NodeId::new(buf.get_u32_le());
    let published_at = SimTime::from_micros(buf.get_u64_le());
    let tag = buf.get_u64_le();
    let seq = buf.get_u64_le();
    let kind = match buf.get_u8() {
        0 => PacketKind::Data,
        1 => {
            need(&buf, 4 + 2)?;
            let subscriber = NodeId::new(buf.get_u32_le());
            let count = buf.get_u16_le() as usize;
            let missing = read_seqs(&mut buf, count)?;
            PacketKind::Nack {
                subscriber,
                missing,
            }
        }
        k => return Err(DecodePacketError::BadKind(k)),
    };
    need(&buf, 2)?;
    let dest_count = buf.get_u16_le() as usize;
    let destinations = read_nodes(&mut buf, dest_count)?;
    need(&buf, 2)?;
    let path_len = buf.get_u16_le() as usize;
    let path = read_nodes(&mut buf, path_len)?;
    need(&buf, 1)?;
    let route = match buf.get_u8() {
        0 => None,
        b if b != 1 => return Err(DecodePacketError::BadRouteFlag(b)),
        _ => {
            need(&buf, 2)?;
            let len = buf.get_u16_le() as usize;
            Some(read_nodes(&mut buf, len)?)
        }
    };
    need(&buf, 4)?;
    let payload_len = buf.get_u32_le() as usize;
    need(&buf, payload_len)?;
    let payload = Bytes::copy_from_slice(&buf[..payload_len]);
    buf.advance(payload_len);
    if buf.has_remaining() {
        return Err(DecodePacketError::TrailingBytes(buf.remaining()));
    }
    Ok(Packet::from_body(
        PacketBody::new(id, topic, publisher, published_at, seq, payload),
        kind,
        destinations,
        path.into(),
        route,
        tag,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_packet() -> Packet {
        Packet::from_body(
            PacketBody::new(
                PacketId::new(42),
                TopicId::new(3),
                NodeId::new(7),
                SimTime::from_millis(1234),
                11,
                Bytes::from_static(b"position report"),
            ),
            PacketKind::Data,
            vec![NodeId::new(1), NodeId::new(2)],
            vec![NodeId::new(7), NodeId::new(5)].into(),
            Some(vec![NodeId::new(7), NodeId::new(5), NodeId::new(1)]),
            99,
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let p = sample_packet();
        let encoded = encode_packet(&p);
        let decoded = decode_packet(&encoded).expect("valid encoding");
        assert_eq!(decoded, p);
    }

    #[test]
    fn round_trip_minimal_packet() {
        let p = Packet::new(
            PacketId::new(0),
            TopicId::new(0),
            NodeId::new(0),
            SimTime::ZERO,
            vec![],
        );
        let decoded = decode_packet(&encode_packet(&p)).expect("valid");
        assert_eq!(decoded, p);
        assert!(decoded.route.is_none());
        assert!(decoded.payload.is_empty());
    }

    #[test]
    fn round_trip_nack_packet() {
        let n = Packet::nack(
            PacketId::new(1 << 63),
            TopicId::new(4),
            NodeId::new(2),
            SimTime::from_millis(77),
            NodeId::new(9),
            vec![0, 4, 1000],
        );
        let decoded = decode_packet(&encode_packet(&n)).expect("valid");
        assert_eq!(decoded, n);
        assert!(decoded.is_nack());
    }

    #[test]
    fn bad_kind_rejected() {
        let bytes = encode_packet(&sample_packet()).to_vec();
        // The kind byte sits right after the fixed header (2 + 8+4+4+8+8+8).
        let mut bad = bytes;
        bad[42] = 7;
        assert_eq!(decode_packet(&bad), Err(DecodePacketError::BadKind(7)));
    }

    #[test]
    fn non_canonical_route_flag_rejected() {
        let bytes = encode_packet(&sample_packet()).to_vec();
        // Data kind, 2 dests, 2 path hops: the route flag sits at
        // 43 + (2 + 8) + (2 + 8) = 63.
        assert_eq!(bytes[63], 1);
        let mut bad = bytes;
        bad[63] = 0xff;
        assert_eq!(
            decode_packet(&bad),
            Err(DecodePacketError::BadRouteFlag(0xff))
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_packet(&sample_packet()).to_vec();
        bytes[0] = 0xAB;
        assert_eq!(
            decode_packet(&bytes),
            Err(DecodePacketError::BadMagic(0xAB))
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_packet(&sample_packet()).to_vec();
        bytes[1] = 9;
        assert_eq!(decode_packet(&bytes), Err(DecodePacketError::BadVersion(9)));
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_packet(&sample_packet());
        for cut in 0..bytes.len() {
            let err = decode_packet(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(err, DecodePacketError::Truncated { .. }),
                "cut at {cut} produced {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_packet(&sample_packet()).to_vec();
        bytes.push(0);
        assert_eq!(
            decode_packet(&bytes),
            Err(DecodePacketError::TrailingBytes(1))
        );
    }

    /// The 42-byte fixed header (magic, version, id, topic, publisher,
    /// published_at, tag, seq) shared by the hostile-length tests below.
    fn fixed_header() -> BytesMut {
        let mut b = BytesMut::new();
        b.put_u8(MAGIC);
        b.put_u8(VERSION);
        b.put_u64_le(1); // id
        b.put_u32_le(0); // topic
        b.put_u32_le(0); // publisher
        b.put_u64_le(0); // published_at
        b.put_u64_le(0); // tag
        b.put_u64_le(0); // seq
        b
    }

    #[test]
    fn tiny_buffer_claiming_max_nack_count_is_rejected() {
        // A 49-byte datagram advertising 65535 missing-sequence entries
        // (524 KiB of content) must fail with `Truncated`, not allocate.
        let mut b = fixed_header();
        b.put_u8(1); // kind = NACK
        b.put_u32_le(3); // subscriber
        b.put_u16_le(u16::MAX); // claimed missing count, no entries follow
        assert_eq!(
            decode_packet(&b),
            Err(DecodePacketError::Truncated {
                needed: 8 * u16::MAX as usize
            })
        );
    }

    #[test]
    fn tiny_buffer_claiming_max_dest_count_is_rejected() {
        let mut b = fixed_header();
        b.put_u8(0); // kind = data
        b.put_u16_le(u16::MAX); // claimed destination count
        b.put_u32_le(7); // one lonely destination actually present
        assert_eq!(
            decode_packet(&b),
            Err(DecodePacketError::Truncated {
                needed: 4 * u16::MAX as usize - 4
            })
        );
    }

    #[test]
    fn tiny_buffer_claiming_four_gigabyte_payload_is_rejected() {
        // Overwrite a minimal packet's trailing payload length with
        // u32::MAX: the decoder must report the missing ~4 GiB instead of
        // eagerly allocating for it.
        let p = Packet::new(
            PacketId::new(0),
            TopicId::new(0),
            NodeId::new(0),
            SimTime::ZERO,
            vec![],
        );
        let mut bytes = encode_packet(&p).to_vec();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_packet(&bytes),
            Err(DecodePacketError::Truncated {
                needed: u32::MAX as usize
            })
        );
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(DecodePacketError::Truncated { needed: 4 }
            .to_string()
            .contains("4 more bytes"));
        assert!(DecodePacketError::BadMagic(7).to_string().contains("0x07"));
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary_packets(
            id in 0u64..u64::MAX,
            topic in 0u32..1000,
            publisher in 0u32..1000,
            at in 0u64..u64::MAX / 2,
            tag in 0u64..u64::MAX,
            seq in 0u64..u64::MAX,
            nack in proptest::option::of((0u32..1000, proptest::collection::vec(0u64..10_000, 0..32))),
            dests in proptest::collection::vec(0u32..1000, 0..20),
            path in proptest::collection::vec(0u32..1000, 0..40),
            route in proptest::option::of(proptest::collection::vec(0u32..1000, 0..20)),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let p = Packet::from_body(
                PacketBody::new(
                    PacketId::new(id),
                    TopicId::new(topic),
                    NodeId::new(publisher),
                    SimTime::from_micros(at),
                    seq,
                    Bytes::from(payload),
                ),
                match nack {
                    None => PacketKind::Data,
                    Some((sub, missing)) => PacketKind::Nack {
                        subscriber: NodeId::new(sub),
                        missing,
                    },
                },
                dests.into_iter().map(NodeId::new).collect(),
                path.into_iter().map(NodeId::new).collect::<Vec<_>>().into(),
                route.map(|r| r.into_iter().map(NodeId::new).collect()),
                tag,
            );
            let decoded = decode_packet(&encode_packet(&p)).expect("round trip");
            prop_assert_eq!(decoded, p);
        }
    }
}
