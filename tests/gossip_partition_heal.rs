//! Partition-heal acceptance for the gossip control plane: membership
//! deltas produced while the overlay is partitioned converge after the
//! cut heals, get applied through incremental repair only, and delivery
//! recovers — while a no-dissemination control on the same schedule does
//! not.
//!
//! The schedule: a 60 s clean-link run where a quarter of the brokers are
//! cut off for the first 35 s (one partition window per run), while
//! broker churn lands joins in [1, 20) and departures in [20, 40). The
//! detector keeps producing deltas throughout; under gossip they can only
//! converge once the cut heals at 35 s and anti-entropy reconciles the
//! two sides. The acceptance window [47, 60) starts after the heal, the
//! last departures, the detector's suspicion lag and a few gossip rounds.

use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::experiments::runner::{
    build_broker_churn, build_chaos, build_topology, build_workload, confine_to_churn,
};
use dcrd::experiments::scenario::{
    BrokerChurnSpec, ControlPlane, PartitionSpec, Scenario, ScenarioBuilder,
};
use dcrd::net::failure::{FailureModel, LinkFailureModel, LinkOutageModel};
use dcrd::net::gossip::GossipConfig;
use dcrd::net::loss::LossModel;
use dcrd::pubsub::audit::AuditConfig;
use dcrd::pubsub::runtime::{DeliveryLog, Dissemination, OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::strategy::RunParams;
use dcrd::sim::rng::derive_seed_indexed;
use dcrd::sim::SimTime;

/// One partition window covering the whole churn burst, healed with 25 s
/// of run left to recover in.
fn heal_scenario(plane: ControlPlane, seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .nodes(16)
        .degree(4)
        .failure_probability(0.0)
        .loss_rate(0.0)
        .topics(3)
        .deadline_factor(2.0)
        .duration_secs(60)
        .repetitions(1)
        .audit(true)
        .partition(PartitionSpec {
            fraction: 0.25,
            window_secs: 35,
            period_secs: 60,
        })
        .broker_churn(BrokerChurnSpec { rate: 0.6 })
        .control_plane(plane)
        .dcrd(DcrdConfig::churn_hardened())
        .seed(seed)
        .build()
}

/// Mirrors `run_once`'s deterministic assembly (partition chaos + broker
/// churn + the scenario's control plane) but returns the full delivery
/// log and the strategy for counter inspection.
fn run_with_log(scenario: &Scenario, capture_trace: bool) -> (DeliveryLog, DcrdStrategy) {
    let topo = build_topology(scenario, 0);
    let workload = build_workload(scenario, &topo, 0);
    let churn = build_broker_churn(scenario, &workload, 0).expect("churn spec set");
    let workload = confine_to_churn(&workload, &churn);
    let links = LinkOutageModel::Epoch(LinkFailureModel::new(
        scenario.pf,
        derive_seed_indexed(scenario.seed, "failures", 0),
    ));
    let chaos = build_chaos(scenario, 0).with_churn(churn);
    let failure = FailureModel::new(links, None).with_chaos(chaos);
    let mut config = RuntimeConfig {
        duration: scenario.duration,
        params: RunParams {
            m: scenario.m,
            ack_timeout_factor: scenario.ack_timeout_factor,
            ..RunParams::default()
        },
        seed: derive_seed_indexed(scenario.seed, "runtime", 0),
        audit: Some(AuditConfig::for_overlay(scenario.nodes, 64)),
        dissemination: match scenario.control_plane {
            ControlPlane::Oracle => Dissemination::Oracle,
            ControlPlane::Gossip { loss } => Dissemination::Gossip(GossipConfig {
                loss,
                seed: derive_seed_indexed(scenario.seed, "gossip", 0),
                ..GossipConfig::default()
            }),
            ControlPlane::None => Dissemination::None,
        },
        ..RuntimeConfig::paper(scenario.duration, 0)
    };
    config.capture_trace = capture_trace;
    let runtime = OverlayRuntime::new(
        &topo,
        &workload,
        failure,
        LossModel::new(scenario.pl),
        config,
    );
    let mut strategy = DcrdStrategy::new(scenario.dcrd);
    let log = runtime.run(&mut strategy);
    (log, strategy)
}

/// `(delivery, on-time)` ratios of pairs published inside the acceptance
/// window. On clean links the dynamic per-hop fallback eventually
/// completes almost every pair even on stale tables, so raw delivery
/// measures *reachability* while the on-time ratio measures what the
/// dissemination actually buys: packets routed by stale state burn
/// their delay budget exploring around dead brokers.
fn post_heal_ratios(log: &DeliveryLog) -> (f64, f64) {
    let window_start = SimTime::from_secs(47);
    let (mut expected, mut delivered, mut on_time) = (0u64, 0u64, 0u64);
    for (_, e) in log.expectations() {
        if e.published >= window_start {
            expected += 1;
            if e.delivered.is_some() {
                delivered += 1;
            }
            if e.on_time() {
                on_time += 1;
            }
        }
    }
    assert!(expected > 0, "no messages published post-heal");
    (
        delivered as f64 / expected as f64,
        on_time as f64 / expected as f64,
    )
}

/// Acceptance: under gossip dissemination, post-heal delivery recovers to
/// ≥ 0.99 on incremental repair alone, with a clean audit (including the
/// staleness clause) and the control-plane counters proving the epidemic
/// path actually carried the deltas.
#[test]
fn gossip_dissemination_recovers_after_partition_heals() {
    let scenario = heal_scenario(ControlPlane::Gossip { loss: 0.15 }, 13);
    let (log, strategy) = run_with_log(&scenario, false);
    let audit = log.audit.as_ref().expect("audit armed");
    assert_eq!(
        audit.total_violations, 0,
        "gossip invariants violated: {:?}",
        audit.violations
    );
    let (delivery, on_time) = post_heal_ratios(&log);
    assert!(delivery >= 0.99, "post-heal delivery only {delivery:.4}");
    assert!(on_time >= 0.99, "post-heal on-time only {on_time:.4}");
    assert_eq!(strategy.global_rebuilds(), 0, "no rebuild after setup");
    assert!(log.rumors_sent > 0, "no rumors pushed");
    assert!(log.anti_entropy_rounds > 0, "anti-entropy never ran");
    assert!(
        log.gossip_deltas_applied > 0,
        "no deltas reached the router"
    );
}

/// The no-dissemination control on the same schedule: the detector still
/// fires but its deltas never reach routing state, so post-heal delivery
/// stays measurably below the gossip arm (and below the acceptance bar).
#[test]
fn no_dissemination_fails_to_recover_on_the_same_schedule() {
    let gossip = heal_scenario(ControlPlane::Gossip { loss: 0.15 }, 13);
    let none = heal_scenario(ControlPlane::None, 13);
    let (gossip_log, _) = run_with_log(&gossip, false);
    let (none_log, strategy) = run_with_log(&none, false);
    let (gossip_delivery, gossip_on_time) = post_heal_ratios(&gossip_log);
    let (none_delivery, none_on_time) = post_heal_ratios(&none_log);
    eprintln!(
        "gossip: delivery {gossip_delivery:.4} on-time {gossip_on_time:.4} | \
         static: delivery {none_delivery:.4} on-time {none_on_time:.4}"
    );
    assert!(
        none_on_time < 0.99,
        "static routing state recovered anyway (on-time {none_on_time:.4}) — the schedule is too easy"
    );
    assert!(
        gossip_on_time > none_on_time,
        "dissemination bought nothing: gossip {gossip_on_time:.4} vs static {none_on_time:.4}"
    );
    // No deltas were applied, so no repair of either kind ran.
    assert_eq!(strategy.incremental_repairs(), 0);
    assert_eq!(strategy.global_rebuilds(), 0);
}

/// Same seed, same partition/heal schedule, twice: the full transmission
/// traces must be bit-identical. This pins the gossip layer (rumor
/// draws, view shuffles, anti-entropy pairing) into the determinism
/// envelope.
#[test]
fn gossip_trace_digests_are_identical_across_reruns() {
    let scenario = heal_scenario(ControlPlane::Gossip { loss: 0.3 }, 77);
    let digest = || {
        let (log, _) = run_with_log(&scenario, true);
        let trace = log.trace.as_ref().expect("trace captured");
        assert!(!trace.is_empty(), "gossip run produced no events");
        trace.digest()
    };
    let first = digest();
    let second = digest();
    assert_eq!(
        first, second,
        "same-seed gossip runs diverged: the control plane is not deterministic"
    );
}
