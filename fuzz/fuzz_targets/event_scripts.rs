//! Coverage-guided variant of the event-script fuzzer: the engine's bytes
//! pick the `(seed, index)` pair, the harness generates and runs the
//! script under the full invariant auditor.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    if data.len() < 16 {
        return;
    }
    let seed = u64::from_le_bytes(data[..8].try_into().unwrap());
    let index = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let _ = dcrd_fuzz_harness::check_script(seed, index);
});
