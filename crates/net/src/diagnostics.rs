//! Topology diagnostics: diameter, eccentricity and path-stretch summaries.
//!
//! Used to characterize generated overlays (the paper's Fig. 5 argues via
//! network *diameter*: at fixed degree, more nodes ⇒ longer paths ⇒ more
//! failure exposure) and to bound the propagation round count in tests.

use crate::graph::{NodeId, Topology};
use crate::paths::{all_pairs_costs, Metric};

/// Summary of a topology's distance structure under one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceSummary {
    /// Largest finite shortest-path cost between any pair (the diameter);
    /// `None` when the graph is disconnected or has a single node.
    pub diameter: Option<u64>,
    /// Mean finite shortest-path cost over all ordered pairs.
    pub mean: f64,
    /// Number of ordered pairs with no path at all.
    pub disconnected_pairs: usize,
}

/// Computes the distance summary of `topo` under `metric`.
#[must_use]
pub fn distance_summary(topo: &Topology, metric: Metric) -> DistanceSummary {
    let costs = all_pairs_costs(topo, metric);
    let mut max: Option<u64> = None;
    let mut sum = 0u128;
    let mut finite = 0usize;
    let mut disconnected = 0usize;
    for (i, row) in costs.iter().enumerate() {
        for (j, c) in row.iter().enumerate() {
            if i == j {
                continue;
            }
            match c {
                Some(c) => {
                    max = Some(max.map_or(*c, |m| m.max(*c)));
                    sum += u128::from(*c);
                    finite += 1;
                }
                None => disconnected += 1,
            }
        }
    }
    DistanceSummary {
        diameter: max,
        mean: if finite == 0 {
            0.0
        } else {
            sum as f64 / finite as f64
        },
        disconnected_pairs: disconnected,
    }
}

/// Renders the topology in Graphviz DOT format, labeling every link with
/// its one-way delay in milliseconds.
///
/// ```
/// use dcrd_net::diagnostics::to_dot;
/// use dcrd_net::topology::ring;
/// use dcrd_sim::SimDuration;
///
/// let dot = to_dot(&ring(3, SimDuration::from_millis(10)), "overlay");
/// assert!(dot.starts_with("graph overlay {"));
/// assert!(dot.contains("n0 -- n1"));
/// ```
#[must_use]
pub fn to_dot(topo: &Topology, name: &str) -> String {
    let mut out = format!("graph {name} {{\n");
    for node in topo.nodes() {
        out.push_str(&format!("  {node};\n"));
    }
    for e in topo.edge_ids() {
        let edge = topo.edge(e);
        out.push_str(&format!(
            "  {} -- {} [label=\"{:.1}ms\"];\n",
            edge.a(),
            edge.b(),
            topo.delay(e).as_millis_f64()
        ));
    }
    out.push_str("}\n");
    out
}

/// The eccentricity of `node` (its largest finite shortest-path cost to any
/// other node), or `None` if some node is unreachable from it.
#[must_use]
pub fn eccentricity(topo: &Topology, node: NodeId, metric: Metric) -> Option<u64> {
    let sp = crate::paths::dijkstra(topo, node, metric);
    let mut max = 0u64;
    for other in topo.nodes() {
        if other == node {
            continue;
        }
        max = max.max(sp.cost_to(other)?);
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{full_mesh, line, random_connected, ring, DelayRange};
    use dcrd_sim::rng::rng_for;
    use dcrd_sim::SimDuration;

    #[test]
    fn line_diameter_by_hops() {
        let t = line(5, SimDuration::from_millis(10));
        let s = distance_summary(&t, Metric::Hops);
        assert_eq!(s.diameter, Some(4));
        assert_eq!(s.disconnected_pairs, 0);
        assert!(s.mean > 1.0 && s.mean < 4.0);
    }

    #[test]
    fn ring_eccentricity_is_half() {
        let t = ring(8, SimDuration::from_millis(10));
        for node in t.nodes() {
            assert_eq!(eccentricity(&t, node, Metric::Hops), Some(4));
        }
    }

    #[test]
    fn mesh_hop_diameter_is_one() {
        let mut rng = rng_for(1, "diag");
        let t = full_mesh(6, DelayRange::PAPER, &mut rng);
        let s = distance_summary(&t, Metric::Hops);
        assert_eq!(s.diameter, Some(1));
        assert!((s.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bigger_networks_have_bigger_diameters_at_fixed_degree() {
        // The paper's Fig. 5 argument: fixed degree + more nodes ⇒ larger
        // diameter ⇒ more hops per delivery.
        let mut rng = rng_for(2, "diag");
        let small = random_connected(20, 8, DelayRange::PAPER, &mut rng);
        let large = random_connected(160, 8, DelayRange::PAPER, &mut rng);
        let ds = distance_summary(&small, Metric::Hops);
        let dl = distance_summary(&large, Metric::Hops);
        assert!(
            dl.mean > ds.mean,
            "mean hops must grow with size: {} vs {}",
            dl.mean,
            ds.mean
        );
        assert!(dl.diameter.unwrap() >= ds.diameter.unwrap());
    }

    #[test]
    fn dot_output_lists_every_node_and_edge() {
        let t = line(3, SimDuration::from_millis(15));
        let dot = to_dot(&t, "g");
        assert!(dot.starts_with("graph g {"));
        assert!(dot.ends_with("}\n"));
        for node in t.nodes() {
            assert!(dot.contains(&format!("{node};")));
        }
        assert_eq!(dot.matches(" -- ").count(), t.num_edges());
        assert!(dot.contains("15.0ms"));
    }

    #[test]
    fn disconnected_graphs_are_reported() {
        use crate::graph::TopologyBuilder;
        let mut b = TopologyBuilder::new(3);
        let n = b.nodes();
        b.link(n[0], n[1], SimDuration::from_millis(10));
        let t = b.build();
        let s = distance_summary(&t, Metric::Hops);
        assert_eq!(s.disconnected_pairs, 4); // (0,2),(1,2),(2,0),(2,1)
        assert_eq!(eccentricity(&t, t.node(0), Metric::Hops), None);
        assert_eq!(s.diameter, Some(1));
    }
}
