//! Eq. 1 of the paper: link statistics under `m` transmissions.
//!
//! Given a link's single-transmission expected delay `α⁽¹⁾` and delivery
//! ratio `γ⁽¹⁾`, a broker that retransmits up to `m` times sees
//!
//! ```text
//! α⁽ᵐ⁾ = Σ_{k=1..m} (k·α⁽¹⁾)·γ⁽¹⁾·(1−γ⁽¹⁾)^{k−1} / (1 − (1−γ⁽¹⁾)^m)
//! γ⁽ᵐ⁾ = 1 − (1−γ⁽¹⁾)^m
//! ```
//!
//! `α⁽ᵐ⁾` is *conditional* on the packet getting through within the `m`
//! attempts — otherwise the delay is infinite and the expectation is
//! undefined, which the paper (and this module) represent by pairing every
//! `α` with its `γ`.

use serde::{Deserialize, Serialize};

/// Link statistics under `m` transmissions: conditional expected delay (µs)
/// and delivery ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Expected delay in microseconds of a *successful* `m`-attempt
    /// delivery (`α⁽ᵐ⁾`); `f64::INFINITY` when `γ⁽¹⁾ = 0`.
    pub alpha: f64,
    /// Probability that at least one of the `m` transmissions succeeds
    /// (`γ⁽ᵐ⁾`).
    pub gamma: f64,
}

/// Computes Eq. 1 for a link with single-transmission delay `alpha1` (µs)
/// and delivery ratio `gamma1`, under `m` transmissions.
///
/// # Panics
///
/// Panics if `m == 0`, `alpha1` is negative or non-finite, or `gamma1` is
/// outside `[0, 1]`.
#[must_use]
pub fn m_transmission_stats(alpha1: f64, gamma1: f64, m: u32) -> LinkStats {
    assert!(m >= 1, "m must be at least 1");
    assert!(
        alpha1.is_finite() && alpha1 >= 0.0,
        "alpha must be finite and non-negative, got {alpha1}"
    );
    assert!(
        (0.0..=1.0).contains(&gamma1),
        "gamma must be in [0, 1], got {gamma1}"
    );
    if gamma1 == 0.0 {
        return LinkStats {
            alpha: f64::INFINITY,
            gamma: 0.0,
        };
    }
    let q = 1.0 - gamma1;
    let gamma_m = 1.0 - q.powi(m as i32);
    let mut numerator = 0.0;
    let mut q_pow = 1.0; // q^{k-1}
    for k in 1..=m {
        numerator += (k as f64) * alpha1 * gamma1 * q_pow;
        q_pow *= q;
    }
    LinkStats {
        alpha: numerator / gamma_m,
        gamma: gamma_m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_transmission_is_identity() {
        let s = m_transmission_stats(30_000.0, 0.9, 1);
        assert!((s.alpha - 30_000.0).abs() < 1e-9);
        assert!((s.gamma - 0.9).abs() < 1e-12);
    }

    #[test]
    fn perfect_link_never_retransmits() {
        for m in 1..=5 {
            let s = m_transmission_stats(20_000.0, 1.0, m);
            assert!((s.alpha - 20_000.0).abs() < 1e-9, "m={m}");
            assert!((s.gamma - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dead_link_is_infinite() {
        let s = m_transmission_stats(20_000.0, 0.0, 3);
        assert!(s.alpha.is_infinite());
        assert_eq!(s.gamma, 0.0);
    }

    #[test]
    fn two_transmissions_hand_computed() {
        // γ=0.5, α=10. γ² = 1-0.25 = 0.75.
        // numerator = 1·10·0.5 + 2·10·0.5·0.5 = 5 + 5 = 10. α² = 10/0.75.
        let s = m_transmission_stats(10.0, 0.5, 2);
        assert!((s.gamma - 0.75).abs() < 1e-12);
        assert!((s.alpha - 10.0 / 0.75).abs() < 1e-9);
    }

    #[test]
    fn gamma_increases_with_m() {
        let mut prev = 0.0;
        for m in 1..=8 {
            let s = m_transmission_stats(10.0, 0.3, m);
            assert!(s.gamma > prev, "gamma must increase with m");
            prev = s.gamma;
        }
    }

    #[test]
    fn alpha_increases_with_m_for_lossy_links() {
        // More allowed retries → successful deliveries include slower
        // multi-attempt ones → conditional expected delay grows.
        let mut prev = 0.0;
        for m in 1..=8 {
            let s = m_transmission_stats(10.0, 0.3, m);
            assert!(s.alpha > prev, "alpha must increase with m");
            prev = s.alpha;
        }
    }

    #[test]
    fn gamma_limit_is_one() {
        let s = m_transmission_stats(10.0, 0.5, 30);
        assert!((s.gamma - 1.0).abs() < 1e-8);
        // As m→∞ with γ=0.5, α⁽ᵐ⁾ → α/γ = 2α (mean of geometric).
        assert!((s.alpha - 20.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "m must be at least 1")]
    fn zero_m_rejected() {
        let _ = m_transmission_stats(10.0, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "gamma must be in")]
    fn bad_gamma_rejected() {
        let _ = m_transmission_stats(10.0, 1.5, 1);
    }

    proptest! {
        #[test]
        fn props_hold_for_all_inputs(
            alpha in 1.0f64..1e8,
            gamma in 0.01f64..1.0,
            m in 1u32..10,
        ) {
            let s = m_transmission_stats(alpha, gamma, m);
            // γ⁽ᵐ⁾ ∈ [γ, 1]
            prop_assert!(s.gamma >= gamma - 1e-12);
            prop_assert!(s.gamma <= 1.0 + 1e-12);
            // α⁽ᵐ⁾ ∈ [α, m·α] — conditional mean over 1..m attempts.
            prop_assert!(s.alpha >= alpha - 1e-6);
            prop_assert!(s.alpha <= m as f64 * alpha + 1e-6);
        }

        #[test]
        fn matches_monte_carlo(gamma in 0.2f64..0.95, m in 1u32..5) {
            use rand::Rng;
            let alpha = 1000.0;
            let s = m_transmission_stats(alpha, gamma, m);
            let mut rng = dcrd_sim::rng::rng_for(42, "mc");
            let trials = 40_000;
            let mut successes = 0u64;
            let mut total_delay = 0.0;
            for _ in 0..trials {
                for k in 1..=m {
                    if rng.gen::<f64>() < gamma {
                        successes += 1;
                        total_delay += k as f64 * alpha;
                        break;
                    }
                }
            }
            let emp_gamma = successes as f64 / trials as f64;
            let emp_alpha = total_delay / successes as f64;
            prop_assert!((emp_gamma - s.gamma).abs() < 0.02,
                "gamma: analytic {} vs empirical {}", s.gamma, emp_gamma);
            prop_assert!((emp_alpha - s.alpha).abs() / s.alpha < 0.05,
                "alpha: analytic {} vs empirical {}", s.alpha, emp_alpha);
        }
    }
}
