//! CLI for the DCRD workspace lints.
//!
//! ```text
//! cargo run -p dcrd-analyzer --             # report everything
//! cargo run -p dcrd-analyzer -- --deny-new  # CI gate: exit 1 on new hits
//! cargo run -p dcrd-analyzer -- --format json   # machine-readable report
//! cargo run -p dcrd-analyzer -- --write-baseline > analyzer.toml
//! cargo run -p dcrd-analyzer -- --list-rules
//! ```
//!
//! The workspace root defaults to the nearest ancestor of the current
//! directory containing `analyzer.toml` (falling back to the current
//! directory); override with `--root PATH`.

use std::path::PathBuf;
use std::process::ExitCode;

use dcrd_analyzer::{analyze_workspace, json, partition, Baseline, RULES};

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

struct Options {
    root: Option<PathBuf>,
    deny_new: bool,
    write_baseline: bool,
    list_rules: bool,
    format: Format,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        deny_new: false,
        write_baseline: false,
        list_rules: false,
        format: Format::Text,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-new" => opts.deny_new = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let path = args.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(path));
            }
            "--format" => {
                let fmt = args.next().ok_or("--format requires `text` or `json`")?;
                opts.format = match fmt.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--help" | "-h" => {
                println!(
                    "dcrd-analyzer [--root PATH] [--deny-new] [--format text|json] \
                     [--write-baseline] [--list-rules]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// The nearest ancestor holding `analyzer.toml`, else the current dir.
fn find_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("analyzer.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in RULES {
            println!("{}  [{}]\n    {}", r.id, r.scope, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = opts.root.unwrap_or_else(find_root);
    let diags = match analyze_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = root.join("analyzer.toml");
    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|text| Baseline::parse(&text))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let (fresh, suppressed, unused) = partition(diags, &baseline);

    if opts.write_baseline {
        print!("{}", Baseline::render(&fresh));
        return ExitCode::SUCCESS;
    }

    if opts.format == Format::Json {
        print!("{}", json::render_report(&fresh, &suppressed, &unused));
    } else {
        for d in &fresh {
            if d.note.is_empty() {
                println!("{}:{}:{}: {}: {}", d.path, d.line, d.col, d.rule, d.snippet);
            } else {
                println!(
                    "{}:{}:{}: {}: {} [{}]",
                    d.path, d.line, d.col, d.rule, d.snippet, d.note
                );
            }
        }
        for a in &unused {
            eprintln!(
                "warning: stale baseline entry ({} in {} matching \"{}\") — delete it",
                a.rule, a.path, a.contains
            );
        }
    }
    eprintln!(
        "dcrd-analyzer: {} new violation(s), {} suppressed by baseline, {} stale baseline entr(y/ies)",
        fresh.len(),
        suppressed.len(),
        unused.len()
    );

    if opts.deny_new && (!fresh.is_empty() || !unused.is_empty()) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
