//! Sending-list construction (Algorithm 1 of the paper).
//!
//! For broker `X` and subscriber `S` with per-node delay requirement
//! `D_XS`, the sending list contains every neighbor `i` whose own expected
//! delay satisfies `dᵢ < D_XS` (Algorithm 1 line 4), with Eq. 2 applied to
//! fold in the link statistics, sorted by the configured ordering policy
//! (Theorem 1 by default).

use dcrd_net::NodeId;

use crate::ordering::OrderingPolicy;
use crate::params::{combine, Candidate, DrPair};
use crate::reliability::LinkStats;

/// One neighbor as seen from `X`: the connecting link's `m`-transmission
/// statistics plus the neighbor's advertised `⟨d, r⟩`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborInfo {
    /// The neighboring broker.
    pub neighbor: NodeId,
    /// `⟨α_Xi, γ_Xi⟩` of the link `X → i` under `m` transmissions.
    pub link: LinkStats,
    /// The neighbor's advertised `⟨dᵢ, rᵢ⟩` toward the subscriber.
    pub params: DrPair,
}

/// Builds the sending list of a broker toward one subscriber
/// (Algorithm 1 lines 1–9): filter by `dᵢ < requirement` (µs), apply Eq. 2,
/// sort by `policy`.
#[must_use]
pub fn build_sending_list(
    neighbors: &[NeighborInfo],
    requirement: f64,
    policy: OrderingPolicy,
) -> Vec<Candidate> {
    let mut list = Vec::with_capacity(neighbors.len());
    build_sending_list_into(neighbors, requirement, policy, &mut list);
    list
}

/// [`build_sending_list`] into a caller-owned buffer (cleared first), so
/// the gossip iteration in `propagation` can run allocation-free.
pub fn build_sending_list_into(
    neighbors: &[NeighborInfo],
    requirement: f64,
    policy: OrderingPolicy,
    out: &mut Vec<Candidate>,
) {
    out.clear();
    out.extend(
        neighbors
            .iter()
            .filter(|n| n.params.d < requirement)
            .map(|n| Candidate::from_link(n.neighbor, n.link.alpha, n.link.gamma, n.params)),
    );
    policy.sort(out);
}

/// [`build_sending_list_into`] fed directly from an adjacency row and the
/// round's per-node `⟨d, r⟩` array — the gossip iteration's form, which
/// skips materializing a [`NeighborInfo`] per neighbor per round.
pub fn build_sending_list_from_row(
    row: &[(NodeId, LinkStats)],
    params: &[crate::params::DrPair],
    requirement: f64,
    policy: OrderingPolicy,
    out: &mut Vec<Candidate>,
) {
    out.clear();
    out.extend(row.iter().filter_map(|&(nb, link)| {
        let p = params[nb.index()];
        (p.d < requirement).then(|| Candidate::from_link(nb, link.alpha, link.gamma, p))
    }));
    policy.sort(out);
}

/// Algorithm 1 lines 10–11: the broker's own `⟨d_X, r_X⟩` from its sorted
/// sending list (Eq. 3).
#[must_use]
pub fn node_params(sending_list: &[Candidate]) -> DrPair {
    combine(sending_list)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(id: u32, alpha: f64, gamma: f64, d: f64, r: f64) -> NeighborInfo {
        NeighborInfo {
            neighbor: NodeId::new(id),
            link: LinkStats { alpha, gamma },
            params: DrPair { d, r },
        }
    }

    #[test]
    fn filters_by_requirement() {
        let neighbors = vec![
            info(0, 10.0, 1.0, 50.0, 1.0),  // d=50 < 100 → kept
            info(1, 10.0, 1.0, 100.0, 1.0), // d=100 not < 100 → dropped
            info(2, 10.0, 1.0, 150.0, 1.0), // dropped
        ];
        let list = build_sending_list(&neighbors, 100.0, OrderingPolicy::RatioOptimal);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].neighbor, NodeId::new(0));
        // Eq. 2 applied: d = α + dᵢ.
        assert!((list[0].d - 60.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_neighbors_filtered_by_infinite_d() {
        let neighbors = vec![
            info(0, 10.0, 0.9, f64::INFINITY, 0.0),
            info(1, 10.0, 0.9, 20.0, 0.8),
        ];
        let list = build_sending_list(&neighbors, 1000.0, OrderingPolicy::RatioOptimal);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].neighbor, NodeId::new(1));
    }

    #[test]
    fn sorted_by_theorem1() {
        let neighbors = vec![
            info(0, 50.0, 0.5, 0.0, 1.0), // d/r = 100
            info(1, 40.0, 0.8, 0.0, 1.0), // d/r = 50
        ];
        let list = build_sending_list(&neighbors, 1000.0, OrderingPolicy::RatioOptimal);
        assert_eq!(list[0].neighbor, NodeId::new(1));
        assert_eq!(list[1].neighbor, NodeId::new(0));
    }

    #[test]
    fn node_params_from_list() {
        let neighbors = vec![info(0, 10.0, 0.5, 0.0, 1.0), info(1, 20.0, 0.5, 0.0, 1.0)];
        let list = build_sending_list(&neighbors, 1000.0, OrderingPolicy::RatioOptimal);
        let p = node_params(&list);
        assert!((p.r - 0.75).abs() < 1e-12);
        assert!((p.d - 12.5 / 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_everything() {
        let list = build_sending_list(&[], 100.0, OrderingPolicy::RatioOptimal);
        assert!(list.is_empty());
        assert_eq!(node_params(&list), DrPair::UNREACHABLE);
    }

    #[test]
    fn zero_requirement_blocks_all() {
        let neighbors = vec![info(0, 10.0, 1.0, 0.0, 1.0)];
        // Even the subscriber itself (d=0) fails `d < 0`.
        let list = build_sending_list(&neighbors, 0.0, OrderingPolicy::RatioOptimal);
        assert!(list.is_empty());
    }
}
