//! Link monitoring: run DCRD from *measured* link estimates instead of the
//! analytic ones — the paper's "collected through link monitoring" mode —
//! and compare the two.
//!
//! The probing runtime sends a probe over every link at a fixed interval,
//! folds the outcomes into an EWMA estimator, and pushes fresh `⟨α, γ⟩`
//! tables to the routing layer every monitoring interval (the paper uses
//! 5 minutes; we shorten it so convergence is visible in a short run).
//!
//! ```text
//! cargo run --release --example link_monitoring
//! ```

use dcrd::experiments::runner::{run_scenario, StrategyKind};
use dcrd::experiments::scenario::ScenarioBuilder;
use dcrd::pubsub::runtime::Monitoring;
use dcrd::sim::SimDuration;

fn main() {
    let base = ScenarioBuilder::new()
        .nodes(20)
        .degree(8)
        .failure_probability(0.06)
        .duration_secs(600)
        .repetitions(2)
        .seed(5);

    let analytic = base.clone().build();
    let probing = base
        .monitoring(Monitoring::Probing {
            probe_interval: SimDuration::from_secs(5),
            ewma_weight: 0.05,
        })
        .build();

    println!("DCRD with analytic estimates vs. online probe-based monitoring");
    println!("(20 brokers, degree 8, Pf = 0.06, 10 minutes, 2 topologies)\n");
    for (label, scenario) in [("analytic", analytic), ("probing", probing)] {
        let agg = run_scenario(&scenario, StrategyKind::Dcrd);
        println!(
            "{label:>9}: delivery {:.4}  QoS {:.4}  packets/subscriber {:.3}",
            agg.delivery_ratio(),
            agg.qos_delivery_ratio(),
            agg.packets_per_subscriber()
        );
    }
    println!(
        "\nThe EWMA monitor converges to the same long-run gamma = (1-Pf)(1-Pl), so \
         routing quality matches\nthe analytic tables after the first monitoring \
         interval — the paper's assumption holds."
    );
}
