//! The Multipath baseline.
//!
//! §IV-B: "publishers send duplicate packets for every subscriber ... a
//! single packet to a single subscriber is sent through two paths: one
//! shortest delay path and another path selected from the top 5 shortest
//! delay paths that has the fewest overlapping links with the shortest
//! delay path." Redundancy buys reliability at roughly double the traffic,
//! but both paths are fixed — a failure on both (or on the single shared
//! prefix) still loses the packet.

use std::collections::BTreeMap;

use dcrd_net::disjoint::edge_disjoint_pair;
use dcrd_net::paths::{multipath_pair, Metric};
use dcrd_net::NodeId;
use dcrd_pubsub::packet::Packet;
use dcrd_pubsub::strategy::SetupContext;
use dcrd_sim::SimTime;

use crate::common::{FailureResponse, HopByHopStrategy, NextHopPolicy};

/// How the second path of each pair is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultipathSelection {
    /// The paper's heuristic: among the top-5 shortest-delay paths, the one
    /// sharing the fewest links with the shortest path.
    #[default]
    TopFiveOverlap,
    /// Bhandari's minimum-total-delay edge-disjoint pair (ablation: what
    /// the heuristic leaves on the table).
    EdgeDisjoint,
}

/// Multipath next-hop policy: two pinned source routes per
/// `(publisher, subscriber)` pair.
#[derive(Debug, Default)]
pub struct MultipathPolicy {
    selection: MultipathSelection,
    /// `(publisher, subscriber) → up to two node routes`.
    routes: BTreeMap<(NodeId, NodeId), Vec<Vec<NodeId>>>,
}

impl MultipathPolicy {
    /// Creates the policy with the paper's selection heuristic; routes are
    /// computed in `setup`.
    #[must_use]
    pub fn new() -> Self {
        MultipathPolicy::default()
    }

    /// Creates the policy with an explicit selection mode.
    #[must_use]
    pub fn with_selection(selection: MultipathSelection) -> Self {
        MultipathPolicy {
            selection,
            routes: BTreeMap::new(),
        }
    }

    /// The configured selection mode.
    #[must_use]
    pub fn selection(&self) -> MultipathSelection {
        self.selection
    }

    /// The pinned routes for one `(publisher, subscriber)` pair.
    #[must_use]
    pub fn routes_for(&self, publisher: NodeId, subscriber: NodeId) -> Option<&[Vec<NodeId>]> {
        self.routes.get(&(publisher, subscriber)).map(Vec::as_slice)
    }
}

impl NextHopPolicy for MultipathPolicy {
    fn name(&self) -> &'static str {
        "Multipath"
    }

    fn setup(&mut self, ctx: &SetupContext<'_>) {
        self.routes.clear();
        for spec in ctx.workload.topics() {
            for sub in &spec.subscriptions {
                let key = (spec.publisher, sub.subscriber);
                if self.routes.contains_key(&key) {
                    continue;
                }
                let pair = match self.selection {
                    MultipathSelection::TopFiveOverlap => {
                        multipath_pair(ctx.topology, spec.publisher, sub.subscriber)
                    }
                    MultipathSelection::EdgeDisjoint => edge_disjoint_pair(
                        ctx.topology,
                        spec.publisher,
                        sub.subscriber,
                        Metric::Delay,
                    )
                    .map(|p| (p.primary, p.secondary)),
                };
                let Some((primary, secondary)) = pair else {
                    continue;
                };
                let mut routes = vec![primary.nodes().to_vec()];
                if let Some(s) = secondary {
                    routes.push(s.nodes().to_vec());
                }
                self.routes.insert(key, routes);
            }
        }
    }

    fn initial_copies(&mut self, node: NodeId, packet: Packet) -> Vec<Packet> {
        // One copy per (destination, route): the paper duplicates per
        // subscriber rather than sharing tree edges.
        let mut copies = Vec::new();
        for &dest in &packet.destinations {
            let Some(routes) = self.routes.get(&(node, dest)) else {
                continue;
            };
            for route in routes {
                let mut copy = packet.clone();
                copy.destinations = vec![dest];
                copy.route = Some(route.clone());
                copies.push(copy);
            }
        }
        copies
    }

    fn next_hop(
        &mut self,
        node: NodeId,
        packet: &Packet,
        _dest: NodeId,
        _now: SimTime,
    ) -> Option<NodeId> {
        let route = packet.route.as_ref()?;
        let pos = route.iter().position(|&n| n == node)?;
        route.get(pos + 1).copied()
    }

    fn on_failure(&self) -> FailureResponse {
        FailureResponse::GiveUp
    }
}

/// The paper's Multipath baseline strategy.
pub type MultipathStrategy = HopByHopStrategy<MultipathPolicy>;

/// Creates the Multipath baseline with the paper's selection heuristic.
#[must_use]
pub fn multipath() -> MultipathStrategy {
    HopByHopStrategy::new(MultipathPolicy::new())
}

/// Creates the Multipath variant using Bhandari edge-disjoint pairs.
#[must_use]
pub fn multipath_disjoint() -> MultipathStrategy {
    HopByHopStrategy::new(MultipathPolicy::with_selection(
        MultipathSelection::EdgeDisjoint,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::d_tree;
    use dcrd_net::failure::{FailureModel, LinkFailureModel};
    use dcrd_net::loss::LossModel;
    use dcrd_net::topology::{full_mesh, DelayRange};
    use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig};
    use dcrd_pubsub::workload::{Workload, WorkloadConfig};
    use dcrd_sim::rng::rng_for;
    use dcrd_sim::SimDuration;

    fn mesh_workload(seed: u64) -> (dcrd_net::Topology, Workload) {
        let mut rng = rng_for(seed, "mp-test");
        let topo = full_mesh(12, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        (topo, wl)
    }

    #[test]
    fn sends_roughly_double_the_tree_traffic() {
        let (topo, wl) = mesh_workload(1);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let cfg = RuntimeConfig::paper(SimDuration::from_secs(30), 1);
        let mp = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), cfg)
            .run(&mut multipath());
        let dt =
            OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), cfg).run(&mut d_tree());
        assert!((mp.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!(
            mp.packets_per_subscriber() > 1.7 * dt.packets_per_subscriber(),
            "multipath traffic {} should dwarf D-Tree {}",
            mp.packets_per_subscriber(),
            dt.packets_per_subscriber()
        );
    }

    #[test]
    fn redundancy_beats_single_path_under_failures() {
        let (topo, wl) = mesh_workload(2);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.08, 9));
        let cfg = RuntimeConfig::paper(SimDuration::from_secs(120), 2);
        let mp = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(1e-4), cfg)
            .run(&mut multipath());
        let dt =
            OverlayRuntime::new(&topo, &wl, failure, LossModel::new(1e-4), cfg).run(&mut d_tree());
        assert!(
            mp.delivery_ratio() > dt.delivery_ratio(),
            "multipath {} must beat D-Tree {} under failures",
            mp.delivery_ratio(),
            dt.delivery_ratio()
        );
        // But it cannot reach the rerouting ceiling: some pairs lose both
        // paths in the same epoch.
        assert!(mp.delivery_ratio() < 1.0);
    }

    #[test]
    fn duplicate_deliveries_count_once() {
        let (topo, wl) = mesh_workload(3);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let cfg = RuntimeConfig::paper(SimDuration::from_secs(10), 3);
        let log = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), cfg)
            .run(&mut multipath());
        // Both copies arrive; the ratio must still be exactly 1.0, not 2.0,
        // and the second copies show up in the duplicate counter.
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!((log.qos_delivery_ratio() - 1.0).abs() < 1e-12);
        assert!(
            log.duplicate_deliveries > 0,
            "multipath's second copies must be counted as duplicates"
        );
    }

    #[test]
    fn disjoint_selection_is_fully_disjoint_and_competitive() {
        let (topo, wl) = mesh_workload(5);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.08, 21));
        let cfg = RuntimeConfig::paper(SimDuration::from_secs(60), 5);
        let mut paper = multipath();
        let mut disjoint = multipath_disjoint();
        assert_eq!(
            disjoint.policy().selection(),
            MultipathSelection::EdgeDisjoint
        );
        let lp =
            OverlayRuntime::new(&topo, &wl, failure, LossModel::new(1e-4), cfg).run(&mut paper);
        let ld =
            OverlayRuntime::new(&topo, &wl, failure, LossModel::new(1e-4), cfg).run(&mut disjoint);
        // Every disjoint pair shares zero links, so its delivery ratio must
        // at least match the heuristic's (up to sampling noise).
        assert!(
            ld.delivery_ratio() >= lp.delivery_ratio() - 0.01,
            "disjoint {} vs paper heuristic {}",
            ld.delivery_ratio(),
            lp.delivery_ratio()
        );
        // Routes really are disjoint.
        for spec in wl.topics() {
            for sub in &spec.subscriptions {
                if let Some(routes) = disjoint.policy().routes_for(spec.publisher, sub.subscriber) {
                    if routes.len() == 2 {
                        let shared: Vec<_> = routes[0]
                            .windows(2)
                            .filter(|w| {
                                routes[1]
                                    .windows(2)
                                    .any(|v| v == *w || (v[0] == w[1] && v[1] == w[0]))
                            })
                            .collect();
                        assert!(shared.is_empty(), "disjoint routes share {shared:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn routes_are_precomputed_per_pair() {
        let (topo, wl) = mesh_workload(4);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let cfg = RuntimeConfig::paper(SimDuration::from_secs(1), 4);
        let mut s = multipath();
        let _ = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), cfg).run(&mut s);
        let spec = &wl.topics()[0];
        let sub = spec.subscriptions[0].subscriber;
        let routes = s.policy().routes_for(spec.publisher, sub).expect("routes");
        assert!(!routes.is_empty() && routes.len() <= 2);
        for r in routes {
            assert_eq!(r.first(), Some(&spec.publisher));
            assert_eq!(r.last(), Some(&sub));
        }
        // In a full mesh the two routes are link-disjoint.
        if routes.len() == 2 {
            assert_ne!(routes[0], routes[1]);
        }
    }
}
