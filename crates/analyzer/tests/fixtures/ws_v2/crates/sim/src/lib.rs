//! Bottom layer: nothing for the analyzer to report.

pub fn tick() {}
