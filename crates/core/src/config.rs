//! DCRD tuning knobs.

use serde::{Deserialize, Serialize};

pub use crate::ordering::OrderingPolicy;

/// What a publisher does when the whole recursive exploration fails (every
/// neighbor tried, packet returned to the publisher, publisher exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PersistenceMode {
    /// Drop the packet (the paper's evaluated, non-persistent mode).
    #[default]
    Disabled,
    /// Park the packet and retry the full exploration when the failure
    /// epoch changes — the paper's sketched persistency mode (§III), which
    /// guarantees delivery under transient partitions at the cost of
    /// storage and extra traffic.
    Retry {
        /// Maximum number of parked retries per packet.
        max_retries: u32,
        /// Delay before each retry, in milliseconds (the paper's failures
        /// last one second, so ≈1000 ms is natural).
        retry_after_ms: u64,
    },
}

/// Convergence parameters for the distributed `⟨d, r⟩` computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagationConfig {
    /// Maximum synchronous gossip rounds.
    pub max_rounds: u32,
    /// Convergence tolerance on `d` (µs).
    pub tolerance_d: f64,
    /// Convergence tolerance on `r`.
    pub tolerance_r: f64,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            max_rounds: 100,
            tolerance_d: 1.0,
            tolerance_r: 1e-9,
        }
    }
}

/// Full DCRD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcrdConfig {
    /// Sending-list ordering (Theorem 1 by default; others for ablation).
    pub ordering: OrderingPolicy,
    /// Whether a broker that exhausts its sending list reroutes the packet
    /// to its upstream node (§III-D). Disabling this (ablation) makes DCRD
    /// a "try my neighbors then drop" scheme.
    pub reroute_upstream: bool,
    /// Safety cap on transmissions one broker spends on one packet; beyond
    /// it the broker gives up on the remaining destinations. Prevents
    /// livelock when the overlay is partitioned for a long time.
    pub max_attempts_per_node: u32,
    /// Cap on a packet's routing-path length as a multiple of the overlay
    /// size. Per-broker state is deleted on every downstream ACK (the
    /// paper's aggressive cleanup), so a packet whose destination is
    /// unreachable can otherwise bounce between brokers indefinitely —
    /// the path record is the one budget that travels with the packet.
    pub max_path_factor: u32,
    /// Publisher-side persistence (paper extension).
    pub persistence: PersistenceMode,
    /// Convergence parameters for the routing-table computation.
    pub propagation: PropagationConfig,
}

impl Default for DcrdConfig {
    fn default() -> Self {
        DcrdConfig {
            ordering: OrderingPolicy::RatioOptimal,
            reroute_upstream: true,
            max_attempts_per_node: 64,
            max_path_factor: 4,
            persistence: PersistenceMode::Disabled,
            propagation: PropagationConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DcrdConfig::default();
        assert_eq!(c.ordering, OrderingPolicy::RatioOptimal);
        assert!(c.reroute_upstream);
        assert_eq!(c.persistence, PersistenceMode::Disabled);
        assert!(c.max_attempts_per_node >= 16);
        assert!(c.propagation.max_rounds >= 10);
    }

    #[test]
    fn persistence_mode_carries_parameters() {
        let p = PersistenceMode::Retry {
            max_retries: 5,
            retry_after_ms: 1000,
        };
        match p {
            PersistenceMode::Retry {
                max_retries,
                retry_after_ms,
            } => {
                assert_eq!(max_retries, 5);
                assert_eq!(retry_after_ms, 1000);
            }
            PersistenceMode::Disabled => panic!("wrong variant"),
        }
    }
}
