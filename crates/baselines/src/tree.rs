//! The tree baselines: R-Tree (minimum hops) and D-Tree (minimum delay).
//!
//! §IV-B of the paper: both build, per publisher, a routing tree that is the
//! union of single-source shortest paths to every subscriber — by hop count
//! for R-Tree ("most reliable": fewer links, fewer failure chances) and by
//! delay for D-Tree. Packets follow the tree with hop-by-hop ACKs and up to
//! `m` transmissions, and are **dropped** when a link fails — trees never
//! reroute, which is precisely their weakness under churn.

use std::collections::BTreeMap;

use dcrd_net::paths::{dijkstra, Metric};
use dcrd_net::NodeId;
use dcrd_pubsub::packet::Packet;
use dcrd_pubsub::strategy::SetupContext;
use dcrd_pubsub::topic::TopicId;
use dcrd_sim::SimTime;

use crate::common::{FailureResponse, HopByHopStrategy, NextHopPolicy};

/// Tree-based next-hop policy; the metric decides R-Tree vs D-Tree.
#[derive(Debug)]
pub struct TreePolicy {
    metric: Metric,
    name: &'static str,
    /// `(topic, publisher, destination, node) → next hop` along the tree —
    /// publisher-qualified so several publishers may share a topic.
    next: BTreeMap<(TopicId, NodeId, NodeId, NodeId), NodeId>,
}

impl TreePolicy {
    /// Creates a policy for `metric`.
    #[must_use]
    pub fn new(metric: Metric) -> Self {
        TreePolicy {
            metric,
            name: match metric {
                Metric::Hops => "R-Tree",
                Metric::Delay => "D-Tree",
            },
            next: BTreeMap::new(),
        }
    }

    /// The shortest-path metric the tree is built with.
    #[must_use]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of precomputed `(topic, dest, node)` forwarding entries.
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.next.len()
    }
}

impl NextHopPolicy for TreePolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn setup(&mut self, ctx: &SetupContext<'_>) {
        self.next.clear();
        for spec in ctx.workload.topics() {
            let sp = dijkstra(ctx.topology, spec.publisher, self.metric);
            for sub in &spec.subscriptions {
                let Some(path) = sp.path_to(sub.subscriber) else {
                    continue; // unreachable: packets to it are given up
                };
                let nodes = path.nodes();
                for w in nodes.windows(2) {
                    self.next
                        .insert((spec.topic, spec.publisher, sub.subscriber, w[0]), w[1]);
                }
            }
        }
    }

    fn next_hop(
        &mut self,
        node: NodeId,
        packet: &Packet,
        dest: NodeId,
        _now: SimTime,
    ) -> Option<NodeId> {
        self.next
            .get(&(packet.topic, packet.publisher, dest, node))
            .copied()
    }

    fn on_failure(&self) -> FailureResponse {
        FailureResponse::GiveUp
    }
}

/// The paper's R-Tree baseline: minimum-hop routing tree per publisher.
pub type RTreeStrategy = HopByHopStrategy<TreePolicy>;

/// The paper's D-Tree baseline: shortest-delay routing tree per publisher.
pub type DTreeStrategy = HopByHopStrategy<TreePolicy>;

/// Creates the R-Tree baseline.
#[must_use]
pub fn r_tree() -> RTreeStrategy {
    HopByHopStrategy::new(TreePolicy::new(Metric::Hops))
}

/// Creates the D-Tree baseline.
#[must_use]
pub fn d_tree() -> DTreeStrategy {
    HopByHopStrategy::new(TreePolicy::new(Metric::Delay))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::failure::{FailureModel, LinkFailureModel};
    use dcrd_net::loss::LossModel;
    use dcrd_net::topology::{full_mesh, DelayRange};
    use dcrd_net::Topology;
    use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig};

    use dcrd_pubsub::workload::{Workload, WorkloadConfig};
    use dcrd_sim::rng::rng_for;
    use dcrd_sim::SimDuration;

    fn mesh_and_workload(seed: u64) -> (Topology, Workload) {
        let mut rng = rng_for(seed, "tree-test");
        let topo = full_mesh(12, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        (topo, wl)
    }

    #[test]
    fn rtree_uses_direct_links_in_mesh() {
        let (topo, wl) = mesh_and_workload(1);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let rt = OverlayRuntime::new(
            &topo,
            &wl,
            failure,
            LossModel::new(0.0),
            RuntimeConfig::paper(SimDuration::from_secs(30), 1),
        );
        let log = rt.run(&mut r_tree());
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
        // Min-hop in a full mesh = the direct link: exactly 1 packet/sub.
        assert!(
            (log.packets_per_subscriber() - 1.0).abs() < 1e-9,
            "R-Tree in a mesh must use direct links, got {}",
            log.packets_per_subscriber()
        );
    }

    #[test]
    fn dtree_uses_shortest_delay_and_meets_deadlines() {
        let (topo, wl) = mesh_and_workload(2);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let rt = OverlayRuntime::new(
            &topo,
            &wl,
            failure,
            LossModel::new(0.0),
            RuntimeConfig::paper(SimDuration::from_secs(30), 2),
        );
        let log = rt.run(&mut d_tree());
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
        // Deadline = 3× shortest delay and D-Tree rides the shortest path:
        // everything is on time in a failure-free network.
        assert!((log.qos_delivery_ratio() - 1.0).abs() < 1e-12);
        // Shortest-delay paths in a mesh are sometimes multi-hop.
        assert!(log.packets_per_subscriber() >= 1.0);
    }

    #[test]
    fn trees_degrade_linearly_with_failures() {
        let (topo, wl) = mesh_and_workload(3);
        for (pf, floor, ceil) in [(0.02, 0.93, 1.0), (0.08, 0.80, 0.97)] {
            let failure = FailureModel::links_only(LinkFailureModel::new(pf, 7));
            let rt = OverlayRuntime::new(
                &topo,
                &wl,
                failure,
                LossModel::new(1e-4),
                RuntimeConfig::paper(SimDuration::from_secs(60), 3),
            );
            let log = rt.run(&mut r_tree());
            let ratio = log.delivery_ratio();
            assert!(
                (floor..=ceil).contains(&ratio),
                "pf={pf}: R-Tree delivery {ratio} outside [{floor}, {ceil}]"
            );
        }
    }

    #[test]
    fn rtree_beats_dtree_under_failures_in_mesh() {
        // R-Tree always uses 1 hop in a mesh; D-Tree often 2+ hops, each an
        // independent failure opportunity (the paper's Fig. 2a ordering).
        let (topo, wl) = mesh_and_workload(4);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.08, 11));
        let cfg = RuntimeConfig::paper(SimDuration::from_secs(120), 4);
        let r =
            OverlayRuntime::new(&topo, &wl, failure, LossModel::new(1e-4), cfg).run(&mut r_tree());
        let d =
            OverlayRuntime::new(&topo, &wl, failure, LossModel::new(1e-4), cfg).run(&mut d_tree());
        assert!(
            r.delivery_ratio() >= d.delivery_ratio(),
            "R-Tree {} should not lose to D-Tree {} in a mesh",
            r.delivery_ratio(),
            d.delivery_ratio()
        );
    }

    #[test]
    fn policy_accessors() {
        let p = TreePolicy::new(Metric::Hops);
        assert_eq!(p.metric(), Metric::Hops);
        assert_eq!(p.name(), "R-Tree");
        assert_eq!(p.num_entries(), 0);
        assert_eq!(TreePolicy::new(Metric::Delay).name(), "D-Tree");
        assert_eq!(p.on_failure(), FailureResponse::GiveUp);
    }
}
