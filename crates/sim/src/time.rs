//! Simulated time.
//!
//! All simulated timestamps are microseconds since the start of the run,
//! stored in a `u64`. Microsecond resolution comfortably covers the paper's
//! regime (link delays of 10–50 ms, runs of hours) without floating-point
//! drift, and integer timestamps make event ordering exact.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time (microseconds since the run started).
///
/// # Example
///
/// ```
/// use dcrd_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(30);
/// assert_eq!(t.as_micros(), 30_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
///
/// # Example
///
/// ```
/// use dcrd_sim::SimDuration;
///
/// let d = SimDuration::from_millis(10) * 3;
/// assert_eq!(d.as_secs_f64(), 0.03);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since the start of the run.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from milliseconds since the start of the run,
    /// saturating at [`SimTime::MAX`].
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis.saturating_mul(1_000))
    }

    /// Creates an instant from whole seconds since the start of the run,
    /// saturating at [`SimTime::MAX`].
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(1_000_000))
    }

    /// Returns the instant as microseconds since the start of the run.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds, saturating at
    /// [`SimDuration::MAX`].
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000))
    }

    /// Creates a duration from whole seconds, saturating at
    /// [`SimDuration::MAX`].
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000))
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Returns the duration in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (possibly fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration in (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a non-negative float, rounding to the nearest
    /// microsecond. A negative, NaN, or infinite factor is sanitized to
    /// zero (debug builds assert the caller never passes one).
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        debug_assert!(
            factor >= 0.0 && factor.is_finite(),
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        let factor = if factor.is_finite() && factor >= 0.0 {
            factor
        } else {
            0.0
        };
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t0 = SimTime::from_millis(10);
        let d = SimDuration::from_millis(25);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.as_micros(), 35_000);
        let mut t2 = t0;
        t2 += d;
        assert_eq!(t2, t1);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(
            SimDuration::from_secs_f64(0.0305),
            SimDuration::from_micros(30_500)
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_millis(1).mul_f64(-0.5);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_millis(5);
        let late = SimTime::from_millis(9);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500000s");
    }

    #[test]
    fn constructors_saturate_instead_of_overflowing() {
        assert_eq!(SimTime::from_millis(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime::MAX);
        assert_eq!(SimDuration::from_millis(u64::MAX), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration::MAX);
        assert_eq!(SimTime::MAX + SimDuration::MAX, SimTime::MAX);
        assert_eq!(SimDuration::MAX * 7, SimDuration::MAX);
    }

    #[test]
    fn ordering_matches_micros() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
        assert_eq!(SimTime::ZERO.min(SimTime::MAX), SimTime::ZERO);
    }
}
