//! The hostile-study acceptance gate, run by CI in release mode: the
//! whole flash-crowd sweep at smoke quality, checking the overload
//! promises from `DESIGN.md` — bounded queues shed under the 4× crowd,
//! every least-slack shed is justified (doomed traffic only), in-slack
//! delivery stays ≥ 0.99, and reruns reproduce their trace digests
//! byte-for-byte.

use dcrd_experiments::hostile::{
    hostile_config, hostile_report, hostile_scenario, BURST_MULTIPLIER_SWEEP, QUEUE_LIMIT,
};
use dcrd_experiments::runner::run_traced;
use dcrd_experiments::scenario::{Quality, Scenario};
use dcrd_experiments::StrategyKind;
use dcrd_pubsub::runtime::ShedPolicy;

/// In-slack delivery (delivery among pairs whose deadline was still
/// satisfiable) the least-slack arm must hold through the 4× crowd.
const IN_SLACK_FLOOR: f64 = 0.99;

/// The least-slack arm of one intensity, with the hostile router config.
fn least_slack_arm(multiplier: u32) -> Scenario {
    Scenario {
        dcrd: hostile_config(),
        ..hostile_scenario(Quality::Smoke, multiplier)
            .bounded_queues(QUEUE_LIMIT, ShedPolicy::LeastSlack)
            .build()
    }
}

/// One pass over the whole sweep: shape, the per-arm auditor verdicts,
/// a clean 1× baseline, and the 4× overload gates.
#[test]
fn hostile_sweep_sheds_gracefully_under_the_flash_crowd() {
    let report = hostile_report(Quality::Smoke);
    let series = &report.series;
    assert_eq!(series.points.len(), BURST_MULTIPLIER_SWEEP.len());
    assert_eq!(
        series.strategy_names(),
        ["DCRD-least-slack", "DCRD-tail-drop", "DCRD-unbounded"]
    );

    // Delay-cognizant shedding only ever drops doomed traffic, and the
    // unbounded control sheds nothing, so both must audit clean. The
    // tail-drop arm is *expected* dirty: the auditor indicting the
    // slack-blind policy with `UnjustifiedShed` is the ablation's result.
    assert_eq!(
        report.least_slack_violations, 0,
        "auditor flagged a least-slack shed as unjustified"
    );
    assert_eq!(
        report.unbounded_violations, 0,
        "auditor flagged the shed-nothing control"
    );
    assert!(
        report.tail_drop_violations > 0,
        "tail-drop shed under a 4x flash crowd without the auditor noticing"
    );
    assert!(report.total_sheds > 0, "the sweep never overflowed a queue");

    // Nominal load is a true baseline: no burst, no sheds, full delivery.
    let nominal = &series.points[0];
    assert_eq!(nominal.x, 1.0);
    for arm in &nominal.strategies {
        assert_eq!(arm.sheds(), 0, "{} shed at nominal load", arm.name());
        assert!(
            arm.delivery_ratio() >= 1.0 - 1e-12,
            "{} lost packets on clean links at nominal load: {:.4}",
            arm.name(),
            arm.delivery_ratio()
        );
    }

    // The acceptance point: 4x the nominal rate within the queue budget.
    let crowd = series
        .points
        .iter()
        .find(|p| p.x == 4.0)
        .expect("sweep reaches the 4x acceptance multiplier");
    let least_slack = &crowd.strategies[0];
    assert!(
        least_slack.sheds() > 0,
        "4x flash crowd never overflowed a {QUEUE_LIMIT}-slot queue"
    );
    assert_eq!(
        least_slack.doomed_sheds(),
        least_slack.sheds(),
        "least-slack shed a packet that could still have met its deadline"
    );
    assert!(
        least_slack.in_slack_delivery_ratio() >= IN_SLACK_FLOOR,
        "in-slack delivery {:.4} under the 4x crowd (gate: >= {IN_SLACK_FLOOR})",
        least_slack.in_slack_delivery_ratio()
    );
}

/// Rerunning any repetition of the acceptance scenario reproduces its
/// transmission trace digest byte-for-byte, and the flash crowd actually
/// changes the trace (the 4x schedule is wired, not a no-op).
#[test]
fn hostile_runs_reproduce_their_trace_digests() {
    let crowd = least_slack_arm(4);
    let baseline = least_slack_arm(1);
    for rep in 0..crowd.repetitions {
        let (first, digest) = run_traced(&crowd, StrategyKind::Dcrd, rep);
        let (again, redigest) = run_traced(&crowd, StrategyKind::Dcrd, rep);
        assert_ne!(digest, 0, "trace capture produced no events");
        assert_eq!(
            digest, redigest,
            "rep {rep} digest {digest:#018x} != rerun {redigest:#018x}"
        );
        assert_eq!(
            first.delivery_ratio().to_bits(),
            again.delivery_ratio().to_bits()
        );
        assert_eq!(first.sheds(), again.sheds());

        let (_, calm) = run_traced(&baseline, StrategyKind::Dcrd, rep);
        assert_ne!(digest, calm, "4x burst left the trace identical to 1x");
    }
}
