//! Deterministic seed derivation.
//!
//! Large experiments need many independent random streams (one per
//! topology, per failure schedule, per publisher, ...). Deriving them all
//! from a single experiment seed keeps whole runs reproducible while
//! guaranteeing the streams don't accidentally correlate: each stream's
//! seed is the SplitMix64 hash of the parent seed and a label.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step — a high-quality 64-bit mixer (Steele et al., used by
/// `rand` itself to seed from small entropy).
#[inline]
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Distinct `(seed, label)` pairs map to (practically) distinct, decorrelated
/// child seeds; equal pairs always map to the same child seed.
///
/// # Example
///
/// ```
/// use dcrd_sim::rng::derive_seed;
///
/// let a = derive_seed(42, "failures");
/// let b = derive_seed(42, "workload");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "failures"));
/// ```
#[must_use]
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h = splitmix64(seed ^ 0xD6E8_FEB8_6659_FD93);
    for &byte in label.as_bytes() {
        h = splitmix64(h ^ u64::from(byte));
    }
    // One extra round so short labels still fully avalanche.
    splitmix64(h ^ label.len() as u64)
}

/// Derives a child seed from a parent seed and an index (e.g. a repetition
/// number or node id).
#[must_use]
pub fn derive_seed_indexed(seed: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(seed, label) ^ splitmix64(index))
}

/// Creates a fast deterministic RNG from a parent seed and label.
#[must_use]
pub fn rng_for(seed: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(seed, label))
}

/// Creates a fast deterministic RNG from a parent seed, label and index.
#[must_use]
pub fn rng_for_indexed(seed: u64, label: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed_indexed(seed, label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(7, "x"), derive_seed(7, "x"));
        assert_eq!(
            derive_seed_indexed(7, "x", 3),
            derive_seed_indexed(7, "x", 3)
        );
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive_seed(7, "x"), derive_seed(7, "y"));
        assert_ne!(derive_seed(7, "x"), derive_seed(8, "x"));
        assert_ne!(derive_seed(7, "ab"), derive_seed(7, "ba"));
        assert_ne!(
            derive_seed_indexed(7, "x", 0),
            derive_seed_indexed(7, "x", 1)
        );
    }

    #[test]
    fn empty_and_prefix_labels_differ() {
        assert_ne!(derive_seed(7, ""), derive_seed(7, "a"));
        assert_ne!(derive_seed(7, "a"), derive_seed(7, "aa"));
    }

    #[test]
    fn derived_seeds_have_no_obvious_collisions() {
        let mut seen = HashSet::new();
        for seed in 0..100u64 {
            for idx in 0..100u64 {
                assert!(seen.insert(derive_seed_indexed(seed, "rep", idx)));
            }
        }
    }

    #[test]
    fn rngs_reproduce_streams() {
        let mut a = rng_for(99, "s");
        let mut b = rng_for(99, "s");
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);

        let mut c = rng_for_indexed(99, "s", 1);
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn splitmix_avalanche_sanity() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = derive_seed(0x1234_5678, "avalanche");
        let y = derive_seed(0x1234_5679, "avalanche");
        let flipped = (x ^ y).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "weak avalanche: {flipped} bits"
        );
    }
}
