//! Macro hot-path benchmark: end-to-end DCRD events/sec on random
//! degree-k overlays, in two tiers (64 and 1024 brokers).
//!
//! Unlike the criterion micro-benches this measures the whole event loop —
//! queue, router, failure/loss models, ACK bookkeeping — and writes a
//! machine-readable `BENCH_hotpath.json` so every PR leaves a throughput
//! trajectory to compare against.
//!
//! ```text
//! cargo run --release -p dcrd-bench --bin hotpath -- [--quick] \
//!     [--tier 64|1k] [--out BENCH_hotpath.json] [--check BASELINE.json]
//! ```
//!
//! `--check` fails the process (exit 1) when any tier's events/sec
//! regresses more than 20% below the same tier in the baseline file; CI
//! runs `--quick --check` against the checked-in baseline.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dcrd_core::{DcrdConfig, DcrdStrategy};
use dcrd_net::failure::{FailureModel, LinkFailureModel, LinkOutageModel};
use dcrd_net::loss::LossModel;
use dcrd_net::topology::{random_connected, DelayRange};
use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig};
use dcrd_pubsub::workload::{Workload, WorkloadConfig};
use dcrd_sim::rng::rng_for;
use dcrd_sim::SimDuration;

/// Global allocator that counts allocations (not bytes): the benchmark
/// reports allocs/hop, the number the zero-copy fan-out is meant to shrink.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SEED: u64 = 4242;
const PF: f64 = 0.05;
const PL: f64 = 0.01;
const REGRESSION_TOLERANCE: f64 = 0.20;

/// The 1k tier's events/sec measured on the map-adjacency / binary-heap
/// engine (the commit preceding the CSR + struct-of-arrays + timer-wheel
/// rebuild), full mode, on the reference machine. The refactor's
/// acceptance bar is ≥ 2× this number; the value is recorded into the
/// JSON so the ratio travels with every run.
const MAP_BASELINE_1K_EPS: f64 = 36561.0;

/// One benchmark tier: a fixed scenario shape at a given broker count.
struct Tier {
    name: &'static str,
    nodes: usize,
    degree: usize,
    topics: usize,
    /// (reps, simulated seconds per rep) in full mode.
    full: (u64, u64),
    /// (reps, simulated seconds per rep) in quick mode.
    quick: (u64, u64),
    /// Simulated seconds of the untimed warm-up rep (0 = skip).
    warmup_secs: u64,
    /// Pre-refactor map-based engine baseline, when one was recorded.
    map_baseline_eps: Option<f64>,
}

const TIERS: &[Tier] = &[
    Tier {
        name: "64",
        nodes: 64,
        degree: 6,
        topics: 16,
        full: (5, 30),
        quick: (2, 10),
        warmup_secs: 5,
        map_baseline_eps: None,
    },
    Tier {
        name: "1k",
        nodes: 1024,
        degree: 8,
        topics: 16,
        full: (2, 10),
        quick: (1, 5),
        warmup_secs: 0,
        map_baseline_eps: Some(MAP_BASELINE_1K_EPS),
    },
];

struct RunStats {
    events: u64,
    hops: u64,
    wall_ns: u128,
    allocs: u64,
}

/// One full simulation of a tier's fixed scenario; `rep` varies the seeds
/// so repetitions are independent but each is fully deterministic.
fn run_rep(tier: &Tier, rep: u64, duration_secs: u64) -> RunStats {
    let seed = SEED.wrapping_add(rep);
    let topo = random_connected(
        tier.nodes,
        tier.degree,
        DelayRange::PAPER,
        &mut rng_for(seed, "topo"),
    );
    let workload = Workload::generate(
        &topo,
        &WorkloadConfig {
            num_topics: tier.topics,
            ..WorkloadConfig::PAPER
        },
        &mut rng_for(seed, "workload"),
    );
    let links = LinkOutageModel::Epoch(LinkFailureModel::new(PF, seed ^ 0xF00D));
    let failure = FailureModel::new(links, None);
    let config = RuntimeConfig::paper(SimDuration::from_secs(duration_secs), seed);
    let runtime = OverlayRuntime::new(&topo, &workload, failure, LossModel::new(PL), config);
    let mut strategy = DcrdStrategy::new(DcrdConfig::default());

    let allocs_before = ALLOC_COUNT.load(Ordering::Relaxed);
    let start = Instant::now();
    let log = runtime.run(&mut strategy);
    let wall_ns = start.elapsed().as_nanos();
    let allocs = ALLOC_COUNT.load(Ordering::Relaxed) - allocs_before;

    assert!(log.messages_published > 0, "benchmark produced no traffic");
    RunStats {
        events: log.events_processed,
        hops: log.data_sends,
        wall_ns,
        allocs,
    }
}

/// Extracts `"key": <number>` from JSON text starting at `from`, without a
/// JSON dependency (the baseline file is machine-written by this binary).
fn json_number_at(text: &str, key: &str, from: usize) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = from + text[from..].find(&needle)?;
    let rest = text[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a per-tier number: finds the `"tier": "<name>"` marker and
/// reads the first `"key"` after it.
fn tier_number(text: &str, tier: &str, key: &str) -> Option<f64> {
    let marker = format!("\"tier\": \"{tier}\"");
    let at = text.find(&marker)?;
    json_number_at(text, key, at)
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_hotpath.json");
    let mut check_path: Option<String> = None;
    let mut only_tier: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            "--tier" => only_tier = Some(args.next().expect("--tier needs a name")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let mode = if quick { "quick" } else { "full" };
    let mut tier_jsons: Vec<String> = Vec::new();
    let mut results: Vec<(&'static str, f64)> = Vec::new();

    for tier in TIERS {
        if only_tier.as_ref().is_some_and(|t| t != tier.name) {
            continue;
        }
        let (reps, duration_secs) = if quick { tier.quick } else { tier.full };
        if tier.warmup_secs > 0 {
            // Warm up caches and the allocator before the timed reps.
            let _ = run_rep(tier, 999, tier.warmup_secs);
        }

        let mut events = 0u64;
        let mut hops = 0u64;
        let mut wall_ns = 0u128;
        let mut allocs = 0u64;
        for rep in 0..reps {
            let s = run_rep(tier, rep, duration_secs);
            events += s.events;
            hops += s.hops;
            wall_ns += s.wall_ns;
            allocs += s.allocs;
        }

        let wall_secs = wall_ns as f64 / 1e9;
        let events_per_sec = events as f64 / wall_secs;
        let ns_per_hop = wall_ns as f64 / hops as f64;
        let allocs_per_hop = allocs as f64 / hops as f64;

        let baseline_field = tier
            .map_baseline_eps
            .map(|b| format!(",\n      \"map_baseline_events_per_sec\": {b:.1}"))
            .unwrap_or_default();
        tier_jsons.push(format!(
            "    {{\n      \"tier\": \"{}\",\n      \"nodes\": {},\n      \"degree\": {},\n      \
             \"topics\": {},\n      \"reps\": {reps},\n      \
             \"sim_secs_per_rep\": {duration_secs},\n      \"events\": {events},\n      \
             \"hops\": {hops},\n      \"wall_ms\": {:.3},\n      \
             \"events_per_sec\": {events_per_sec:.1},\n      \"ns_per_hop\": {ns_per_hop:.1},\n      \
             \"allocs_per_hop\": {allocs_per_hop:.2}{baseline_field}\n    }}",
            tier.name,
            tier.nodes,
            tier.degree,
            tier.topics,
            wall_ns as f64 / 1e6,
        ));
        results.push((tier.name, events_per_sec));
        println!(
            "hotpath[{}]: {events} events / {hops} hops in {:.1} ms -> {events_per_sec:.0} \
             events/s, {ns_per_hop:.0} ns/hop, {allocs_per_hop:.2} allocs/hop",
            tier.name,
            wall_ns as f64 / 1e6
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"mode\": \"{mode}\",\n  \"tiers\": [\n{}\n  ]\n}}\n",
        tier_jsons.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let baseline_text = std::fs::read_to_string(&path).expect("read baseline");
        // Quick and full mode amortize the per-rep table build over very
        // different sim durations; comparing across modes is meaningless.
        let mode_marker = format!("\"mode\": \"{mode}\"");
        assert!(
            baseline_text.contains(&mode_marker),
            "baseline {path} was not recorded in the current mode; \
             regenerate it with the same --quick setting"
        );
        let mut failed = false;
        for (name, events_per_sec) in &results {
            let Some(baseline) = tier_number(&baseline_text, name, "events_per_sec") else {
                println!("tier {name}: no baseline entry, skipping gate");
                continue;
            };
            let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
            if *events_per_sec < floor {
                eprintln!(
                    "REGRESSION[{name}]: {events_per_sec:.0} events/s is more than 20% below \
                     the baseline {baseline:.0} (floor {floor:.0})"
                );
                failed = true;
            } else {
                println!(
                    "tier {name}: within tolerance of baseline {baseline:.0} events/s \
                     (floor {floor:.0})"
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
