//! Integration tests of DCRD's delivery guarantee (§III): "packets are
//! delivered as long as there exists a path between the publisher and
//! subscriber", plus the persistence and node-failure extensions.

use dcrd::core::{DcrdConfig, DcrdStrategy, PersistenceMode};
use dcrd::experiments::runner::{build_topology, build_workload, run_scenario, StrategyKind};
use dcrd::experiments::scenario::ScenarioBuilder;
use dcrd::net::failure::{FailureModel, LinkFailureModel, NodeFailureModel};
use dcrd::net::loss::LossModel;
use dcrd::pubsub::runtime::{OverlayRuntime, RuntimeConfig};
use dcrd::sim::SimDuration;

/// With no failures and only the paper's 1e-4 random loss, DCRD's
/// ACK/retry machinery must deliver *everything* (switching to another
/// neighbor recovers a lost transmission).
#[test]
fn zero_failure_delivery_is_complete() {
    let scenario = ScenarioBuilder::new()
        .nodes(20)
        .full_mesh()
        .failure_probability(0.0)
        .duration_secs(120)
        .repetitions(2)
        .seed(5)
        .build();
    let agg = run_scenario(&scenario, StrategyKind::Dcrd);
    assert!(
        agg.delivery_ratio() >= 0.99999,
        "lossless-epoch delivery {}",
        agg.delivery_ratio()
    );
}

/// In a well-connected mesh the failure epochs practically never partition
/// the graph, so DCRD's delivery ratio must stay ≥ 99.9% even at Pf = 0.1.
#[test]
fn mesh_delivery_is_nearly_guaranteed_under_heavy_failures() {
    let scenario = ScenarioBuilder::new()
        .nodes(20)
        .full_mesh()
        .failure_probability(0.1)
        .duration_secs(120)
        .repetitions(2)
        .seed(17)
        .build();
    let agg = run_scenario(&scenario, StrategyKind::Dcrd);
    assert!(
        agg.delivery_ratio() > 0.999,
        "mesh delivery under pf=0.1: {}",
        agg.delivery_ratio()
    );
}

/// The persistence extension closes the gap in sparse overlays where whole
/// epochs can cut the only path.
#[test]
fn persistence_recovers_partition_losses() {
    let base = ScenarioBuilder::new()
        .nodes(12)
        .degree(3)
        .failure_probability(0.15)
        .duration_secs(120)
        .repetitions(2)
        .seed(29);
    let plain = base.clone().build();
    let persistent = base
        .dcrd(DcrdConfig {
            persistence: PersistenceMode::Retry {
                max_retries: 20,
                retry_after_ms: 1000,
            },
            ..DcrdConfig::default()
        })
        .build();
    let plain_agg = run_scenario(&plain, StrategyKind::Dcrd);
    let persist_agg = run_scenario(&persistent, StrategyKind::Dcrd);
    assert!(
        persist_agg.delivery_ratio() > plain_agg.delivery_ratio(),
        "persistence {} must beat plain {}",
        persist_agg.delivery_ratio(),
        plain_agg.delivery_ratio()
    );
    assert!(
        persist_agg.delivery_ratio() > 0.995,
        "persistent delivery {}",
        persist_agg.delivery_ratio()
    );
}

/// Node-failure extension (§V future work): fail-stop broker outages take
/// down all incident links at once; DCRD still reroutes around them far
/// better than a fixed tree.
#[test]
fn node_failures_reroute_better_than_trees() {
    let scenario = ScenarioBuilder::new()
        .nodes(20)
        .degree(6)
        .failure_probability(0.02)
        .duration_secs(90)
        .seed(37)
        .build();
    let topo = build_topology(&scenario, 0);
    let workload = build_workload(&scenario, &topo, 0);
    let failure = FailureModel::with_node_failures(
        LinkFailureModel::new(0.02, 0xAB),
        NodeFailureModel::new(0.03, 0xCD),
    );
    let config = RuntimeConfig::paper(SimDuration::from_secs(90), 19);

    let mut dcrd = DcrdStrategy::new(DcrdConfig::default());
    let dcrd_log = OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config)
        .run(&mut dcrd);
    let mut tree = dcrd::baselines::tree::d_tree();
    let tree_log = OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config)
        .run(&mut tree);

    assert!(
        dcrd_log.delivery_ratio() > tree_log.delivery_ratio() + 0.03,
        "with node failures DCRD {} must clearly beat D-Tree {}",
        dcrd_log.delivery_ratio(),
        tree_log.delivery_ratio()
    );
    // Subscribers on failed nodes are unreachable during their outages, so
    // even DCRD cannot reach 100% — sanity-check the model actually bites.
    assert!(dcrd_log.delivery_ratio() < 0.9999);
}

/// Give-up accounting: every undelivered pair in a mesh run should have an
/// explicit `gave_up` mark or still have been delivered — nothing vanishes
/// silently.
#[test]
fn undelivered_pairs_are_accounted_for() {
    let scenario = ScenarioBuilder::new()
        .nodes(12)
        .degree(3)
        .failure_probability(0.2)
        .duration_secs(60)
        .seed(43)
        .build();
    let topo = build_topology(&scenario, 0);
    let workload = build_workload(&scenario, &topo, 0);
    let failure = FailureModel::links_only(LinkFailureModel::new(0.2, 0x77));
    let config = RuntimeConfig::paper(SimDuration::from_secs(60), 91);
    let mut dcrd = DcrdStrategy::new(DcrdConfig::default());
    let log = OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config)
        .run(&mut dcrd);

    let mut undelivered = 0;
    let mut unexplained = 0;
    for (_, exp) in log.expectations() {
        if exp.delivered.is_none() {
            undelivered += 1;
            if !exp.gave_up {
                unexplained += 1;
            }
        }
    }
    assert!(undelivered > 0, "this harsh setup should drop something");
    // A small number of pairs can be cut off by the end-of-run grace
    // period while still in flight; everything else must carry a give-up.
    assert!(
        (unexplained as f64) < 0.1 * undelivered as f64 + 5.0,
        "{unexplained}/{undelivered} undelivered pairs lack a give-up record"
    );
}
