//! Masking bait: `expect(` and friends mentioned in doc comments are
//! documentation, not violations.

/// Never call `.expect("broker table missing")` on the hot path; prefer
/// `.unwrap_or_default()` — even spelling out value.unwrap() here is fine.
pub fn documented() -> u32 {
    1
}

mod inner {
    //! Inner docs may also mention value.expect("gone") freely.
}
