//! Scripted white-box tests of the DCRD router: drive the strategy's
//! callbacks directly (no simulator) and inspect the exact actions it
//! emits, pinning Algorithm 2's per-step behavior.

use dcrd_core::{DcrdConfig, DcrdStrategy, DurabilityMode, RecoveryConfig};
use dcrd_net::estimate::analytic_estimates;
use dcrd_net::failure::{FailureModel, LinkFailureModel};
use dcrd_net::graph::TopologyBuilder;
use dcrd_net::{NodeId, Topology};
use dcrd_pubsub::packet::{Packet, PacketId};
use dcrd_pubsub::strategy::{Action, Actions, RoutingStrategy, RunParams, SetupContext, TimerKey};
use dcrd_pubsub::topic::{Subscription, TopicId};
use dcrd_pubsub::workload::{TopicSpec, Workload};
use dcrd_sim::{SimDuration, SimTime};

/// Line 0—1—2—3 with 10 ms links; topic 0 published by node 0, subscribers
/// per test.
fn line4() -> Topology {
    let mut b = TopologyBuilder::new(4);
    let n = b.nodes();
    b.link(n[0], n[1], SimDuration::from_millis(10));
    b.link(n[1], n[2], SimDuration::from_millis(10));
    b.link(n[2], n[3], SimDuration::from_millis(10));
    b.build()
}

/// Diamond: 0 connects to 1 and 2; both connect to 3.
fn diamond() -> Topology {
    let mut b = TopologyBuilder::new(4);
    let n = b.nodes();
    b.link(n[0], n[1], SimDuration::from_millis(10));
    b.link(n[0], n[2], SimDuration::from_millis(20));
    b.link(n[1], n[3], SimDuration::from_millis(10));
    b.link(n[2], n[3], SimDuration::from_millis(10));
    b.build()
}

struct Harness {
    topo: Topology,
    workload: Workload,
    strategy: DcrdStrategy,
}

impl Harness {
    fn new(topo: Topology, subscribers: &[usize], config: DcrdConfig) -> Self {
        let workload = Workload::from_topics(vec![TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: subscribers
                .iter()
                .map(|&s| Subscription::new(topo.node(s), SimDuration::from_millis(500)))
                .collect(),
            burst: None,
        }]);
        let mut harness = Harness {
            topo,
            workload,
            strategy: DcrdStrategy::new(config),
        };
        let estimates = analytic_estimates(&harness.topo, 0.05, 0.0);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.05, 1));
        let ctx = SetupContext {
            topology: &harness.topo,
            estimates: &estimates,
            workload: &harness.workload,
            failure_oracle: &failure,
            params: RunParams::default(),
        };
        harness.strategy.setup(&ctx);
        harness
    }

    fn publish(&mut self, subscribers: &[usize]) -> (Packet, Vec<Action>) {
        let packet = Packet::new(
            PacketId::new(1),
            TopicId::new(0),
            self.topo.node(0),
            SimTime::ZERO,
            subscribers.iter().map(|&s| self.topo.node(s)).collect(),
        );
        let mut out = Actions::new();
        self.strategy
            .on_publish(self.topo.node(0), packet.clone(), SimTime::ZERO, &mut out);
        (packet, out.drain().collect())
    }
}

fn sends(actions: &[Action]) -> Vec<(&Packet, NodeId)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Send { to, packet } => Some((packet, *to)),
            _ => None,
        })
        .collect()
}

fn timers(actions: &[Action]) -> Vec<TimerKey> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::SetTimer { key, .. } => Some(*key),
            _ => None,
        })
        .collect()
}

#[test]
fn publish_sends_one_merged_packet_down_the_line() {
    let topo = line4();
    let mut h = Harness::new(topo, &[2, 3], DcrdConfig::default());
    let (_, actions) = h.publish(&[2, 3]);
    let s = sends(&actions);
    // Both subscribers share next hop 1 → a single transmission.
    assert_eq!(s.len(), 1, "destinations sharing a hop must merge");
    let (pkt, to) = s[0];
    assert_eq!(to, NodeId::new(1));
    assert_eq!(pkt.destinations.len(), 2);
    assert_eq!(pkt.path, vec![NodeId::new(0)], "sender appends itself");
    // Exactly one ACK timer armed, tagged like the sent packet.
    let t = timers(&actions);
    assert_eq!(t.len(), 1);
    assert_eq!(t[0].packet, pkt.id);
    assert_eq!(t[0].tag, pkt.tag);
}

#[test]
fn timeout_moves_to_next_neighbor_and_records_giveup_at_source_exhaustion() {
    let topo = line4();
    let mut h = Harness::new(topo, &[3], DcrdConfig::default());
    let (_, actions) = h.publish(&[3]);
    let s = sends(&actions);
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].1, NodeId::new(1), "line: only neighbor is 1");
    let key = timers(&actions)[0];

    // Timer fires with no ACK → node 0 has no other neighbor and no
    // upstream → give up (non-persistent mode).
    let mut out = Actions::new();
    h.strategy
        .on_timer(NodeId::new(0), key, SimTime::from_millis(30), &mut out);
    let actions: Vec<Action> = out.drain().collect();
    assert!(sends(&actions).is_empty(), "nothing left to try");
    assert!(
        actions.iter().any(
            |a| matches!(a, Action::GiveUp { destination, .. } if *destination == NodeId::new(3))
        ),
        "publisher exhaustion must emit GiveUp"
    );
    assert_eq!(
        h.strategy.inflight_states(),
        0,
        "state reclaimed after give-up"
    );
}

#[test]
fn ack_clears_pending_and_reclaims_state() {
    let topo = line4();
    let mut h = Harness::new(topo, &[3], DcrdConfig::default());
    let (_, actions) = h.publish(&[3]);
    let (sent, to) = sends(&actions)[0];
    let sent = sent.clone();
    assert_eq!(h.strategy.inflight_states(), 1);

    let mut out = Actions::new();
    h.strategy.on_ack(
        NodeId::new(0),
        to,
        &sent,
        SimTime::from_millis(20),
        &mut out,
    );
    assert!(out.is_empty(), "ACK handling emits no actions");
    assert_eq!(
        h.strategy.inflight_states(),
        0,
        "ACK deletes the copy (§III)"
    );

    // The stale timer that was armed for this send must now be a no-op.
    let key = TimerKey {
        packet: sent.id,
        tag: sent.tag,
    };
    let mut out = Actions::new();
    h.strategy
        .on_timer(NodeId::new(0), key, SimTime::from_millis(30), &mut out);
    assert!(out.is_empty(), "stale timer after ACK must do nothing");
}

#[test]
fn diamond_timeout_fails_over_to_second_neighbor() {
    let topo = diamond();
    let mut h = Harness::new(topo, &[3], DcrdConfig::default());
    let (_, actions) = h.publish(&[3]);
    let first = sends(&actions)[0].1;
    // Theorem 1 puts the 10ms+10ms route via node 1 first.
    assert_eq!(first, NodeId::new(1));
    let key = timers(&actions)[0];

    let mut out = Actions::new();
    h.strategy
        .on_timer(NodeId::new(0), key, SimTime::from_millis(25), &mut out);
    let actions: Vec<Action> = out.drain().collect();
    let s = sends(&actions);
    assert_eq!(s.len(), 1, "failover transmission expected");
    assert_eq!(s[0].1, NodeId::new(2), "second-best neighbor tried next");
    // The failed neighbor is NOT on the packet's path (it never handled the
    // packet) — exclusion comes from the tried set, which this proves.
    assert!(!s[0].0.path.contains(NodeId::new(1)));
}

#[test]
fn returned_packet_is_retried_via_alternative() {
    let topo = diamond();
    let mut h = Harness::new(topo, &[3], DcrdConfig::default());
    let (_, actions) = h.publish(&[3]);
    let (sent, to) = sends(&actions)[0];
    let sent = sent.clone();
    assert_eq!(to, NodeId::new(1));

    // Node 1 ACKs, node 0 forgets the packet.
    let mut out = Actions::new();
    h.strategy.on_ack(
        NodeId::new(0),
        to,
        &sent,
        SimTime::from_millis(20),
        &mut out,
    );
    assert_eq!(h.strategy.inflight_states(), 0);

    // Node 1 fails downstream and returns the packet: path [0, 1].
    let returned = sent.forward(NodeId::new(1), vec![NodeId::new(3)], 999);
    let mut out = Actions::new();
    h.strategy.on_packet(
        NodeId::new(0),
        NodeId::new(1),
        returned,
        SimTime::from_millis(60),
        &mut out,
    );
    let actions: Vec<Action> = out.drain().collect();
    let s = sends(&actions);
    assert_eq!(s.len(), 1);
    assert_eq!(
        s[0].1,
        NodeId::new(2),
        "the returned packet must take the untried alternative"
    );
    assert!(s[0].0.path.contains(NodeId::new(1)), "path history kept");
}

#[test]
fn m2_retransmits_once_before_failover() {
    let topo = diamond();
    let mut h = Harness::new(topo, &[3], DcrdConfig::default());
    // Override m via a fresh setup with m = 2.
    let estimates = analytic_estimates(&h.topo, 0.05, 0.0);
    let failure = FailureModel::links_only(LinkFailureModel::new(0.05, 1));
    let ctx = SetupContext {
        topology: &h.topo,
        estimates: &estimates,
        workload: &h.workload,
        failure_oracle: &failure,
        params: RunParams {
            m: 2,
            ack_timeout_factor: 1.0,
            ..RunParams::default()
        },
    };
    h.strategy.setup(&ctx);

    let (_, actions) = h.publish(&[3]);
    let key = timers(&actions)[0];
    assert_eq!(sends(&actions)[0].1, NodeId::new(1));

    // First timeout: retransmission to the SAME neighbor, same tag.
    let mut out = Actions::new();
    h.strategy
        .on_timer(NodeId::new(0), key, SimTime::from_millis(25), &mut out);
    let retry: Vec<Action> = out.drain().collect();
    assert_eq!(sends(&retry)[0].1, NodeId::new(1), "m=2 retransmits first");
    assert_eq!(timers(&retry)[0], key, "retransmission keeps the tag");

    // Second timeout: switch to the alternative.
    let mut out = Actions::new();
    h.strategy
        .on_timer(NodeId::new(0), key, SimTime::from_millis(50), &mut out);
    let failover: Vec<Action> = out.drain().collect();
    assert_eq!(sends(&failover)[0].1, NodeId::new(2));
}

#[test]
fn intermediate_subscriber_takes_delivery_and_forwards_rest() {
    let topo = line4();
    let mut h = Harness::new(topo, &[1, 3], DcrdConfig::default());
    let (published, actions) = h.publish(&[1, 3]);
    let (sent, _) = sends(&actions)[0];
    let sent = sent.clone();

    // The packet arrives at node 1 (itself a subscriber).
    let mut out = Actions::new();
    h.strategy.on_packet(
        NodeId::new(1),
        NodeId::new(0),
        sent,
        SimTime::from_millis(10),
        &mut out,
    );
    let actions: Vec<Action> = out.drain().collect();
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, Action::Deliver { packet } if *packet == published.id)),
        "node 1 must deliver locally"
    );
    let s = sends(&actions);
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].1, NodeId::new(2));
    assert_eq!(
        s[0].0.destinations,
        vec![NodeId::new(3)],
        "local dest removed"
    );
}

#[test]
fn unknown_destination_tables_cause_giveup_not_panic() {
    let topo = line4();
    let mut h = Harness::new(topo, &[3], DcrdConfig::default());
    // A packet for a subscriber with no tables (not in the workload).
    let rogue = Packet::new(
        PacketId::new(9),
        TopicId::new(0),
        h.topo.node(0),
        SimTime::ZERO,
        vec![h.topo.node(2)], // node 2 never subscribed
    );
    let mut out = Actions::new();
    h.strategy
        .on_publish(NodeId::new(0), rogue, SimTime::ZERO, &mut out);
    let actions: Vec<Action> = out.drain().collect();
    assert!(sends(&actions).is_empty());
    assert!(actions.iter().any(
        |a| matches!(a, Action::GiveUp { destination, .. } if *destination == NodeId::new(2))
    ));
}

// ---------------------------------------------------------------------------
// Custody journal, restart replay and NACK-driven recovery.
// ---------------------------------------------------------------------------

/// A scripted rig for the recovery machinery: per-subscriber deadlines and
/// an explicit publish horizon, with the strategy already set up.
struct RecoveryRig {
    topo: Topology,
    strategy: DcrdStrategy,
}

impl RecoveryRig {
    fn new(
        topo: Topology,
        subscribers: &[(usize, SimDuration)],
        config: DcrdConfig,
        horizon: SimDuration,
    ) -> Self {
        let workload = Workload::from_topics(vec![TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: subscribers
                .iter()
                .map(|&(s, deadline)| Subscription::new(topo.node(s), deadline))
                .collect(),
            burst: None,
        }]);
        let estimates = analytic_estimates(&topo, 0.05, 0.0);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.05, 1));
        let mut strategy = DcrdStrategy::new(config);
        strategy.setup(&SetupContext {
            topology: &topo,
            estimates: &estimates,
            workload: &workload,
            failure_oracle: &failure,
            params: RunParams {
                horizon,
                ..RunParams::default()
            },
        });
        RecoveryRig { topo, strategy }
    }

    fn publish(&mut self, seq: u64, subscribers: &[usize], now: SimTime) -> (Packet, Vec<Action>) {
        let packet = Packet::new(
            PacketId::new(seq),
            TopicId::new(0),
            self.topo.node(0),
            now,
            subscribers.iter().map(|&s| self.topo.node(s)).collect(),
        )
        .with_seq(seq);
        let mut out = Actions::new();
        self.strategy
            .on_publish(self.topo.node(0), packet.clone(), now, &mut out);
        (packet, out.drain().collect())
    }
}

fn durable_config() -> DcrdConfig {
    DcrdConfig {
        durability: DurabilityMode::Durable { write_cost_ms: 0 },
        recovery: Some(RecoveryConfig::default()),
        ..DcrdConfig::default()
    }
}

/// Brokers journal custody, release it on downstream ACKs, and the
/// publisher alone keeps its entry for the whole run.
#[test]
fn custody_released_on_ack_except_at_publisher() {
    let topo = line4();
    let mut rig = RecoveryRig::new(
        topo,
        &[(3, SimDuration::from_millis(500))],
        durable_config(),
        SimDuration::from_secs(60),
    );
    let t = SimTime::from_millis(5);
    let (_, actions) = rig.publish(0, &[3], SimTime::ZERO);
    let (fwd1, _) = {
        let s = sends(&actions);
        (s[0].0.clone(), s[0].1)
    };
    let id = fwd1.id;
    let n = |i: u32| NodeId::new(i);
    assert!(rig.strategy.journal().entry(n(0), id).is_some());

    // 1 accepts (journals) and forwards; 0's ACK releases nothing at 0 yet
    // because the publisher's custody is permanent.
    let mut out = Actions::new();
    rig.strategy
        .on_packet(n(1), n(0), fwd1.clone(), t, &mut out);
    let fwd2 = sends(&out.drain().collect::<Vec<_>>())[0].0.clone();
    assert!(rig.strategy.journal().entry(n(1), id).is_some());
    let mut out = Actions::new();
    rig.strategy.on_ack(n(0), n(1), &fwd1, t, &mut out);
    assert!(
        rig.strategy.journal().entry(n(0), id).is_some(),
        "publisher custody is permanent"
    );

    // 2 accepts and forwards to the subscriber; the ACK chain releases the
    // intermediate brokers' custody.
    let mut out = Actions::new();
    rig.strategy
        .on_packet(n(2), n(1), fwd2.clone(), t, &mut out);
    let fwd3 = sends(&out.drain().collect::<Vec<_>>())[0].0.clone();
    let mut out = Actions::new();
    rig.strategy.on_ack(n(1), n(2), &fwd2, t, &mut out);
    assert!(
        rig.strategy.journal().entry(n(1), id).is_none(),
        "downstream ACK must release broker custody"
    );

    let mut out = Actions::new();
    rig.strategy
        .on_packet(n(3), n(2), fwd3.clone(), t, &mut out);
    let delivered: Vec<Action> = out.drain().collect();
    assert!(delivered
        .iter()
        .any(|a| matches!(a, Action::Deliver { .. })));
    let mut out = Actions::new();
    rig.strategy.on_ack(n(2), n(3), &fwd3, t, &mut out);
    assert!(rig.strategy.journal().entry(n(2), id).is_none());
    assert_eq!(
        rig.strategy.journal().len(),
        1,
        "only the publisher's entry"
    );
    assert!(rig
        .strategy
        .sequence_tracker(TopicId::new(0), n(0), n(3))
        .expect("tracker exists after delivery")
        .delivered(0));
}

/// A lost packet is recovered end to end: the subscriber's sweep emits a
/// NACK, brokers without custody relay it toward the publisher, and the
/// publisher re-serves from its permanent custody. A replayed duplicate is
/// suppressed by the dedup window, not delivered twice.
#[test]
fn nack_climbs_to_publisher_and_recovers_lost_packet() {
    let topo = line4();
    let mut rig = RecoveryRig::new(
        topo,
        &[(3, SimDuration::from_millis(500))],
        durable_config(),
        // Only seq 0 is inside the horizon: the sweep must not invent
        // sequence numbers that were never published.
        SimDuration::from_millis(1),
    );
    let n = |i: u32| NodeId::new(i);
    let (_, actions) = rig.publish(0, &[3], SimTime::ZERO);
    let key = timers(&actions)[0];

    // The only copy is lost; m = 1, so the timeout exhausts neighbor 1 and
    // the publisher gives up (no persistence in this config).
    let mut out = Actions::new();
    rig.strategy
        .on_timer(n(0), key, SimTime::from_millis(100), &mut out);
    assert!(out.drain().any(|a| matches!(a, Action::GiveUp { .. })));

    // Subscriber sweep at t = 5s: seq 0 is overdue → one NACK upstream.
    let mut out = Actions::new();
    rig.strategy.on_tick(n(3), SimTime::from_secs(5), &mut out);
    let nacks: Vec<Action> = out.drain().collect();
    let s = sends(&nacks);
    assert_eq!(s.len(), 1, "one NACK per stream per sweep");
    let (nack, to) = (s[0].0.clone(), s[0].1);
    assert!(nack.is_nack());
    assert_eq!(to, n(2), "NACKs climb hop-by-hop toward the publisher");
    assert_eq!(nack.destinations, vec![n(0)]);

    // 2 and 1 hold no custody: each relays the NACK one hop further up.
    let mut out = Actions::new();
    rig.strategy
        .on_packet(n(2), n(3), nack, SimTime::from_secs(5), &mut out);
    let s: Vec<Action> = out.drain().collect();
    let relayed = sends(&s)[0].0.clone();
    assert!(relayed.is_nack());
    let mut out = Actions::new();
    rig.strategy
        .on_packet(n(1), n(2), relayed, SimTime::from_secs(5), &mut out);
    let s: Vec<Action> = out.drain().collect();
    let relayed = sends(&s)[0].0.clone();
    assert!(relayed.is_nack());

    // The publisher serves the missing packet from permanent custody.
    let mut out = Actions::new();
    rig.strategy
        .on_packet(n(0), n(1), relayed, SimTime::from_secs(5), &mut out);
    let s: Vec<Action> = out.drain().collect();
    let (copy, to) = (sends(&s)[0].0.clone(), sends(&s)[0].1);
    assert!(!copy.is_nack(), "custodian re-injects the data packet");
    assert_eq!(to, n(1));
    assert_eq!(copy.destinations, vec![n(3)]);
    assert_eq!(copy.seq, 0);

    // The copy walks down to the subscriber and is delivered exactly once;
    // a second arrival of the same copy is suppressed, not re-delivered.
    let mut out = Actions::new();
    rig.strategy
        .on_packet(n(1), n(0), copy, SimTime::from_secs(5), &mut out);
    let s: Vec<Action> = out.drain().collect();
    let copy = sends(&s)[0].0.clone();
    let mut out = Actions::new();
    rig.strategy
        .on_packet(n(2), n(1), copy, SimTime::from_secs(5), &mut out);
    let s: Vec<Action> = out.drain().collect();
    let copy = sends(&s)[0].0.clone();
    let mut out = Actions::new();
    rig.strategy
        .on_packet(n(3), n(2), copy.clone(), SimTime::from_secs(5), &mut out);
    let first: Vec<Action> = out.drain().collect();
    assert!(first.iter().any(|a| matches!(a, Action::Deliver { .. })));
    let mut out = Actions::new();
    rig.strategy
        .on_packet(n(3), n(2), copy, SimTime::from_secs(6), &mut out);
    let second: Vec<Action> = out.drain().collect();
    assert!(
        second.iter().any(|a| matches!(a, Action::Suppress { .. })),
        "duplicate replay must be suppressed"
    );
    assert!(!second.iter().any(|a| matches!(a, Action::Deliver { .. })));
}

/// Restart replay is delay-cognizant: destinations past their delay budget
/// are not replayed (NACK recovery owns them), live ones re-enter the
/// sending lists. A second crash right after replays identically.
#[test]
fn replay_skips_expired_destinations_and_survives_repeat_crashes() {
    let topo = line4();
    let mut rig = RecoveryRig::new(
        topo,
        &[
            (2, SimDuration::from_millis(50)),
            (3, SimDuration::from_secs(30)),
        ],
        durable_config(),
        SimDuration::from_secs(60),
    );
    let n = |i: u32| NodeId::new(i);
    let _ = rig.publish(0, &[2, 3], SimTime::ZERO);

    // Crash the publisher at t = 1s: subscriber 2's 50ms budget is long
    // gone, subscriber 3's 30s budget is wide open.
    let mut out = Actions::new();
    rig.strategy
        .on_restart(n(0), SimTime::from_secs(1), &mut out);
    let replays: Vec<Action> = out.drain().collect();
    let s = sends(&replays);
    assert_eq!(s.len(), 1);
    assert_eq!(
        s[0].0.destinations,
        vec![n(3)],
        "expired destination must not be replayed"
    );

    // Crash again mid-replay: the journal entry survived, so the second
    // restart replays the same live destination without panicking.
    let mut out = Actions::new();
    rig.strategy
        .on_restart(n(0), SimTime::from_millis(1500), &mut out);
    let replays: Vec<Action> = out.drain().collect();
    let s = sends(&replays);
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].0.destinations, vec![n(3)]);
    assert!(rig
        .strategy
        .journal()
        .entry(n(0), PacketId::new(0))
        .is_some());
}

/// A nonzero journal write cost defers forwarding (not custody) by that
/// cost, via a timer in the reserved journal tag space.
#[test]
fn journal_write_cost_defers_forwarding() {
    let topo = line4();
    let mut rig = RecoveryRig::new(
        topo,
        &[(3, SimDuration::from_millis(500))],
        DcrdConfig {
            durability: DurabilityMode::Durable { write_cost_ms: 25 },
            recovery: Some(RecoveryConfig::default()),
            ..DcrdConfig::default()
        },
        SimDuration::from_secs(60),
    );
    let n = |i: u32| NodeId::new(i);
    let (_, actions) = rig.publish(0, &[3], SimTime::ZERO);
    assert!(
        sends(&actions).is_empty(),
        "forwarding waits for the journal write"
    );
    let t = timers(&actions);
    assert_eq!(t.len(), 1);
    assert!(
        t[0].tag >= 1 << 62 && t[0].tag < 1 << 63,
        "journal timers live in their reserved tag space"
    );
    assert!(
        rig.strategy
            .journal()
            .entry(n(0), PacketId::new(0))
            .is_some(),
        "custody itself is immediate (write-ahead)"
    );
    let mut out = Actions::new();
    rig.strategy
        .on_timer(n(0), t[0], SimTime::from_millis(25), &mut out);
    let actions: Vec<Action> = out.drain().collect();
    assert_eq!(sends(&actions).len(), 1, "write completed → forward");
}

/// The per-sequence NACK budget bounds recovery traffic for gaps that can
/// never be filled.
#[test]
fn nack_budget_bounds_sweep_traffic() {
    let topo = line4();
    let mut rig = RecoveryRig::new(
        topo,
        &[(3, SimDuration::from_millis(500))],
        DcrdConfig {
            durability: DurabilityMode::Durable { write_cost_ms: 0 },
            recovery: Some(RecoveryConfig {
                max_nacks_per_seq: 3,
                ..RecoveryConfig::default()
            }),
            ..DcrdConfig::default()
        },
        SimDuration::from_millis(1),
    );
    let n = |i: u32| NodeId::new(i);
    // Nothing was ever published into the rig's strategy state — but the
    // workload says seq 0 exists, so the subscriber keeps NACKing it until
    // the budget runs out.
    let mut nack_sends = 0;
    for tick in 0..10u64 {
        let mut out = Actions::new();
        rig.strategy
            .on_tick(n(3), SimTime::from_secs(5 + tick), &mut out);
        nack_sends += out
            .drain()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
    }
    assert_eq!(nack_sends, 3, "budget caps NACKs per missing sequence");
}
