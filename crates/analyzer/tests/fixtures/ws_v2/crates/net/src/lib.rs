//! Exempt path: `analyzer.toml [pure] exempt` covers this crate, so the
//! socket here must NOT produce a PURE001 diagnostic.

pub fn listen() {
    let _ = std::net::TcpListener::bind("127.0.0.1:0");
}
