//! Quickstart: run DCRD against the tree baselines on one overlay and print
//! the paper's three metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcrd::experiments::runner::run_comparison;
use dcrd::experiments::scenario::ScenarioBuilder;
use dcrd::experiments::StrategyKind;

fn main() {
    // A 20-broker overlay where every node keeps 5 neighbors, links fail
    // for 1-second epochs with probability 4%, and subscribers require
    // delivery within 3× the shortest-path delay — the paper's §IV-A setup.
    let scenario = ScenarioBuilder::new()
        .nodes(20)
        .degree(5)
        .failure_probability(0.04)
        .duration_secs(120)
        .repetitions(3)
        .seed(7)
        .build();

    println!("simulating 3 topologies x 120s of traffic per strategy...\n");
    let results = run_comparison(&scenario, &StrategyKind::ALL);

    println!(
        "{:<12}{:>16}{:>20}{:>20}",
        "strategy", "delivery ratio", "QoS delivery ratio", "packets/subscriber"
    );
    for agg in &results {
        println!(
            "{:<12}{:>16.4}{:>20.4}{:>20.4}",
            agg.name(),
            agg.delivery_ratio(),
            agg.qos_delivery_ratio(),
            agg.packets_per_subscriber()
        );
    }

    let dcrd = &results[0];
    println!(
        "\nDCRD delivered {:.1}% of messages on time across {} (message, subscriber) pairs.",
        dcrd.qos_delivery_ratio() * 100.0,
        dcrd.pairs()
    );
}
