//! Seeded fixture: a panic two hops below the router entry point, plus
//! sans-io bait on a non-exempt path.

pub struct DcrdStrategy;

impl DcrdStrategy {
    pub fn process(&mut self) {
        self.helper();
    }

    fn helper(&mut self) {
        deep_util(&[1, 2, 3]);
    }
}

fn deep_util(v: &[u32]) -> u32 {
    v[0]
}

pub fn impure_bait() {
    let _ = std::net::TcpListener::bind("127.0.0.1:0");
}
