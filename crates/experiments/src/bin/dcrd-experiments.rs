//! Command-line driver regenerating every figure of the DCRD paper.
//!
//! ```text
//! dcrd-experiments <figure> [--quality smoke|quick|standard|full] [--out DIR]
//!
//! figures: fig2 fig3 fig4 fig5 fig6 fig7 fig8
//!          ablation-ordering ablation-reroute ablation-timeout
//!          ablation-monitor chaos recovery churn gossip hostile all
//! ```
//!
//! Without `--out`, tables print to stdout; with it, each figure also writes
//! `<DIR>/<figure>.txt`, `<DIR>/<figure>.csv` and (where applicable)
//! `<DIR>/<figure>.json`.
//!
//! A second mode checks a deployment analytically, without simulating:
//!
//! ```text
//! dcrd-experiments predict --nodes 20 --degree 5 --pf 0.06 [--factor 3.0] [--seed N]
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use dcrd_experiments::figures;
use dcrd_experiments::scenario::Quality;
use dcrd_metrics::plot::{figure_svg, render_svg, PlotConfig, PlotSeries};
use dcrd_metrics::report::{render_cdf, FigureSeries, MetricKind};

const FIGURES: [&str; 20] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "ext-node-failures",
    "ext-burst-failures",
    "ext-control-overhead",
    "ablation-multipath",
    "ablation-ordering",
    "ablation-reroute",
    "ablation-timeout",
    "ablation-monitor",
    "chaos",
    "recovery",
    "churn",
    "gossip",
    "hostile",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: dcrd-experiments <figure|all> [--quality smoke|quick|standard|full] [--out DIR]\n\
                dcrd-experiments run [--nodes N] [--degree D | --mesh] [--pf X] [--burst EPOCHS] ...\n\
                dcrd-experiments predict --nodes N (--degree D | --mesh) --pf X [--pl Y] [--factor F] [--seed S]\n\
         figures: {}",
        FIGURES.join(" ")
    );
    ExitCode::FAILURE
}

/// One-off custom scenario: simulate all strategies on user-chosen
/// parameters and print the comparison table.
fn run_custom(args: &[String]) -> ExitCode {
    use dcrd_experiments::runner::run_comparison;
    use dcrd_experiments::scenario::ScenarioBuilder;
    use dcrd_experiments::StrategyKind;

    let mut nodes = 20usize;
    let mut degree: Option<usize> = Some(5);
    let mut pf = 0.06f64;
    let mut pn = 0.0f64;
    let mut pl = 1e-4f64;
    let mut m = 1u32;
    let mut factor = 3.0f64;
    let mut duration = 120u64;
    let mut reps = 3u32;
    let mut seed = 0x0DC2Du64;
    let mut burst: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |target: &mut dyn FnMut(&str) -> bool| -> bool {
            it.next().map(|v| target(v)).unwrap_or(false)
        };
        let ok = match arg.as_str() {
            "--nodes" => take(&mut |v| v.parse().map(|x| nodes = x).is_ok()),
            "--degree" => take(&mut |v| v.parse().map(|x| degree = Some(x)).is_ok()),
            "--mesh" => {
                degree = None;
                true
            }
            "--pf" => take(&mut |v| v.parse().map(|x| pf = x).is_ok()),
            "--pn" => take(&mut |v| v.parse().map(|x| pn = x).is_ok()),
            "--pl" => take(&mut |v| v.parse().map(|x| pl = x).is_ok()),
            "--m" => take(&mut |v| v.parse().map(|x| m = x).is_ok()),
            "--factor" => take(&mut |v| v.parse().map(|x| factor = x).is_ok()),
            "--duration" => take(&mut |v| v.parse().map(|x| duration = x).is_ok()),
            "--reps" => take(&mut |v| v.parse().map(|x| reps = x).is_ok()),
            "--seed" => take(&mut |v| v.parse().map(|x| seed = x).is_ok()),
            "--burst" => take(&mut |v| v.parse().map(|x| burst = Some(x)).is_ok()),
            _ => false,
        };
        if !ok {
            eprintln!(
                "usage: dcrd-experiments run [--nodes N] [--degree D | --mesh] [--pf X] [--pn X]                  [--pl X] [--m M] [--factor F] [--duration SECS] [--reps R] [--seed S] [--burst EPOCHS]"
            );
            return ExitCode::FAILURE;
        }
    }
    let mut builder = ScenarioBuilder::new()
        .nodes(nodes)
        .failure_probability(pf)
        .node_failure_probability(pn)
        .loss_rate(pl)
        .transmissions(m)
        .deadline_factor(factor)
        .duration_secs(duration)
        .repetitions(reps)
        .seed(seed);
    builder = match degree {
        Some(d) => builder.degree(d),
        None => builder.full_mesh(),
    };
    if let Some(b) = burst {
        builder = builder.bursty_failures(b);
    }
    let scenario = builder.build();
    eprintln!(
        "simulating {reps} × {duration}s: {nodes} brokers, {}, Pf={pf}, Pn={pn}, Pl={pl}, m={m}, factor={factor}...",
        degree.map_or("full mesh".to_string(), |d| format!("degree {d}"))
    );
    let results = run_comparison(&scenario, &StrategyKind::ALL);
    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>14}{:>10}",
        "strategy", "delivery", "QoS", "pkts/sub", "mean delay", "±QoS"
    );
    for agg in &results {
        println!(
            "{:<12}{:>12.4}{:>12.4}{:>12.3}{:>12.1}ms{:>10.4}",
            agg.name(),
            agg.delivery_ratio(),
            agg.qos_delivery_ratio(),
            agg.packets_per_subscriber(),
            agg.delay_stats().mean(),
            agg.qos_std_dev()
        );
    }
    ExitCode::SUCCESS
}

/// Analytic deployment check: per-subscription expected delay and delivery
/// probability from the routing tables, no simulation.
fn predict(args: &[String]) -> ExitCode {
    let mut nodes = 20usize;
    let mut degree: Option<usize> = None;
    let mut pf = 0.06f64;
    let mut pl = 1e-4f64;
    let mut factor = 3.0f64;
    let mut seed = 0x0DC2Du64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |target: &mut dyn FnMut(&str) -> bool| -> bool {
            it.next().map(|v| target(v)).unwrap_or(false)
        };
        let ok = match arg.as_str() {
            "--nodes" => take(&mut |v| v.parse().map(|x| nodes = x).is_ok()),
            "--degree" => take(&mut |v| v.parse().map(|x| degree = Some(x)).is_ok()),
            "--mesh" => {
                degree = None;
                true
            }
            "--pf" => take(&mut |v| v.parse().map(|x| pf = x).is_ok()),
            "--pl" => take(&mut |v| v.parse().map(|x| pl = x).is_ok()),
            "--factor" => take(&mut |v| v.parse().map(|x| factor = x).is_ok()),
            "--seed" => take(&mut |v| v.parse().map(|x| seed = x).is_ok()),
            _ => false,
        };
        if !ok {
            return usage();
        }
    }

    use dcrd_core::analysis::predict_workload;
    use dcrd_core::DcrdConfig;
    use dcrd_experiments::runner::{build_topology, build_workload};
    use dcrd_experiments::scenario::ScenarioBuilder;
    use dcrd_net::estimate::analytic_estimates;

    let mut builder = ScenarioBuilder::new()
        .nodes(nodes)
        .failure_probability(pf)
        .loss_rate(pl)
        .deadline_factor(factor)
        .seed(seed);
    builder = match degree {
        Some(d) => builder.degree(d),
        None => builder.full_mesh(),
    };
    let scenario = builder.build();
    let topo = build_topology(&scenario, 0);
    let workload = build_workload(&scenario, &topo, 0);
    let estimates = analytic_estimates(&topo, pf, pl);
    let predictions = predict_workload(&topo, &estimates, 1, &workload, &DcrdConfig::default());

    println!(
        "{:>8}{:>8}{:>8}{:>14}{:>16}{:>10}{:>10}",
        "topic", "pub", "sub", "requirement", "expected delay", "r", "verdict"
    );
    let mut on_time = 0usize;
    for p in &predictions {
        if p.expected_on_time {
            on_time += 1;
        }
        println!(
            "{:>8}{:>8}{:>8}{:>14}{:>16}{:>10.4}{:>10}",
            p.topic.to_string(),
            p.publisher.to_string(),
            p.subscriber.to_string(),
            p.requirement.to_string(),
            p.expected_delay
                .map_or_else(|| "unreachable".to_string(), |d| d.to_string()),
            p.expected_delivery_ratio,
            if p.expected_on_time { "OK" } else { "AT RISK" }
        );
    }
    println!(
        "
{on_time}/{} subscriptions expected on time at Pf={pf}, Pl={pl}, factor={factor}",
        predictions.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "predict") {
        return predict(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "run") {
        return run_custom(&args[1..]);
    }
    let mut figure: Option<String> = None;
    let mut quality = Quality::Quick;
    let mut out_dir: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quality" => {
                let Some(q) = it.next().and_then(|s| Quality::parse(s)) else {
                    return usage();
                };
                quality = q;
            }
            "--out" => {
                let Some(dir) = it.next() else {
                    return usage();
                };
                out_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') && figure.is_none() => {
                figure = Some(name.to_string());
            }
            _ => return usage(),
        }
    }
    let Some(figure) = figure else {
        return usage();
    };

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let selected: Vec<&str> = if figure == "all" {
        FIGURES.to_vec()
    } else if FIGURES.contains(&figure.as_str()) {
        vec![figure.as_str()]
    } else {
        return usage();
    };

    for name in selected {
        let start = Instant::now();
        eprintln!("running {name} at {quality:?} quality...");
        let output = run_figure(name, quality);
        eprintln!("{name} done in {:.1}s", start.elapsed().as_secs_f64());
        print!("{}", output.text);
        if let Some(dir) = &out_dir {
            if let Err(e) = write_outputs(dir, name, &output) {
                eprintln!("failed writing outputs for {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

struct FigureOutput {
    text: String,
    csv: Option<String>,
    json: Option<String>,
    /// `(suffix, svg document)` pairs, e.g. `("delivery", "<svg...")`.
    svgs: Vec<(&'static str, String)>,
}

fn series_output(series: &FigureSeries, metrics: &[MetricKind]) -> FigureOutput {
    series_output_scaled(series, metrics, false)
}

fn series_output_scaled(
    series: &FigureSeries,
    metrics: &[MetricKind],
    log_x: bool,
) -> FigureOutput {
    let mut text = String::new();
    let mut svgs = Vec::new();
    for &m in metrics {
        text.push_str(&series.render_table(m));
        text.push('\n');
        let suffix = match m {
            MetricKind::Delivery => "delivery",
            MetricKind::Qos => "qos",
            MetricKind::Traffic => "traffic",
        };
        svgs.push((suffix, figure_svg(series, m, log_x)));
    }
    FigureOutput {
        text,
        csv: Some(series.render_csv()),
        json: serde_json::to_string_pretty(series).ok(),
        svgs,
    }
}

fn run_figure(name: &str, quality: Quality) -> FigureOutput {
    let all = [MetricKind::Delivery, MetricKind::Qos, MetricKind::Traffic];
    let qos = [MetricKind::Qos];
    match name {
        "fig2" => series_output(&figures::fig2(quality), &all),
        "fig3" => series_output(&figures::fig3(quality), &all),
        "fig4" => series_output(&figures::fig4(quality), &all),
        "fig5" => series_output(&figures::fig5(quality), &all),
        "fig6" => series_output(&figures::fig6(quality), &qos),
        "fig7" => {
            let mut text = String::new();
            let mut csv = String::from("series,x,cdf\n");
            let mut lines = Vec::new();
            for (label, series) in figures::fig7(quality) {
                text.push_str(&render_cdf(&label, &decimate(&series)));
                text.push('\n');
                for (x, y) in &series {
                    csv.push_str(&format!("{label},{x:.4},{y:.6}\n"));
                }
                lines.push(PlotSeries {
                    label,
                    points: series,
                });
            }
            let svg = render_svg(
                &lines,
                &PlotConfig {
                    title: "fig7 — lateness CDF of deadline misses".into(),
                    x_label: "actual delay / requirement".into(),
                    y_label: "CDF".into(),
                    y_range: Some((0.0, 1.0)),
                    ..PlotConfig::default()
                },
            );
            FigureOutput {
                text,
                csv: Some(csv),
                json: None,
                svgs: vec![("cdf", svg)],
            }
        }
        "fig8" => series_output_scaled(&figures::fig8(quality), &qos, true),
        "ext-node-failures" => series_output(&figures::ext_node_failures(quality), &all),
        "ext-burst-failures" => series_output(&figures::ext_burst_failures(quality), &all),
        "ext-control-overhead" => {
            let points = figures::ext_control_overhead(quality);
            let mut text = String::from("# ext-control-overhead — table computation cost\n");
            text.push_str(&format!(
                "{:>8}{:>14}{:>12}{:>18}\n",
                "nodes", "mean rounds", "max rounds", "ctrl msgs/sub"
            ));
            let mut csv = String::from("nodes,mean_rounds,max_rounds,messages_per_subscription\n");
            for p in &points {
                text.push_str(&format!(
                    "{:>8}{:>14.2}{:>12}{:>18.0}\n",
                    p.nodes, p.mean_rounds, p.max_rounds, p.messages_per_subscription
                ));
                csv.push_str(&format!(
                    "{},{:.3},{},{:.1}\n",
                    p.nodes, p.mean_rounds, p.max_rounds, p.messages_per_subscription
                ));
            }
            FigureOutput {
                text,
                csv: Some(csv),
                json: None,
                svgs: Vec::new(),
            }
        }
        "chaos" => {
            let report = dcrd_experiments::chaos::chaos_report(quality);
            let mut text = String::new();
            let mut csv = String::new();
            let mut svgs = Vec::new();
            for (series, suffix) in
                report
                    .series
                    .iter()
                    .zip(["partition-qos", "crashes-qos", "gray-qos"])
            {
                for m in [MetricKind::Delivery, MetricKind::Qos] {
                    text.push_str(&series.render_table(m));
                    text.push('\n');
                }
                csv.push_str(&series.render_csv());
                svgs.push((suffix, figure_svg(series, MetricKind::Qos, false)));
            }
            text.push_str(&format!(
                "invariant auditor: {} violation(s) across the chaos sweep\n",
                report.total_audit_violations
            ));
            FigureOutput {
                text,
                csv: Some(csv),
                json: serde_json::to_string_pretty(&report.series).ok(),
                svgs,
            }
        }
        "recovery" => {
            let report = dcrd_experiments::recovery::recovery_report(quality);
            let mut text = String::new();
            for m in [MetricKind::Delivery, MetricKind::Qos] {
                text.push_str(&report.series.render_table(m));
                text.push('\n');
            }
            text.push_str(&format!(
                "invariant auditor: {} violation(s) across the recovery sweep\n\
                 (recovery arm audited end-to-end: every published pair must arrive exactly once)\n",
                report.total_audit_violations
            ));
            let svg = figure_svg(&report.series, MetricKind::Delivery, false);
            FigureOutput {
                text,
                csv: Some(report.series.render_csv()),
                json: serde_json::to_string_pretty(&report.series).ok(),
                svgs: vec![("crashes-delivery", svg)],
            }
        }
        "churn" => {
            let report = dcrd_experiments::churn::churn_report(quality);
            let mut text = String::new();
            for m in [MetricKind::Delivery, MetricKind::Qos] {
                text.push_str(&report.series.render_table(m));
                text.push('\n');
            }
            text.push_str(&format!(
                "invariant auditor: {} violation(s) across the churn sweep\n\
                 (incremental repair must track the global-rebuild oracle and beat no-repair)\n",
                report.total_audit_violations
            ));
            text.push_str(&control_plane_counters(&report.series));
            let svg = figure_svg(&report.series, MetricKind::Delivery, false);
            FigureOutput {
                text,
                csv: Some(report.series.render_csv()),
                json: serde_json::to_string_pretty(&report.series).ok(),
                svgs: vec![("rates-delivery", svg)],
            }
        }
        "gossip" => {
            let report = dcrd_experiments::gossip::gossip_report(quality);
            let mut text = String::new();
            for m in [MetricKind::Delivery, MetricKind::Qos] {
                text.push_str(&report.series.render_table(m));
                text.push('\n');
            }
            text.push_str(&format!(
                "invariant auditor: {} violation(s) across the gossip sweep (staleness clause armed)\n\
                 (gossip must track the oracle control plane; the static arm shows the cost of no dissemination)\n\
                 control plane: {} rumor(s) pushed, {} anti-entropy round(s), \
                 {} delta(s) applied, {} stale reconciliation(s)\n",
                report.total_audit_violations,
                report.rumors_sent,
                report.anti_entropy_rounds,
                report.gossip_deltas_applied,
                report.stale_reconciliations
            ));
            let svg = figure_svg(&report.series, MetricKind::Delivery, false);
            FigureOutput {
                text,
                csv: Some(report.series.render_csv()),
                json: serde_json::to_string_pretty(&report.series).ok(),
                svgs: vec![("loss-delivery", svg)],
            }
        }
        "hostile" => {
            let report = dcrd_experiments::hostile::hostile_report(quality);
            let mut text = String::new();
            for m in [MetricKind::Delivery, MetricKind::Qos] {
                text.push_str(&report.series.render_table(m));
                text.push('\n');
            }
            text.push_str(&format!(
                "invariant auditor: least-slack {} violation(s), unbounded {} violation(s) (both must be 0)\n\
                 invariant auditor: tail-drop {} violation(s) (UnjustifiedShed expected under overload)\n\
                 bounded queues shed {} packet(s) total\n",
                report.least_slack_violations,
                report.unbounded_violations,
                report.tail_drop_violations,
                report.total_sheds
            ));
            // The acceptance metric: delivery among still-satisfiable
            // pairs for the least-slack arm at the 4x crowd (gate: 0.99).
            if let Some(crowd) = report.series.points.iter().find(|p| p.x == 4.0) {
                let arm = &crowd.strategies[0];
                text.push_str(&format!(
                    "least-slack in-slack delivery at 4x: {:.4} (gate: >= 0.99)\n",
                    arm.in_slack_delivery_ratio()
                ));
            }
            let svg = figure_svg(&report.series, MetricKind::Delivery, false);
            FigureOutput {
                text,
                csv: Some(report.series.render_csv()),
                json: serde_json::to_string_pretty(&report.series).ok(),
                svgs: vec![("flash-crowd-delivery", svg)],
            }
        }
        "ablation-multipath" => series_output(&figures::ablation_multipath(quality), &all),
        "ablation-ordering" => series_output(&figures::ablation_ordering(quality), &qos),
        "ablation-reroute" => series_output(&figures::ablation_reroute(quality), &all),
        "ablation-timeout" => series_output(&figures::ablation_timeout(quality), &qos),
        "ablation-monitor" => series_output(&figures::ablation_monitor(quality), &qos),
        _ => unreachable!("validated above"),
    }
}

/// Sums the gossip control-plane counters over every arm of a series
/// (all zero under the oracle control plane — the line still prints so
/// the figures are comparable across control planes).
fn control_plane_counters(series: &FigureSeries) -> String {
    let all = || series.points.iter().flat_map(|p| &p.strategies);
    format!(
        "control plane: {} rumor(s) pushed, {} anti-entropy round(s), \
         {} delta(s) applied, {} stale reconciliation(s)\n",
        all().map(|a| a.rumors_sent()).sum::<u64>(),
        all().map(|a| a.anti_entropy_rounds()).sum::<u64>(),
        all().map(|a| a.gossip_deltas_applied()).sum::<u64>(),
        all().map(|a| a.stale_reconciliations()).sum::<u64>(),
    )
}

/// Thins a dense CDF series for terminal display (keep every 8th point).
fn decimate(series: &[(f64, f64)]) -> Vec<(f64, f64)> {
    series
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 8 == 0 || *i == series.len() - 1)
        .map(|(_, &p)| p)
        .collect()
}

fn write_outputs(dir: &Path, name: &str, output: &FigureOutput) -> std::io::Result<()> {
    let mut txt = std::fs::File::create(dir.join(format!("{name}.txt")))?;
    txt.write_all(output.text.as_bytes())?;
    if let Some(csv) = &output.csv {
        let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
        f.write_all(csv.as_bytes())?;
    }
    if let Some(json) = &output.json {
        let mut f = std::fs::File::create(dir.join(format!("{name}.json")))?;
        f.write_all(json.as_bytes())?;
    }
    for (suffix, svg) in &output.svgs {
        let mut f = std::fs::File::create(dir.join(format!("{name}-{suffix}.svg")))?;
        f.write_all(svg.as_bytes())?;
    }
    Ok(())
}
