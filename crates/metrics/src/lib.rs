//! # dcrd-metrics — experiment metrics and report rendering
//!
//! Turns the raw [`DeliveryLog`](dcrd_pubsub::runtime::DeliveryLog) of an
//! overlay run into the paper's three evaluation metrics (§IV-C):
//!
//! 1. **Delivery Ratio** — fraction of `(message, subscriber)` pairs
//!    delivered at all (late counts);
//! 2. **QoS Delivery Ratio** — fraction delivered within the subscription's
//!    delay requirement;
//! 3. **Packets Sent / Subscribers** — total data transmissions divided by
//!    the number of `(message, subscriber)` pairs (traffic cost).
//!
//! plus the Fig. 7 statistic: the CDF of `actual delay ÷ requirement` over
//! packets that *missed* their deadline.
//!
//! [`RunMetrics`] summarizes one run; [`AggregateMetrics`] pools repetitions
//! (different topologies/seeds) exactly the way the paper reports averages
//! over 10 topologies. [`report`] renders aligned text tables and CSV for
//! the experiment CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plot;
pub mod report;
pub mod summary;
pub mod timeline;

pub use summary::{AggregateMetrics, RunMetrics};
pub use timeline::Timeline;
