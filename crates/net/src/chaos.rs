//! Correlated chaos failure models (partitions, crash-restart brokers,
//! gray links).
//!
//! The paper's evaluation stresses DCRD with *independent* per-epoch link
//! failures only; its conclusion names node failures and correlated outages
//! as the open threat model. This module supplies those scenarios as
//! deterministic, seed-reproducible fault injectors:
//!
//! * [`PartitionModel`] — seeded graph cuts that isolate a fixed fraction of
//!   brokers for a configurable window, recurring each period. The isolated
//!   set is chosen by hash rank, so the requested fraction is hit *exactly*
//!   (not just in expectation) every cycle.
//! * [`CrashRestartModel`] — fail-stop broker crashes with geometric
//!   downtime. Unlike [`NodeFailureModel`](crate::failure::NodeFailureModel)
//!   (which only blocks traffic), a crash is expected to also wipe the
//!   broker's in-flight router state: the runtime queries
//!   [`CrashRestartModel::restarted_at_epoch`] at epoch boundaries and
//!   notifies the routing strategy.
//! * [`GrayLinkModel`] — links that are degraded in **one direction only**
//!   (extra loss and delay inflation), the classic "gray failure" that
//!   symmetric models cannot express.
//!
//! Like the epoch model in [`failure`](crate::failure), every query is a
//! pure hash of `(seed, entity, epoch/cycle)` — O(n) worst case for
//! partition rank, O(max downtime) for crashes — with no shared mutable
//! state, so a chaos run is reproducible from its seed alone.

use dcrd_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::failure::DEFAULT_EPOCH;
use crate::graph::{EdgeId, NodeId, Topology};
use crate::membership::BrokerChurnModel;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Converts a hash to a uniform f64 in [0, 1).
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Recurring network partitions: every `period`, a hash-selected region of
/// `fraction` of the brokers is cut off from the rest for `window`.
///
/// During an active window, every edge with **exactly one** endpoint inside
/// the isolated region is blocked in both directions; edges internal to
/// either side keep working. The isolated set is re-drawn each cycle, so
/// consecutive partitions hit different regions.
///
/// # Example
///
/// ```
/// use dcrd_net::chaos::PartitionModel;
/// use dcrd_sim::{SimDuration, SimTime};
///
/// let p = PartitionModel::new(
///     0.3,
///     SimDuration::from_secs(30),
///     SimDuration::from_secs(60),
///     7,
/// );
/// assert!(p.active(SimTime::from_secs(10)));   // inside the window
/// assert!(!p.active(SimTime::from_secs(45)));  // healed
/// assert_eq!(p.isolated_count(20), 6);         // exactly ceil(0.3 × 20)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionModel {
    fraction: f64,
    window: SimDuration,
    period: SimDuration,
    seed: u64,
}

impl PartitionModel {
    /// Creates a partition model isolating `fraction` of the brokers for
    /// `window` out of every `period`, starting at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1)`, the window is zero, or the
    /// window exceeds the period.
    #[must_use]
    pub fn new(fraction: f64, window: SimDuration, period: SimDuration, seed: u64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "partition fraction out of range: {fraction}"
        );
        assert!(
            window > SimDuration::ZERO,
            "partition window must be positive"
        );
        assert!(
            window <= period,
            "partition window must not exceed the period"
        );
        PartitionModel {
            fraction,
            window,
            period,
            seed,
        }
    }

    /// The fraction of brokers isolated per cycle.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// The length of each partition window.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The cycle length (window + healed gap).
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The partition cycle containing `at`.
    #[must_use]
    pub fn cycle_index(&self, at: SimTime) -> u64 {
        at.as_micros() / self.period.as_micros()
    }

    /// Whether a partition window is active at `at`.
    #[must_use]
    pub fn active(&self, at: SimTime) -> bool {
        at.as_micros() % self.period.as_micros() < self.window.as_micros()
    }

    /// The number of brokers isolated per active window in an `n`-broker
    /// overlay: `ceil(fraction × n)`, clamped to `[1, n − 1]` so both sides
    /// of the cut are always non-empty.
    #[must_use]
    pub fn isolated_count(&self, n: usize) -> usize {
        if n < 2 {
            return 0;
        }
        let k = (self.fraction * n as f64).ceil() as usize;
        k.clamp(1, n - 1)
    }

    /// The hash ranking key of `node` for the cycle containing `at`. Lower
    /// keys are isolated first; ties break by node id.
    fn rank_key(&self, node: u64, cycle: u64) -> u64 {
        mix(self.seed ^ mix(node ^ 0x9A97) ^ mix(cycle ^ 0x7171))
    }

    /// Whether `node` is inside the isolated region at `at` (always `false`
    /// outside an active window). `n` is the overlay's broker count.
    #[must_use]
    pub fn is_isolated(&self, node: NodeId, at: SimTime, n: usize) -> bool {
        if !self.active(at) {
            return false;
        }
        let k = self.isolated_count(n);
        if k == 0 {
            return false;
        }
        let cycle = self.cycle_index(at);
        let me = node.index() as u64;
        let mine = self.rank_key(me, cycle);
        // `node` is isolated iff its key ranks among the k smallest.
        let rank = (0..n as u64)
            .filter(|&other| {
                let key = self.rank_key(other, cycle);
                key < mine || (key == mine && other < me)
            })
            .count();
        rank < k
    }

    /// Whether the active partition (if any) cuts `edge`: exactly one
    /// endpoint is inside the isolated region.
    #[must_use]
    pub fn cuts(&self, topo: &Topology, edge: EdgeId, at: SimTime) -> bool {
        if !self.active(at) {
            return false;
        }
        let n = topo.num_nodes();
        let e = topo.edge(edge);
        self.is_isolated(e.a(), at, n) != self.is_isolated(e.b(), at, n)
    }
}

/// Fail-stop broker crashes with restart: each epoch a broker crashes with
/// probability `pc`, stays down for a geometric number of epochs, then
/// restarts **with all in-flight router state lost**.
///
/// While down, the broker drops every packet and ACK addressed to it (the
/// same observable behavior as
/// [`NodeFailureModel`](crate::failure::NodeFailureModel)); the difference
/// is the restart: the runtime detects up-transitions via
/// [`restarted_at_epoch`](CrashRestartModel::restarted_at_epoch) and tells
/// the routing strategy to discard that broker's volatile state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashRestartModel {
    pc: f64,
    mean_down: f64,
    max_down: u64,
    seed: u64,
    epoch: SimDuration,
}

impl CrashRestartModel {
    /// Creates a model where each broker crashes with probability `pc` per
    /// 1-second epoch and stays down `mean_down_epochs` epochs on average
    /// (geometric, capped at 8× the mean).
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside `[0, 1]` or `mean_down_epochs < 1`.
    #[must_use]
    pub fn new(pc: f64, mean_down_epochs: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pc),
            "crash probability out of range: {pc}"
        );
        assert!(mean_down_epochs >= 1.0, "mean downtime must be ≥ 1 epoch");
        CrashRestartModel {
            pc,
            mean_down: mean_down_epochs,
            max_down: (mean_down_epochs * 8.0).ceil() as u64,
            seed,
            epoch: DEFAULT_EPOCH,
        }
    }

    /// The per-epoch crash probability.
    #[must_use]
    pub fn pc(&self) -> f64 {
        self.pc
    }

    /// The mean downtime in epochs.
    #[must_use]
    pub fn mean_down_epochs(&self) -> f64 {
        self.mean_down
    }

    /// The epoch index containing `at`.
    #[must_use]
    pub fn epoch_index(&self, at: SimTime) -> u64 {
        at.as_micros() / self.epoch.as_micros()
    }

    /// Downtime in epochs of the crash starting at `(node, epoch)`, if one
    /// starts there.
    fn crash_len(&self, node: u64, epoch: u64) -> Option<u64> {
        if self.pc <= 0.0 {
            return None;
        }
        let h = mix(self.seed ^ mix(node ^ 0xC4A5) ^ mix(epoch ^ 0x3E3E));
        if unit(h) >= self.pc {
            return None;
        }
        if self.mean_down <= 1.0 {
            return Some(1);
        }
        // Geometric with mean `mean_down`: P(L > k) = (1 - 1/mean)^k.
        let u = unit(mix(h ^ 0xD0D0_CAFE));
        let q = 1.0 - 1.0 / self.mean_down;
        let len = 1 + (u.max(1e-12).ln() / q.ln()).floor() as u64;
        Some(len.min(self.max_down))
    }

    /// Whether `node` is down during epoch `epoch`.
    #[must_use]
    pub fn is_down_in_epoch(&self, node: NodeId, epoch: u64) -> bool {
        let me = node.index() as u64;
        let lookback = epoch.min(self.max_down.saturating_sub(1));
        (0..=lookback).any(|back| {
            self.crash_len(me, epoch - back)
                .is_some_and(|len| len > back)
        })
    }

    /// Whether `node` is down at instant `at`.
    #[must_use]
    pub fn is_down(&self, node: NodeId, at: SimTime) -> bool {
        self.is_down_in_epoch(node, self.epoch_index(at))
    }

    /// Whether `node` restarts at the *start* of epoch `epoch`: it was down
    /// in the previous epoch and is up in this one. The runtime calls this
    /// at each epoch boundary to trigger state-loss notifications.
    #[must_use]
    pub fn restarted_at_epoch(&self, node: NodeId, epoch: u64) -> bool {
        epoch > 0 && self.is_down_in_epoch(node, epoch - 1) && !self.is_down_in_epoch(node, epoch)
    }
}

/// Gray links: a static, hash-selected subset of edges is degraded in one
/// direction only — extra loss and inflated delay for transmissions going
/// the "bad way", perfect service the other way.
///
/// Gray membership and direction are fixed for the whole run (gray failures
/// are long-lived in practice); which edges are gray depends only on the
/// seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrayLinkModel {
    fraction: f64,
    extra_loss: f64,
    delay_factor: f64,
    seed: u64,
}

impl GrayLinkModel {
    /// Creates a model graying `fraction` of the edges, adding `extra_loss`
    /// drop probability and multiplying delay by `delay_factor` in the
    /// degraded direction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` or `extra_loss` is outside `[0, 1]`, or
    /// `delay_factor < 1`.
    #[must_use]
    pub fn new(fraction: f64, extra_loss: f64, delay_factor: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "gray fraction out of range: {fraction}"
        );
        assert!(
            (0.0..=1.0).contains(&extra_loss),
            "gray extra loss out of range: {extra_loss}"
        );
        assert!(delay_factor >= 1.0, "gray delay factor must be ≥ 1");
        GrayLinkModel {
            fraction,
            extra_loss,
            delay_factor,
            seed,
        }
    }

    /// The fraction of edges that are gray.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Additional per-transmission drop probability in the degraded
    /// direction.
    #[must_use]
    pub fn extra_loss(&self) -> f64 {
        self.extra_loss
    }

    /// Delay multiplier in the degraded direction.
    #[must_use]
    pub fn delay_factor(&self) -> f64 {
        self.delay_factor
    }

    /// Whether `edge` is gray (static for the run).
    #[must_use]
    pub fn is_gray(&self, edge: EdgeId) -> bool {
        if self.fraction <= 0.0 {
            return false;
        }
        if self.fraction >= 1.0 {
            return true;
        }
        unit(mix(self.seed ^ mix(edge.index() as u64 ^ 0x6A6A))) < self.fraction
    }

    /// Whether a transmission over `edge` sent by `from` travels in the
    /// degraded direction. At most one direction of a gray edge degrades;
    /// non-gray edges never do.
    #[must_use]
    pub fn degrades(&self, topo: &Topology, edge: EdgeId, from: NodeId) -> bool {
        if !self.is_gray(edge) {
            return false;
        }
        let e = topo.edge(edge);
        let a_to_b = mix(self.seed ^ mix(edge.index() as u64 ^ 0x0D1F)) & 1 == 0;
        if a_to_b {
            from == e.a()
        } else {
            from == e.b()
        }
    }
}

/// The combined chaos injector: any subset of partition, crash-restart,
/// gray-link, and broker-churn models, queried together.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosModel {
    partition: Option<PartitionModel>,
    crashes: Option<CrashRestartModel>,
    gray: Option<GrayLinkModel>,
    #[serde(default)]
    churn: Option<BrokerChurnModel>,
}

impl ChaosModel {
    /// An empty injector (no chaos).
    #[must_use]
    pub fn none() -> Self {
        ChaosModel::default()
    }

    /// Adds recurring partitions.
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionModel) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Adds crash-restart broker failures.
    #[must_use]
    pub fn with_crashes(mut self, crashes: CrashRestartModel) -> Self {
        self.crashes = Some(crashes);
        self
    }

    /// Adds gray links.
    #[must_use]
    pub fn with_gray(mut self, gray: GrayLinkModel) -> Self {
        self.gray = Some(gray);
        self
    }

    /// Adds broker membership churn (late joins, graceful leaves, crash
    /// deaths). An empty schedule (rate 0) is normalized away.
    #[must_use]
    pub fn with_churn(mut self, churn: BrokerChurnModel) -> Self {
        self.churn = (!churn.is_empty()).then_some(churn);
        self
    }

    /// Whether no chaos component is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.partition.is_none()
            && self.crashes.is_none()
            && self.gray.is_none()
            && self.churn.is_none()
    }

    /// The partition component, if configured.
    #[must_use]
    pub fn partition(&self) -> Option<&PartitionModel> {
        self.partition.as_ref()
    }

    /// The crash-restart component, if configured.
    #[must_use]
    pub fn crashes(&self) -> Option<&CrashRestartModel> {
        self.crashes.as_ref()
    }

    /// The gray-link component, if configured.
    #[must_use]
    pub fn gray(&self) -> Option<&GrayLinkModel> {
        self.gray.as_ref()
    }

    /// The broker-churn component, if configured.
    #[must_use]
    pub fn churn(&self) -> Option<&BrokerChurnModel> {
        self.churn.as_ref()
    }

    /// Whether a transmission over `edge` at `at` is blocked by chaos: the
    /// partition cuts it, either endpoint is crash-down, or either endpoint
    /// has churned out of the overlay.
    #[must_use]
    pub fn edge_blocked(&self, topo: &Topology, edge: EdgeId, at: SimTime) -> bool {
        if let Some(p) = &self.partition {
            if p.cuts(topo, edge, at) {
                return true;
            }
        }
        if let Some(c) = &self.crashes {
            let e = topo.edge(edge);
            if c.is_down(e.a(), at) || c.is_down(e.b(), at) {
                return true;
            }
        }
        if let Some(ch) = &self.churn {
            let e = topo.edge(edge);
            if ch.absent_at(e.a(), at) || ch.absent_at(e.b(), at) {
                return true;
            }
        }
        false
    }

    /// Whether `node` is not operating at `at`: crash-down, or absent under
    /// the churn schedule (not yet joined, left, or dead). Partitioned
    /// nodes are *not* down — they are alive but unreachable.
    #[must_use]
    pub fn node_down(&self, node: NodeId, at: SimTime) -> bool {
        self.crashes.is_some_and(|c| c.is_down(node, at))
            || self.churn.is_some_and(|ch| ch.absent_at(node, at))
    }

    /// Whether `node` restarts at the start of epoch `epoch` (losing its
    /// volatile router state).
    #[must_use]
    pub fn restarted_at_epoch(&self, node: NodeId, epoch: u64) -> bool {
        self.crashes
            .is_some_and(|c| c.restarted_at_epoch(node, epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{full_mesh, DelayRange};
    use dcrd_sim::rng::rng_for;

    fn partition() -> PartitionModel {
        PartitionModel::new(
            0.3,
            SimDuration::from_secs(30),
            SimDuration::from_secs(60),
            7,
        )
    }

    #[test]
    fn partition_window_schedule() {
        let p = partition();
        assert!(p.active(SimTime::ZERO));
        assert!(p.active(SimTime::from_millis(29_999)));
        assert!(!p.active(SimTime::from_secs(30)));
        assert!(!p.active(SimTime::from_millis(59_999)));
        assert!(p.active(SimTime::from_secs(60)));
        assert_eq!(p.cycle_index(SimTime::from_secs(59)), 0);
        assert_eq!(p.cycle_index(SimTime::from_secs(60)), 1);
    }

    #[test]
    fn partition_isolates_exact_count() {
        let p = partition();
        assert_eq!(p.isolated_count(20), 6);
        assert_eq!(p.isolated_count(15), 5);
        assert_eq!(p.isolated_count(1), 0);
        // Never isolates everyone.
        let all = PartitionModel::new(
            0.99,
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            1,
        );
        assert_eq!(all.isolated_count(10), 9);
        for n in [2usize, 5, 20, 50] {
            let t = SimTime::from_secs(5);
            let isolated = (0..n)
                .filter(|&i| p.is_isolated(NodeId::new(i as u32), t, n))
                .count();
            assert_eq!(isolated, p.isolated_count(n), "n = {n}");
        }
    }

    #[test]
    fn partition_heals_outside_window() {
        let p = partition();
        let t = SimTime::from_secs(45);
        for i in 0..20u32 {
            assert!(!p.is_isolated(NodeId::new(i), t, 20));
        }
    }

    #[test]
    fn partition_redraws_each_cycle() {
        let p = partition();
        let first: Vec<bool> = (0..20u32)
            .map(|i| p.is_isolated(NodeId::new(i), SimTime::from_secs(5), 20))
            .collect();
        let mut differs = false;
        for cycle in 1..16u64 {
            let t = SimTime::from_secs(cycle * 60 + 5);
            let set: Vec<bool> = (0..20u32)
                .map(|i| p.is_isolated(NodeId::new(i), t, 20))
                .collect();
            if set != first {
                differs = true;
                break;
            }
        }
        assert!(differs, "isolated set never changed across cycles");
    }

    #[test]
    fn partition_cuts_only_crossing_edges() {
        let mut rng = rng_for(3, "chaos-topo");
        let topo = full_mesh(10, DelayRange::PAPER, &mut rng);
        let p = partition();
        let t = SimTime::from_secs(2);
        let mut cut = 0;
        for e in topo.edge_ids() {
            let edge = topo.edge(e);
            let a = p.is_isolated(edge.a(), t, topo.num_nodes());
            let b = p.is_isolated(edge.b(), t, topo.num_nodes());
            assert_eq!(p.cuts(&topo, e, t), a != b);
            if a != b {
                cut += 1;
            }
        }
        // ceil(0.3 × 10) = 3 isolated; in a full mesh that cuts 3 × 7 edges.
        assert_eq!(cut, 21);
        // Healed: nothing cut.
        for e in topo.edge_ids() {
            assert!(!p.cuts(&topo, e, SimTime::from_secs(40)));
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let a = partition();
        let b = partition();
        for s in 0..120u64 {
            let t = SimTime::from_secs(s);
            for i in 0..20u32 {
                assert_eq!(
                    a.is_isolated(NodeId::new(i), t, 20),
                    b.is_isolated(NodeId::new(i), t, 20)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn partition_rejects_bad_fraction() {
        let _ = PartitionModel::new(1.0, SimDuration::from_secs(1), SimDuration::from_secs(2), 0);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn partition_rejects_window_longer_than_period() {
        let _ = PartitionModel::new(0.5, SimDuration::from_secs(3), SimDuration::from_secs(2), 0);
    }

    #[test]
    fn crash_restart_downtime_and_recovery() {
        let m = CrashRestartModel::new(0.2, 3.0, 11);
        let node = NodeId::new(4);
        // Find a crash and check the down → up transition is flagged once.
        let mut restarts = 0u64;
        let mut down_epochs = 0u64;
        for epoch in 1..2000u64 {
            if m.is_down_in_epoch(node, epoch) {
                down_epochs += 1;
            }
            if m.restarted_at_epoch(node, epoch) {
                restarts += 1;
                assert!(m.is_down_in_epoch(node, epoch - 1));
                assert!(!m.is_down_in_epoch(node, epoch));
            }
        }
        assert!(restarts > 0, "no restart observed in 2000 epochs");
        assert!(
            down_epochs > restarts,
            "downtime should span multiple epochs"
        );
        // Downtime fraction ≈ pc × mean (minus overlap), so well above pc.
        let rate = down_epochs as f64 / 2000.0;
        assert!(rate > 0.2, "downtime fraction {rate} too low");
    }

    #[test]
    fn crash_restart_is_down_matches_epoch_query() {
        let m = CrashRestartModel::new(0.3, 2.0, 5);
        for epoch in 0..100u64 {
            let mid = SimTime::from_secs(epoch) + SimDuration::from_millis(500);
            assert_eq!(
                m.is_down(NodeId::new(1), mid),
                m.is_down_in_epoch(NodeId::new(1), epoch)
            );
        }
    }

    #[test]
    fn crash_restart_zero_rate_never_crashes() {
        let m = CrashRestartModel::new(0.0, 4.0, 9);
        for epoch in 0..200u64 {
            assert!(!m.is_down_in_epoch(NodeId::new(0), epoch));
            assert!(!m.restarted_at_epoch(NodeId::new(0), epoch));
        }
    }

    #[test]
    fn gray_links_are_static_and_one_directional() {
        let mut rng = rng_for(5, "gray-topo");
        let topo = full_mesh(8, DelayRange::PAPER, &mut rng);
        let g = GrayLinkModel::new(0.4, 0.3, 3.0, 13);
        let mut gray_edges = 0;
        for e in topo.edge_ids() {
            let edge = topo.edge(e);
            let forward = g.degrades(&topo, e, edge.a());
            let backward = g.degrades(&topo, e, edge.b());
            if g.is_gray(e) {
                gray_edges += 1;
                // Exactly one direction is degraded.
                assert!(forward != backward, "gray edge must degrade one way");
            } else {
                assert!(!forward && !backward);
            }
        }
        assert!(gray_edges > 0, "no gray edges at fraction 0.4");
        assert!(
            gray_edges < topo.num_edges(),
            "every edge gray at fraction 0.4"
        );
    }

    #[test]
    fn gray_extremes() {
        let none = GrayLinkModel::new(0.0, 0.5, 2.0, 1);
        let all = GrayLinkModel::new(1.0, 0.5, 2.0, 1);
        for i in 0..50u32 {
            assert!(!none.is_gray(EdgeId::new(i)));
            assert!(all.is_gray(EdgeId::new(i)));
        }
        assert!((all.extra_loss() - 0.5).abs() < 1e-12);
        assert!((all.delay_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn chaos_combinator_blocks_cuts_and_crashes() {
        let mut rng = rng_for(9, "combi-topo");
        let topo = full_mesh(6, DelayRange::PAPER, &mut rng);
        let chaos = ChaosModel::none()
            .with_partition(PartitionModel::new(
                0.34,
                SimDuration::from_secs(10),
                SimDuration::from_secs(20),
                3,
            ))
            .with_crashes(CrashRestartModel::new(0.1, 2.0, 3));
        assert!(!chaos.is_empty());
        assert!(ChaosModel::none().is_empty());
        let t = SimTime::from_secs(2);
        for e in topo.edge_ids() {
            let edge = topo.edge(e);
            let expect = chaos.partition().unwrap().cuts(&topo, e, t)
                || chaos.node_down(edge.a(), t)
                || chaos.node_down(edge.b(), t);
            assert_eq!(chaos.edge_blocked(&topo, e, t), expect);
        }
        // At least one edge must be cut during the window in a 6-node mesh
        // (2 isolated × 4 others = 8 crossing edges).
        assert!(topo.edge_ids().any(|e| chaos.edge_blocked(&topo, e, t)));
    }
}
