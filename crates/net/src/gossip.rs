//! Deterministic epidemic dissemination of membership state.
//!
//! The churn layer (PR 6) detects membership changes; this module is the
//! *dissemination* half of that control plane. Instead of assuming every
//! broker learns each [`MembershipDelta`] instantly and losslessly (the
//! "oracle" model the runtime used so far), deltas become **rumors** that
//! spread epidemically over a lossy, partitionable control plane:
//!
//! * **Bounded partial views** (HyParView-style): every broker gossips
//!   with a small deterministic partner set — its two ring neighbors
//!   (which keep the view graph connected by construction) plus
//!   hash-picked shortcuts up to [`GossipConfig::view_size`].
//! * **Eager push** (Plumtree-style): each round, every broker that knows
//!   a live rumor pushes it to [`GossipConfig::fanout`] view partners.
//!   Pushes are individually lossy ([`GossipConfig::loss`]) and blocked
//!   across partitions.
//! * **Anti-entropy**: every [`GossipConfig::anti_entropy_interval`]
//!   rounds, ring-adjacent brokers exchange FNV digests of their known
//!   rumor sets and transfer whatever the other side is missing. This is
//!   the lazy-pull backstop that reconciles divergence after partitions
//!   heal, and the transfer count surfaces as *stale-entry
//!   reconciliations*.
//!
//! The simulation keeps one logical routing-table store, so a rumor is
//! handed to the router only once **every present broker** has learned it
//! (convergence gating): a partition stalls application, heal plus a few
//! anti-entropy rounds completes it. A rumor that remains unconverged for
//! more than [`GossipConfig::staleness_rounds`] rounds *while the control
//! plane is connected* is a protocol failure — the overlay reports the
//! still-ignorant brokers so the runtime's auditor can indict them
//! (`StaleRouteAfterConvergence`).
//!
//! Everything is pure and hash-driven (no ambient RNG): same seed, same
//! submissions, same tick sequence → bit-identical spread, counters and
//! digest.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::membership::MembershipDelta;
use crate::{NodeId, NodeSet};

/// Tuning knobs of the gossip overlay. `Default` matches the experiment
/// presets: view 4, fanout 2, anti-entropy every 2 rounds, staleness
/// indictment after 16 connected-but-unconverged rounds, lossless.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Partial-view size per broker (ring neighbors always included, so
    /// effective minimum is 2).
    pub view_size: usize,
    /// Eager-push targets drawn from the view per broker per round.
    pub fanout: usize,
    /// Rounds between anti-entropy digest exchanges; `0` disables
    /// anti-entropy entirely (eager push only — for ablations).
    pub anti_entropy_interval: u64,
    /// Rounds a rumor may stay unconverged while the control plane is
    /// connected before the ignorant brokers are reported stale.
    pub staleness_rounds: u64,
    /// Per-push loss probability of the control plane (anti-entropy
    /// exchanges model a reliable request/response and bypass it).
    pub loss: f64,
    /// Seed for every hash draw (partner choice, loss).
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            view_size: 4,
            fanout: 2,
            anti_entropy_interval: 2,
            staleness_rounds: 16,
            loss: 0.0,
            seed: 0,
        }
    }
}

/// One broker still routing on pre-rumor state `rounds` rounds after the
/// control plane (re)connected — a bounded-staleness violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleReport {
    /// The broker that has not learned the rumor.
    pub node: NodeId,
    /// Connected-but-unconverged rounds the rumor has accumulated.
    pub rounds: u64,
}

/// The outcome of one gossip round.
#[derive(Debug, Clone, Default)]
pub struct GossipTick {
    /// Deltas that reached every present broker this round, in submission
    /// order — ready to apply to the routing tables.
    pub converged: Vec<MembershipDelta>,
    /// Brokers caught past the staleness bound (each rumor indicts once).
    pub stale: Vec<StaleReport>,
}

/// Spread state of one membership delta.
#[derive(Debug, Clone)]
struct RumorState {
    delta: MembershipDelta,
    /// Brokers that have learned the rumor.
    infected: NodeSet,
    /// Consecutive rounds the rumor was fully spreadable (control plane
    /// connected over present brokers) yet unconverged.
    connected_rounds: u64,
    /// Whether the staleness indictment already fired for this rumor.
    flagged: bool,
}

/// SplitMix64-style finalizer: the module's only source of randomness.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to `[0, 1)` with 53-bit precision.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// FNV-1a over a byte stream (same constants as the trace digest).
#[inline]
fn fnv(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = acc;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The epidemic dissemination overlay: rumor spread state plus counters
/// for every broker in an `n`-node overlay.
///
/// # Example
///
/// ```
/// use dcrd_net::gossip::{GossipConfig, GossipOverlay};
/// use dcrd_net::membership::MembershipDelta;
/// use dcrd_net::NodeId;
///
/// let mut overlay = GossipOverlay::new(6, GossipConfig::default());
/// overlay.submit(
///     MembershipDelta::ConfirmDead { node: NodeId::new(3) },
///     NodeId::new(0),
///     0,
/// );
/// // Fully connected, lossless: the rumor converges within a few rounds.
/// let mut applied = Vec::new();
/// for epoch in 0..8 {
///     let tick = overlay.tick(epoch, |_, _| true, |n| n != NodeId::new(3));
///     applied.extend(tick.converged);
/// }
/// assert_eq!(applied.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GossipOverlay {
    config: GossipConfig,
    num_nodes: usize,
    /// Live rumors keyed by submission index (BTreeMap: deterministic
    /// iteration = submission order).
    rumors: BTreeMap<u64, RumorState>,
    next_rumor: u64,
    rumors_sent: u64,
    anti_entropy_rounds: u64,
    deltas_converged: u64,
    reconciliations: u64,
}

impl GossipOverlay {
    /// Creates an overlay for `num_nodes` brokers.
    #[must_use]
    pub fn new(num_nodes: usize, config: GossipConfig) -> Self {
        GossipOverlay {
            config,
            num_nodes,
            rumors: BTreeMap::new(),
            next_rumor: 0,
            rumors_sent: 0,
            anti_entropy_rounds: 0,
            deltas_converged: 0,
            reconciliations: 0,
        }
    }

    /// The configuration this overlay runs with.
    #[must_use]
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Eager pushes attempted so far (lost and blocked ones included —
    /// the sender cannot tell).
    #[must_use]
    pub fn rumors_sent(&self) -> u64 {
        self.rumors_sent
    }

    /// Anti-entropy digest-exchange rounds completed.
    #[must_use]
    pub fn anti_entropy_rounds(&self) -> u64 {
        self.anti_entropy_rounds
    }

    /// Rumors that reached every present broker and were handed over for
    /// application.
    #[must_use]
    pub fn deltas_converged(&self) -> u64 {
        self.deltas_converged
    }

    /// Stale entries transferred by anti-entropy (rumors one side of an
    /// exchange knew and the other did not).
    #[must_use]
    pub fn stale_reconciliations(&self) -> u64 {
        self.reconciliations
    }

    /// Rumors still spreading (submitted but not yet converged).
    #[must_use]
    pub fn active_rumors(&self) -> usize {
        self.rumors.len()
    }

    /// FNV digest of the full spread state (rumor ids, infected sets,
    /// counters) — the reconciliation summary brokers would exchange, and
    /// the determinism witness tests compare.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for (&id, r) in &self.rumors {
            h = fnv(h, &id.to_le_bytes());
            h = fnv(h, &r.connected_rounds.to_le_bytes());
            for i in 0..self.num_nodes {
                h = fnv(h, &[u8::from(r.infected.contains(NodeId::new(i as u32)))]);
            }
        }
        h = fnv(h, &self.rumors_sent.to_le_bytes());
        h = fnv(h, &self.anti_entropy_rounds.to_le_bytes());
        h = fnv(h, &self.deltas_converged.to_le_bytes());
        h = fnv(h, &self.reconciliations.to_le_bytes());
        h
    }

    /// The bounded partial view of `node`: both ring neighbors (keeps the
    /// view graph connected) plus hash-picked shortcuts up to
    /// `view_size`, self and duplicates excluded.
    #[must_use]
    pub fn view(&self, node: NodeId) -> Vec<NodeId> {
        let n = self.num_nodes as u32;
        if n < 2 {
            return Vec::new();
        }
        let me = node.index() as u32;
        let mut view: Vec<NodeId> = vec![NodeId::new((me + n - 1) % n), NodeId::new((me + 1) % n)];
        view.dedup();
        let mut salt = 0u64;
        while view.len() < self.config.view_size.min(self.num_nodes - 1) {
            let pick = mix(self.config.seed ^ mix(u64::from(me)) ^ salt) % u64::from(n);
            salt += 1;
            let candidate = NodeId::new(pick as u32);
            if candidate != node && !view.contains(&candidate) {
                view.push(candidate);
            }
            if salt > 8 * u64::from(n) {
                break; // tiny overlays: view saturated
            }
        }
        view
    }

    /// Injects a freshly detected delta as a rumor known only to
    /// `witness` (the broker that observed the change) as of `epoch`.
    pub fn submit(&mut self, delta: MembershipDelta, witness: NodeId, _epoch: u64) {
        let id = self.next_rumor;
        self.next_rumor = self.next_rumor.saturating_add(1);
        let mut infected = NodeSet::new();
        infected.insert(witness);
        self.rumors.insert(
            id,
            RumorState {
                delta,
                infected,
                connected_rounds: 0,
                flagged: false,
            },
        );
    }

    /// Runs one gossip round at `epoch`: eager push, periodic
    /// anti-entropy, convergence and staleness checks. `reachable(a, b)`
    /// is the control-plane connectivity oracle (partitions and crashed
    /// endpoints block), `present(n)` says whether broker `n` is a
    /// current overlay member that must learn each rumor.
    pub fn tick(
        &mut self,
        epoch: u64,
        reachable: impl Fn(NodeId, NodeId) -> bool,
        present: impl Fn(NodeId) -> bool,
    ) -> GossipTick {
        let mut out = GossipTick::default();
        let n = self.num_nodes;
        let mut present_set = NodeSet::new();
        for i in 0..n {
            let node = NodeId::new(i as u32);
            if present(node) {
                present_set.insert(node);
            }
        }

        // Eager push: every present infected broker pushes each live
        // rumor to `fanout` view partners, rotated by (epoch, rumor).
        let ids: Vec<u64> = self.rumors.keys().copied().collect();
        for id in &ids {
            let snapshot = match self.rumors.get(id) {
                Some(r) => r.infected.clone(),
                None => continue,
            };
            let mut newly = NodeSet::new();
            for i in 0..n {
                let u = NodeId::new(i as u32);
                if !snapshot.contains(u) || !present_set.contains(u) {
                    continue;
                }
                let view = self.view(u);
                if view.is_empty() {
                    continue;
                }
                let start =
                    mix(self.config.seed ^ mix(*id) ^ mix(epoch) ^ u64::from(u.index() as u32))
                        as usize
                        % view.len();
                for k in 0..self.config.fanout.min(view.len()) {
                    let v = view[(start + k) % view.len()];
                    self.rumors_sent = self.rumors_sent.saturating_add(1);
                    if !reachable(u, v) || !present_set.contains(v) {
                        continue;
                    }
                    let draw = unit(mix(self.config.seed
                        ^ mix(*id)
                        ^ mix(epoch.wrapping_mul(0x9E37))
                        ^ mix(u64::from(u.index() as u32) << 32 | u64::from(v.index() as u32))));
                    if draw < self.config.loss {
                        continue;
                    }
                    newly.insert(v);
                }
            }
            if let Some(r) = self.rumors.get_mut(id) {
                r.infected.union_with(&newly);
            }
        }

        // Anti-entropy: ring-adjacent present brokers exchange digests
        // and transfer every rumor exactly one side knows. Modeled as a
        // reliable request/response (no loss draw) but still blocked by
        // partitions and absent peers.
        let interval = self.config.anti_entropy_interval;
        if interval > 0 && epoch.is_multiple_of(interval) && n >= 2 {
            self.anti_entropy_rounds = self.anti_entropy_rounds.saturating_add(1);
            for i in 0..n {
                let u = NodeId::new(i as u32);
                let v = NodeId::new(((i + 1) % n) as u32);
                if u == v
                    || !present_set.contains(u)
                    || !present_set.contains(v)
                    || !reachable(u, v)
                {
                    continue;
                }
                for r in self.rumors.values_mut() {
                    let (at_u, at_v) = (r.infected.contains(u), r.infected.contains(v));
                    if at_u != at_v {
                        r.infected.insert(if at_u { v } else { u });
                        self.reconciliations = self.reconciliations.saturating_add(1);
                    }
                }
            }
        }

        // Convergence: a rumor known to every present broker is done —
        // hand the delta over (in submission order) and retire it.
        let mut done: Vec<u64> = Vec::new();
        for (&id, r) in &self.rumors {
            let converged = (0..n).all(|i| {
                let node = NodeId::new(i as u32);
                !present_set.contains(node) || r.infected.contains(node)
            });
            if converged {
                out.converged.push(r.delta);
                done.push(id);
            }
        }
        for id in &done {
            self.rumors.remove(id);
            self.deltas_converged = self.deltas_converged.saturating_add(1);
        }

        // Staleness: a surviving rumor whose infected set can reach every
        // present broker over the control plane (i.e. any partition has
        // healed) accumulates connected rounds; past the bound, the
        // still-ignorant brokers are reported once.
        if self.rumors.is_empty() {
            return out;
        }
        let adjacency = self.adjacency(&present_set, &reachable);
        for r in self.rumors.values_mut() {
            let coverable = Self::reach_closure(n, &r.infected, &present_set, &adjacency);
            let connected = (0..n).all(|i| {
                let node = NodeId::new(i as u32);
                !present_set.contains(node) || coverable.contains(node)
            });
            if !connected {
                r.connected_rounds = 0;
                continue;
            }
            r.connected_rounds = r.connected_rounds.saturating_add(1);
            if r.connected_rounds > self.config.staleness_rounds && !r.flagged {
                r.flagged = true;
                for i in 0..n {
                    let node = NodeId::new(i as u32);
                    if present_set.contains(node) && !r.infected.contains(node) {
                        out.stale.push(StaleReport {
                            node,
                            rounds: r.connected_rounds,
                        });
                    }
                }
            }
        }
        out
    }

    /// Pairwise control-plane adjacency over present brokers (the gossip
    /// substrate is logically any-to-any; views only bound who talks
    /// routinely, not who *could*).
    fn adjacency(
        &self,
        present: &NodeSet,
        reachable: &impl Fn(NodeId, NodeId) -> bool,
    ) -> Vec<NodeSet> {
        let n = self.num_nodes;
        let mut adj = vec![NodeSet::new(); n];
        for i in 0..n {
            let a = NodeId::new(i as u32);
            if !present.contains(a) {
                continue;
            }
            for j in (i + 1)..n {
                let b = NodeId::new(j as u32);
                if present.contains(b) && reachable(a, b) {
                    adj[i].insert(b);
                    adj[j].insert(a);
                }
            }
        }
        adj
    }

    /// Present brokers reachable from the infected seed set over `adj`.
    fn reach_closure(n: usize, seed: &NodeSet, present: &NodeSet, adj: &[NodeSet]) -> NodeSet {
        let mut seen = NodeSet::new();
        let mut frontier: Vec<NodeId> = Vec::new();
        for i in 0..n {
            let node = NodeId::new(i as u32);
            if seed.contains(node) && present.contains(node) {
                seen.insert(node);
                frontier.push(node);
            }
        }
        while let Some(u) = frontier.pop() {
            for j in 0..n {
                let v = NodeId::new(j as u32);
                if adj[u.index()].contains(v) && seen.insert(v) {
                    frontier.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dead(node: u32) -> MembershipDelta {
        MembershipDelta::ConfirmDead {
            node: NodeId::new(node),
        }
    }

    /// Drives `overlay` for up to `rounds` ticks, collecting converged
    /// deltas and stale reports.
    fn drive(
        overlay: &mut GossipOverlay,
        from: u64,
        rounds: u64,
        reachable: impl Fn(NodeId, NodeId) -> bool + Copy,
        present: impl Fn(NodeId) -> bool + Copy,
    ) -> (Vec<MembershipDelta>, Vec<StaleReport>) {
        let (mut converged, mut stale) = (Vec::new(), Vec::new());
        for epoch in from..from + rounds {
            let tick = overlay.tick(epoch, reachable, present);
            converged.extend(tick.converged);
            stale.extend(tick.stale);
        }
        (converged, stale)
    }

    #[test]
    fn views_are_bounded_connected_and_self_free() {
        let overlay = GossipOverlay::new(9, GossipConfig::default());
        for i in 0..9u32 {
            let node = NodeId::new(i);
            let view = overlay.view(node);
            assert!(view.len() <= 4, "view of {node} too big: {view:?}");
            assert!(!view.contains(&node), "self in view of {node}");
            // Ring neighbors guarantee connectivity.
            assert!(view.contains(&NodeId::new((i + 1) % 9)));
            assert!(view.contains(&NodeId::new((i + 9 - 1) % 9)));
            let mut dedup = view.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), view.len(), "duplicate in view of {node}");
        }
    }

    #[test]
    fn rumor_converges_on_connected_overlay_within_bound() {
        let mut overlay = GossipOverlay::new(10, GossipConfig::default());
        overlay.submit(dead(7), NodeId::new(0), 0);
        let (converged, stale) = drive(&mut overlay, 0, 16, |_, _| true, |n| n != NodeId::new(7));
        assert_eq!(converged, vec![dead(7)]);
        assert!(stale.is_empty(), "healthy spread reported stale: {stale:?}");
        assert_eq!(overlay.deltas_converged(), 1);
        assert_eq!(overlay.active_rumors(), 0);
        assert!(overlay.rumors_sent() > 0);
        assert!(overlay.anti_entropy_rounds() > 0);
    }

    #[test]
    fn lossy_control_plane_still_converges_via_anti_entropy() {
        let config = GossipConfig {
            loss: 0.9,
            ..GossipConfig::default()
        };
        let mut overlay = GossipOverlay::new(8, config);
        overlay.submit(dead(5), NodeId::new(2), 0);
        let (converged, stale) = drive(&mut overlay, 0, 16, |_, _| true, |_| true);
        assert_eq!(converged.len(), 1, "anti-entropy failed to reconcile");
        assert!(stale.is_empty());
        assert!(
            overlay.stale_reconciliations() > 0,
            "reconciliation counter never moved under 90% push loss"
        );
    }

    #[test]
    fn partition_stalls_convergence_and_heal_completes_it() {
        // Nodes 0..4 vs 4..8; rumor born on the small side.
        let cut = |a: NodeId, b: NodeId| (a.index() < 4) == (b.index() < 4);
        let mut overlay = GossipOverlay::new(8, GossipConfig::default());
        overlay.submit(dead(6), NodeId::new(1), 0);
        let (converged, stale) = drive(&mut overlay, 0, 30, cut, |_| true);
        assert!(
            converged.is_empty(),
            "rumor crossed a partition it cannot cross"
        );
        assert!(
            stale.is_empty(),
            "staleness must not be charged while partitioned: {stale:?}"
        );
        assert_eq!(overlay.active_rumors(), 1);
        // Heal: convergence completes well inside the staleness bound.
        let (converged, stale) = drive(&mut overlay, 30, 16, |_, _| true, |_| true);
        assert_eq!(converged, vec![dead(6)]);
        assert!(
            stale.is_empty(),
            "post-heal spread reported stale: {stale:?}"
        );
    }

    #[test]
    fn broken_dissemination_is_indicted_as_stale() {
        // Total push loss and no anti-entropy: the rumor can never spread
        // even though the control plane is connected.
        let config = GossipConfig {
            loss: 1.0,
            anti_entropy_interval: 0,
            staleness_rounds: 5,
            ..GossipConfig::default()
        };
        let mut overlay = GossipOverlay::new(6, config);
        overlay.submit(dead(4), NodeId::new(0), 0);
        let (converged, stale) = drive(&mut overlay, 0, 12, |_, _| true, |_| true);
        assert!(converged.is_empty());
        // Every broker but the witness is indicted, exactly once.
        assert_eq!(stale.len(), 5, "one report per ignorant broker: {stale:?}");
        assert!(stale.iter().all(|s| s.rounds > 5));
        assert!(stale.iter().all(|s| s.node != NodeId::new(0)));
    }

    #[test]
    fn absent_brokers_do_not_gate_convergence() {
        let mut overlay = GossipOverlay::new(6, GossipConfig::default());
        overlay.submit(dead(3), NodeId::new(0), 0);
        // Broker 3 is dead (the rumor's own subject) and broker 5 has
        // churned out: neither must be waited for.
        let present = |n: NodeId| n != NodeId::new(3) && n != NodeId::new(5);
        let (converged, _) = drive(&mut overlay, 0, 12, |_, _| true, present);
        assert_eq!(converged, vec![dead(3)]);
    }

    #[test]
    fn same_seed_same_schedule_is_bit_identical() {
        let run = || {
            let config = GossipConfig {
                loss: 0.4,
                seed: 0x5EED,
                ..GossipConfig::default()
            };
            let mut overlay = GossipOverlay::new(9, config);
            overlay.submit(dead(2), NodeId::new(7), 0);
            overlay.submit(dead(8), NodeId::new(1), 1);
            let cut = |a: NodeId, b: NodeId| (a.index() < 3) == (b.index() < 3);
            let _ = drive(&mut overlay, 0, 10, cut, |_| true);
            let _ = drive(&mut overlay, 10, 10, |_, _| true, |_| true);
            overlay.digest()
        };
        assert_eq!(run(), run(), "gossip spread is not deterministic");
    }

    #[test]
    fn different_seeds_spread_differently() {
        let digest = |seed: u64| {
            let config = GossipConfig {
                loss: 0.5,
                seed,
                ..GossipConfig::default()
            };
            let mut overlay = GossipOverlay::new(12, config);
            overlay.submit(dead(4), NodeId::new(0), 0);
            let _ = overlay.tick(1, |_, _| true, |_| true);
            overlay.digest()
        };
        assert_ne!(digest(1), digest(2), "seed does not reach the loss draws");
    }
}
