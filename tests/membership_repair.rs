//! Oracle equivalence for incremental membership repair: after an
//! arbitrary scripted churn sequence, the incremental repair path must
//! leave every **present** broker with byte-identical sending lists to a
//! from-scratch `rebuild_tables` on the final topology.
//!
//! (Absent brokers' own table rows are non-normative — the runtime never
//! lets an absent broker act — so the comparison quantifies over present
//! brokers only.)

use dcrd::core::{DcrdConfig, DcrdStrategy, RepairMode};
use dcrd::experiments::runner::{build_topology, build_workload};
use dcrd::experiments::scenario::{Scenario, ScenarioBuilder};
use dcrd::net::estimate::analytic_estimates;
use dcrd::net::failure::{FailureModel, LinkFailureModel, LinkOutageModel};
use dcrd::net::membership::MembershipDelta;
use dcrd::net::{NodeId, Topology};
use dcrd::pubsub::strategy::{RoutingStrategy, RunParams, SetupContext};
use dcrd::pubsub::workload::Workload;
use dcrd::sim::SimTime;

fn scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .nodes(14)
        .degree(4)
        .failure_probability(0.05)
        .topics(5)
        .duration_secs(60)
        .repetitions(1)
        .seed(seed)
        .build()
}

/// Sets up one strategy over the given environment.
fn setup(topo: &Topology, workload: &Workload, config: DcrdConfig) -> DcrdStrategy {
    let estimates = analytic_estimates(topo, 0.05, 1e-4);
    let failure = FailureModel::new(LinkOutageModel::Epoch(LinkFailureModel::new(0.05, 1)), None);
    let ctx = SetupContext {
        topology: topo,
        estimates: &estimates,
        workload,
        failure_oracle: &failure,
        params: RunParams::default(),
    };
    let mut strategy = DcrdStrategy::new(config);
    strategy.setup(&ctx);
    strategy
}

/// The incremental arm and the global-rebuild oracle digest the same
/// scripted churn; every present broker's sending list must match
/// byte-for-byte at the end.
fn assert_oracle_equivalence(seed: u64, script: impl Fn(&[NodeId]) -> Vec<Vec<MembershipDelta>>) {
    let s = scenario(seed);
    let topo = build_topology(&s, 0);
    let workload = build_workload(&s, &topo, 0);
    // Churn only non-publishers so every topic keeps its source.
    let publishers: Vec<NodeId> = workload.topics().iter().map(|t| t.publisher).collect();
    let churnable: Vec<NodeId> = topo
        .nodes()
        .filter(|node| !publishers.contains(node))
        .collect();
    assert!(
        churnable.len() >= 3,
        "need at least three churnable brokers"
    );
    let batches = script(&churnable);

    let mut incremental = setup(&topo, &workload, DcrdConfig::churn_hardened());
    let mut oracle_config = DcrdConfig::churn_hardened();
    oracle_config.membership.repair = RepairMode::GlobalRebuild;
    let mut oracle = setup(&topo, &workload, oracle_config);

    let mut now = SimTime::from_secs(1);
    for batch in &batches {
        incremental.on_membership(batch, now);
        oracle.on_membership(batch, now);
        now += dcrd::sim::SimDuration::from_secs(1);
    }

    // The arms agree on who is gone, and only the oracle rebuilt (the
    // counter excludes setup's initial construction).
    assert_eq!(incremental.absent_brokers(), oracle.absent_brokers());
    assert_eq!(incremental.global_rebuilds(), 0, "incremental arm rebuilt");
    assert_eq!(incremental.incremental_repairs() as usize, batches.len());
    assert!(oracle.global_rebuilds() > 0, "oracle never rebuilt");

    let absent = incremental.absent_brokers().clone();
    let mut compared = 0usize;
    for t in workload.topics() {
        for sub in &t.subscriptions {
            let a = incremental.tables_for(t.topic, t.publisher, sub.subscriber);
            let b = oracle.tables_for(t.topic, t.publisher, sub.subscriber);
            let (a, b) = match (a, b) {
                (Some(a), Some(b)) => (a, b),
                (a, b) => {
                    assert_eq!(a.is_some(), b.is_some(), "table existence diverged");
                    continue;
                }
            };
            for node in topo.nodes().filter(|&node| !absent.contains(node)) {
                assert_eq!(
                    a.sending_list(node),
                    b.sending_list(node),
                    "sending list of {node} diverged for {} {} → {}",
                    t.topic,
                    t.publisher,
                    sub.subscriber
                );
                assert_eq!(
                    a.requirement(node).to_bits(),
                    b.requirement(node).to_bits(),
                    "requirement of {node} diverged"
                );
                compared += 1;
            }
        }
    }
    assert!(compared > 0, "equivalence check compared nothing");
}

/// Deaths, graceful leaves, a rejoin, interleaved across batches.
#[test]
fn scripted_churn_matches_from_scratch_rebuild() {
    assert_oracle_equivalence(0x0DC2D, |churnable| {
        let (a, b, c) = (churnable[0], churnable[1], churnable[2]);
        vec![
            vec![MembershipDelta::ConfirmDead { node: a }],
            vec![
                MembershipDelta::Leave { node: b },
                MembershipDelta::Refute {
                    node: c,
                    incarnation: 1,
                },
            ],
            vec![MembershipDelta::Join { node: a }],
            vec![MembershipDelta::ConfirmDead { node: c }],
        ]
    });
}

/// A mass casualty in a single batch: several brokers die at once.
#[test]
fn batched_mass_death_matches_from_scratch_rebuild() {
    assert_oracle_equivalence(99, |churnable| {
        vec![churnable
            .iter()
            .take(3)
            .map(|&node| MembershipDelta::ConfirmDead { node })
            .collect()]
    });
}

/// Everyone churnable leaves, then everyone comes back: the final state
/// must equal the initial full-membership tables by both routes.
#[test]
fn full_departure_and_return_matches_rebuild() {
    assert_oracle_equivalence(7, |churnable| {
        vec![
            churnable
                .iter()
                .map(|&node| MembershipDelta::Leave { node })
                .collect(),
            churnable
                .iter()
                .map(|&node| MembershipDelta::Join { node })
                .collect(),
        ]
    });
}
