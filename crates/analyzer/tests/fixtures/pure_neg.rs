//! Clean sans-io code: owned state, injected time, and Arc'd immutable
//! snapshots (explicitly allowed — sharing data is not a side effect).

use std::collections::BTreeMap;
use std::sync::Arc;

pub fn pure(now: u64, table: &BTreeMap<u32, u32>) -> u64 {
    let shared: Arc<BTreeMap<u32, u32>> = Arc::new(table.clone());
    now + shared.len() as u64
}
