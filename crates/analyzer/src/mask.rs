//! Source masking: the lexical pre-pass every rule runs on.
//!
//! The rules are substring/token scans, so anything that could make a
//! pattern appear where no code is — comments, string/char literals and
//! `#[cfg(test)]` regions — is blanked out first. The mask is
//! *length-preserving*: every masked byte becomes a space (newlines are
//! kept), so byte offsets, line numbers and columns in the masked text
//! map 1:1 onto the original source.

/// Replaces comments and string/char literals with spaces.
///
/// Handles line comments, nested block comments, plain and raw (byte)
/// strings, char literals, and distinguishes lifetimes (`'a`) from char
/// literals (`'a'`) the way rustc's lexer does: a quote opens a char
/// literal only if it closes as one.
#[must_use]
pub fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => i = mask_string(bytes, &mut out, i),
            b'r' | b'b' if !prev_is_ident(bytes, i) => {
                if let Some(next) = raw_or_byte_string_end(bytes, i) {
                    blank(&mut out, i, next);
                    i = next;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    // A lifetime: skip the quote and its identifier.
                    i += 1;
                    while i < bytes.len() && is_ident(bytes[i]) {
                        i += 1;
                    }
                }
            }
            _ => i += 1,
        }
    }
    // The mask only rewrites ASCII bytes in place, so it stays valid UTF-8
    // everywhere except inside literals — where every byte became a space.
    String::from_utf8(out).unwrap_or_default()
}

/// Blanks `#[cfg(test)]` items (in this codebase: the test modules) from an
/// already-masked source, so "non-test code" rules skip them. The
/// attribute, any attributes after it, and the braced body of the item
/// that follows are all blanked.
#[must_use]
pub fn strip_test_regions(masked: &str) -> String {
    let mut out = masked.as_bytes().to_vec();
    let bytes = masked.as_bytes();
    let needle = b"#[cfg(test)]";
    let mut from = 0;
    while let Some(pos) = find(bytes, needle, from) {
        let mut i = pos + needle.len();
        // Skip whitespace and any further attributes before the item.
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if bytes.get(i) == Some(&b'#') && bytes.get(i + 1) == Some(&b'[') {
                while i < bytes.len() && bytes[i] != b']' {
                    i += 1;
                }
                i += 1;
            } else {
                break;
            }
        }
        // Blank through the item's braced body (or to `;` for a
        // body-less declaration).
        let mut end = i;
        let mut depth = 0usize;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    if depth == 0 {
                        break; // Malformed input: stop before underflow.
                    }
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        blank(&mut out, pos, end);
        from = end.max(pos + 1);
    }
    String::from_utf8(out).unwrap_or_default()
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    for b in out.iter_mut().take(to).skip(from) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident(bytes[i - 1])
}

fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// End (exclusive) of a plain string literal starting at `i` (masking as
/// it goes). Returns the index after the closing quote.
fn mask_string(bytes: &[u8], out: &mut [u8], start: usize) -> usize {
    let mut i = start;
    out[i] = b' ';
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                out[i] = b' ';
                if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                    out[i + 1] = b' ';
                }
                i += 2;
            }
            b'"' => {
                out[i] = b' ';
                return i + 1;
            }
            b'\n' => i += 1,
            _ => {
                out[i] = b' ';
                i += 1;
            }
        }
    }
    i
}

/// If `i` starts a raw/byte string (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`),
/// returns the index just past its closing delimiter.
fn raw_or_byte_string_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start;
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) == Some(&b'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while raw && bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    if !raw {
        // A byte string: plain string escape rules.
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return Some(i + 1),
                _ => i += 1,
            }
        }
        return Some(i);
    }
    // A raw string: ends at `"` followed by the right number of `#`s.
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return Some(i + 1 + hashes);
        }
        i += 1;
    }
    Some(i)
}

/// If the quote at `i` opens a char literal, returns the index after its
/// closing quote; `None` means it is a lifetime.
fn char_literal_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start + 1;
    if i >= bytes.len() {
        return None;
    }
    if bytes[i] == b'\\' {
        // Escape: scan to the closing quote (handles \n, \u{…}, \x7f).
        i += 2;
        while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
            i += 1;
        }
        return (bytes.get(i) == Some(&b'\'')).then_some(i + 1);
    }
    // One character (possibly multi-byte) followed by a closing quote.
    let width = utf8_width(bytes[i]);
    let close = i + width;
    (bytes.get(close) == Some(&b'\'') && bytes[i] != b'\'').then_some(close + 1)
}

fn utf8_width(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap\nlet y = 1; /* HashMap */";
        let masked = mask_source(src);
        assert!(!masked.contains("HashMap"));
        assert!(masked.contains("let x ="));
        assert!(masked.contains("let y = 1;"));
        assert_eq!(masked.len(), src.len());
    }

    #[test]
    fn masks_nested_block_comments_and_raw_strings() {
        let src = "/* outer /* HashMap */ still */ let s = r#\"HashSet\"#;";
        let masked = mask_source(src);
        assert!(!masked.contains("HashMap"));
        assert!(!masked.contains("HashSet"));
        assert!(masked.contains("let s ="));
    }

    #[test]
    fn lifetimes_survive_but_char_literals_are_masked() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let masked = mask_source(src);
        assert!(masked.contains("<'a>"));
        assert!(masked.contains("&'a str"));
        assert!(!masked.contains("'x'"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = "let s = \"a\\\"HashMap\\\"b\"; HashSet";
        let masked = mask_source(src);
        assert!(!masked.contains("HashMap"));
        assert!(masked.contains("HashSet"));
    }

    #[test]
    fn test_modules_are_stripped() {
        let src =
            "fn live() { unwrap_me(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap() }\n}\n";
        let stripped = strip_test_regions(&mask_source(src));
        assert!(stripped.contains("unwrap_me"));
        assert!(!stripped.contains(".unwrap()"));
    }

    #[test]
    fn newlines_survive_masking_for_line_numbers() {
        let src = "a\n/* b\nc */\nd\n";
        let masked = mask_source(src);
        assert_eq!(masked.matches('\n').count(), src.matches('\n').count());
    }
}
