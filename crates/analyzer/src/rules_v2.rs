//! The graph-based rule passes: `PANIC001` and `LAYER001`.
//!
//! Unlike the lexical rules in [`crate::rules`], these need the whole
//! workspace at once: `PANIC001` walks the [`crate::graph::SymbolGraph`]
//! call graph from the hot-path entry points, and `LAYER001` checks every
//! `Cargo.toml` dependency edge against the `[layers]` order declared in
//! `analyzer.toml`.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::config::AnalyzerConfig;
use crate::graph::SymbolGraph;
use crate::rules::Diagnostic;

/// The functions that must be panic-free together with everything they
/// can reach: the Theorem-1 router hot path, the runtime's per-event
/// tick, and both codec directions (attacker-facing on decode, invariant
/// on encode). `(crate dir, owner type, fn name)`.
pub const PANIC_ENTRY_POINTS: &[(&str, Option<&str>, &str)] = &[
    ("core", Some("DcrdStrategy"), "process"),
    ("pubsub", Some("OverlayRuntime"), "tick"),
    ("pubsub", None, "decode_packet"),
    ("pubsub", None, "encode_packet"),
];

/// `PANIC001`: every potential panic site inside a function transitively
/// reachable from [`PANIC_ENTRY_POINTS`]. Each diagnostic carries the BFS
/// call chain from the entry point as its note. Entry points that do not
/// exist in the scanned tree are skipped (fixture workspaces seed only
/// the entries they exercise).
#[must_use]
pub fn panic_reachability(
    graph: &SymbolGraph,
    texts: &BTreeMap<String, (String, String)>,
) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for &(krate, owner, name) in PANIC_ENTRY_POINTS {
        let roots = graph.find(krate, owner, name);
        if roots.is_empty() {
            continue;
        }
        let parents = graph.reachable_from(&roots);
        for &idx in parents.keys() {
            let f = &graph.fns[idx];
            for site in &f.panics {
                if !seen.insert((f.file.clone(), site.offset)) {
                    continue;
                }
                let Some((original, masked)) = texts.get(&f.file) else {
                    continue;
                };
                out.push(crate::rules::diagnostic_at(
                    "PANIC001",
                    &f.file,
                    original,
                    masked,
                    site.offset,
                    format!(
                        "{} reachable via {}",
                        site.kind.label(),
                        graph.chain(&parents, idx)
                    ),
                ));
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    out
}

/// `LAYER001`: every `dcrd-*` entry in a manifest's `[dependencies]`
/// section must name a crate in a strictly lower layer of the `[layers]`
/// order. `manifests` maps workspace-relative `Cargo.toml` paths to their
/// contents; crates absent from the order are unconstrained.
#[must_use]
pub fn layering(manifests: &BTreeMap<String, String>, cfg: &AnalyzerConfig) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    if cfg.layer_order.is_empty() {
        return out;
    }
    for (path, toml) in manifests {
        let krate = manifest_crate(path);
        let Some(my_layer) = cfg.layer_of(&krate) else {
            continue;
        };
        let mut in_deps = false;
        for (lineno, raw) in toml.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps || line.starts_with('#') {
                continue;
            }
            let Some(dep_name) = line.split(['=', '.']).next().map(str::trim) else {
                continue;
            };
            let Some(dep_dir) = dep_name.strip_prefix("dcrd-") else {
                continue;
            };
            let Some(dep_layer) = cfg.layer_of(dep_dir) else {
                continue;
            };
            if dep_layer >= my_layer {
                out.push(Diagnostic {
                    rule: "LAYER001",
                    path: path.clone(),
                    line: lineno + 1,
                    col: 1,
                    snippet: line.to_string(),
                    note: format!(
                        "`{krate}` (layer {my_layer}) may only depend on layers \
                         below it, but `{dep_dir}` is at layer {dep_layer}"
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// The crate key a manifest path belongs to (`crates/core/Cargo.toml` →
/// `core`, the root manifest → `dcrd`).
fn manifest_crate(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("dcrd")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::parse_cargo_deps;
    use crate::mask::{mask_source, strip_test_regions};

    fn analyze_panic(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut texts: BTreeMap<String, (String, String)> = BTreeMap::new();
        let mut masked_files: Vec<(String, String)> = Vec::new();
        for (p, s) in files {
            let masked = strip_test_regions(&mask_source(s));
            masked_files.push((p.to_string(), masked.clone()));
            texts.insert(p.to_string(), (s.to_string(), masked));
        }
        let mut deps = BTreeMap::new();
        deps.insert("core".to_string(), BTreeSet::new());
        deps.insert("pubsub".to_string(), BTreeSet::new());
        let graph = SymbolGraph::build(&masked_files, deps);
        panic_reachability(&graph, &texts)
    }

    #[test]
    fn transitive_panic_is_caught_with_a_chain_note() {
        let diags = analyze_panic(&[(
            "crates/core/src/router.rs",
            "pub struct DcrdStrategy;\n\
             impl DcrdStrategy {\n\
                 pub fn process(&mut self) { self.helper(); }\n\
                 fn helper(&self) { deep_util(); }\n\
             }\n\
             fn deep_util() { let v: Vec<u32> = Vec::new(); let _ = v[3]; }\n",
        )]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "PANIC001");
        assert!(diags[0].note.contains("indexing"));
        assert!(
            diags[0]
                .note
                .contains("DcrdStrategy::process → DcrdStrategy::helper → deep_util"),
            "{}",
            diags[0].note
        );
    }

    #[test]
    fn unreachable_panics_are_not_flagged() {
        let diags = analyze_panic(&[(
            "crates/core/src/router.rs",
            "pub struct DcrdStrategy;\n\
             impl DcrdStrategy { pub fn process(&mut self) {} }\n\
             fn cold_path() { panic!(\"never called from an entry point\"); }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_entry_points_are_skipped() {
        let diags = analyze_panic(&[(
            "crates/core/src/lib.rs",
            "pub fn unrelated() { panic!(\"boom\") }\n",
        )]);
        assert!(diags.is_empty());
    }

    fn layer_cfg() -> AnalyzerConfig {
        AnalyzerConfig::parse("[layers]\norder = \"sim < net < pubsub | core < experiments\"\n")
            .expect("parses")
    }

    #[test]
    fn upward_and_sideways_deps_are_flagged() {
        let mut manifests = BTreeMap::new();
        manifests.insert(
            "crates/net/Cargo.toml".to_string(),
            "[package]\nname = \"dcrd-net\"\n[dependencies]\n\
             dcrd-sim.workspace = true\n\
             dcrd-experiments.workspace = true\n"
                .to_string(),
        );
        manifests.insert(
            "crates/pubsub/Cargo.toml".to_string(),
            "[dependencies]\ndcrd-core.workspace = true\n".to_string(),
        );
        let diags = layering(&manifests, &layer_cfg());
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].path.ends_with("net/Cargo.toml"));
        assert!(diags[0].snippet.contains("dcrd-experiments"));
        // pubsub and core share a layer: peers may not depend on each other.
        assert!(diags[1].path.ends_with("pubsub/Cargo.toml"));
        assert!(diags[1].note.contains("layer 2"));
    }

    #[test]
    fn downward_deps_and_dev_dependencies_are_clean() {
        let mut manifests = BTreeMap::new();
        manifests.insert(
            "crates/experiments/Cargo.toml".to_string(),
            "[dependencies]\ndcrd-sim.workspace = true\ndcrd-core.workspace = true\n\
             [dev-dependencies]\ndcrd-experiments = { path = \".\" }\n"
                .to_string(),
        );
        assert!(layering(&manifests, &layer_cfg()).is_empty());
    }

    #[test]
    fn crates_outside_the_order_are_unconstrained() {
        let mut manifests = BTreeMap::new();
        manifests.insert(
            "crates/scratchpad/Cargo.toml".to_string(),
            "[dependencies]\ndcrd-experiments.workspace = true\n".to_string(),
        );
        assert!(layering(&manifests, &layer_cfg()).is_empty());
    }

    #[test]
    fn cargo_deps_ignore_workspace_tables() {
        let toml = "[workspace.dependencies]\ndcrd-sim = { path = \"crates/sim\" }\n\
                    [dependencies]\ndcrd-net.workspace = true\n";
        assert_eq!(parse_cargo_deps(toml), BTreeSet::from(["net".to_string()]));
    }
}
