//! Recovery study: end-to-end reliability under broker crashes.
//!
//! One sweep over the crash-restart chaos model comparing three arms on
//! **identical** repetitions (same topology, workload and crash
//! schedule):
//!
//! * **DCRD-recovery** — the recovery-hardened router: durable custody
//!   journal, restart replay and NACK-driven gap repair
//!   ([`DcrdConfig::recovery_hardened`]).
//! * **DCRD-volatile** — the chaos-hardened router without durability:
//!   a crashed broker loses every packet it held.
//! * **R-Tree** — the paper's baseline.
//!
//! The crash rates are far harsher than the chaos study's: at the top of
//! the sweep every broker spends roughly a third of the run down. Links
//! themselves are clean (`Pf = Pl = 0`) so crashes are the *only* loss
//! mechanism and the delivery gap between the arms isolates the custody
//! journal's contribution.
//!
//! The recovery arm runs with the end-to-end sequence audit enabled: a
//! published `(message, subscriber)` pair that never reaches its
//! subscriber is a [`SequenceGap`](dcrd_pubsub::audit::Violation), and a
//! pair delivered twice is a `DuplicateDelivery`. A healthy journal +
//! dedup window reports zero of both across the whole sweep.

use dcrd_core::DcrdConfig;
use dcrd_metrics::report::{FigureSeries, SeriesPoint};
use dcrd_metrics::AggregateMetrics;

use crate::runner::{run_labeled, StrategyKind};
use crate::scenario::{CrashSpec, Quality, Scenario, ScenarioBuilder};

/// Per-broker per-epoch crash-probability sweep.
pub const RECOVERY_CRASH_SWEEP: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// Mean downtime of a crashed broker, in epochs.
const MEAN_DOWN_EPOCHS: f64 = 1.5;

/// The recovery study: one degradation series over crash rate plus the
/// pooled auditor verdict (which, for the recovery arm, includes the
/// end-to-end sequence check).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// `recovery-crashes`: delivery per crash rate, three arms per point.
    pub series: FigureSeries,
    /// Invariant violations summed over every run of the study.
    pub total_audit_violations: u64,
}

/// Small clean-link overlay: crashes are the only loss mechanism.
fn base(quality: Quality) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .nodes(8)
        .full_mesh()
        .failure_probability(0.0)
        .loss_rate(0.0)
        .topics(4)
        .quality(quality)
        .audit(true)
}

/// Runs the three contenders on identical repetitions of one scenario.
/// Only the recovery arm gets the sequence check: the volatile arms
/// *expect* to lose pairs under crashes, which is the point of the
/// comparison, not a bug in them.
fn contenders(scenario: Scenario) -> Vec<AggregateMetrics> {
    let recovery = Scenario {
        dcrd: DcrdConfig::recovery_hardened(),
        audit_sequences: true,
        ..scenario
    };
    let volatile = Scenario {
        dcrd: DcrdConfig::chaos_hardened(),
        ..scenario
    };
    vec![
        run_labeled(&recovery, StrategyKind::Dcrd, "DCRD-recovery"),
        run_labeled(&volatile, StrategyKind::Dcrd, "DCRD-volatile"),
        run_labeled(&scenario, StrategyKind::RTree, "R-Tree"),
    ]
}

/// Delivery degradation vs crash rate (mean downtime 1.5 epochs).
#[must_use]
pub fn recovery_crashes(quality: Quality) -> FigureSeries {
    let mut series = FigureSeries::new("recovery-crashes", "Crash Probability");
    for rate in RECOVERY_CRASH_SWEEP {
        let scenario = base(quality)
            .crashes(CrashSpec {
                rate,
                mean_down_epochs: MEAN_DOWN_EPOCHS,
            })
            .build();
        series.points.push(SeriesPoint {
            x: rate,
            strategies: contenders(scenario),
        });
    }
    series
}

/// Runs the sweep and pools the auditor verdict.
#[must_use]
pub fn recovery_report(quality: Quality) -> RecoveryReport {
    let series = recovery_crashes(quality);
    let total_audit_violations = series
        .points
        .iter()
        .flat_map(|p| &p.strategies)
        .map(AggregateMetrics::audit_violations)
        .sum();
    RecoveryReport {
        series,
        total_audit_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_metrics::report::MetricKind;

    /// One smoke pass over the whole sweep: shape, a clean end-to-end
    /// audit for the recovery arm, and the acceptance comparison — with
    /// crashes present, the durable journal must strictly beat the
    /// volatile router at the same delay budget.
    #[test]
    fn recovery_sweep_is_clean_and_beats_volatile() {
        let report = recovery_report(Quality::Smoke);
        let series = &report.series;
        assert_eq!(series.points.len(), RECOVERY_CRASH_SWEEP.len());
        assert_eq!(
            series.strategy_names(),
            ["DCRD-recovery", "DCRD-volatile", "R-Tree"]
        );
        assert_eq!(
            report.total_audit_violations, 0,
            "sequence gaps or duplicate deliveries survived recovery"
        );
        for point in &series.points {
            let recovery = &point.strategies[0];
            let volatile = &point.strategies[1];
            if point.x > 0.0 {
                assert!(
                    recovery.delivery_ratio() > volatile.delivery_ratio(),
                    "at crash rate {} recovery delivered {:.4} vs volatile {:.4}",
                    point.x,
                    recovery.delivery_ratio(),
                    volatile.delivery_ratio()
                );
            }
        }
        let table = series.render_table(MetricKind::Delivery);
        assert!(table.contains("DCRD-recovery"));
    }

    #[test]
    fn sweep_spans_the_acceptance_crash_rate() {
        assert_eq!(RECOVERY_CRASH_SWEEP[0], 0.0);
        assert!(RECOVERY_CRASH_SWEEP.contains(&0.3));
    }
}
