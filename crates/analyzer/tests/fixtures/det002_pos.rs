// Fixture: DET002 must fire — ambient clock and RNG inside the sim.
use std::time::Instant;

pub fn stamp() -> u128 {
    let t = Instant::now();
    let mut rng = rand::thread_rng();
    let _ = rand::random::<u64>();
    let _ = t;
    let _ = &mut rng;
    0
}
