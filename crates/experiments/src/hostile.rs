//! Hostile study: overload survival under the adversarial scenario pack.
//!
//! One sweep over flash-crowd intensity comparing three arms on
//! **identical** repetitions (same geo-tiered topology, Zipf workload and
//! burst schedule):
//!
//! * **DCRD-least-slack** — bounded per-broker service queues with
//!   delay-cognizant shedding: when a queue overflows, the packet with
//!   the least remaining deadline slack (the one least worth carrying)
//!   is dropped first.
//! * **DCRD-tail-drop** — the same bounded queues, but the classic
//!   slack-blind policy: the newest arrival is dropped.
//! * **DCRD-unbounded** — no queue bound at all: nothing is shed, but
//!   queueing delay grows without limit under the burst, so deliveries
//!   slide past their deadlines instead.
//!
//! The scenario is deliberately adversarial everywhere else too: topic
//! popularity is Zipf-skewed with a mega-topic almost every broker
//! subscribes to, and the topology is geo-tiered — two regional meshes
//! joined by a single gateway bridge, so the flash crowd converges on
//! exactly the brokers that can least afford it.
//!
//! The invariant auditor runs over every arm. The least-slack arm and
//! the unbounded control must come back clean; the tail-drop arm is
//! *expected* to accumulate `UnjustifiedShed` violations under overload
//! — the auditor catching the slack-blind policy red-handed is the
//! ablation's result, not a test failure.
//!
//! Links are clean (`Pf = Pl = 0`): overload is the *only* disturbance,
//! and the gap between the arms isolates the shedding policy. Upstream
//! reroute is disabled in all three arms — a saturated gateway looks
//! exactly like a dead one to the reroute heuristic, and the resulting
//! ping-pong is a known pre-existing finding (see the chaos tests and
//! the fuzz-harness module docs), not an overload effect.

use dcrd_core::DcrdConfig;
use dcrd_metrics::report::{FigureSeries, SeriesPoint};
use dcrd_metrics::AggregateMetrics;
use dcrd_pubsub::runtime::ShedPolicy;
use dcrd_pubsub::workload::BurstConfig;
use dcrd_sim::SimDuration;

use crate::runner::{run_labeled, StrategyKind};
use crate::scenario::{Quality, Scenario, ScenarioBuilder};

/// Flash-crowd publish-rate multipliers swept (1 = nominal load; the
/// acceptance gate lives at 4×).
pub const BURST_MULTIPLIER_SWEEP: [u32; 4] = [1, 2, 3, 4];

/// Per-broker service queue bound used by both bounded arms.
pub const QUEUE_LIMIT: usize = 6;

/// Per-packet broker service time.
pub const SERVICE_TIME_MS: u64 = 60;

/// The hostile study: one degradation series over burst intensity plus
/// the per-arm auditor verdicts and shed tally.
#[derive(Debug, Clone)]
pub struct HostileReport {
    /// `flash-crowd`: delivery per burst multiplier, three arms per point.
    pub series: FigureSeries,
    /// Violations in the least-slack arm (must be zero: delay-cognizant
    /// shedding only ever drops doomed traffic).
    pub least_slack_violations: u64,
    /// Violations in the tail-drop arm. *Expected* nonzero under
    /// overload: slack-blind shedding drops satisfiable packets while
    /// doomed ones hold seats, which the auditor indicts as
    /// `UnjustifiedShed` — that indictment is the ablation's result.
    pub tail_drop_violations: u64,
    /// Violations in the unbounded control (must be zero: nothing is
    /// shed, so there is nothing to justify).
    pub unbounded_violations: u64,
    /// Packets shed summed over every bounded run of the study.
    pub total_sheds: u64,
}

/// The shared adversarial base: geo-tiered overlay, Zipf workload with a
/// mega-topic, clean links, flash crowd at `multiplier`, auditor on.
#[must_use]
pub fn hostile_scenario(quality: Quality, multiplier: u32) -> ScenarioBuilder {
    let duration = quality.duration();
    let mut b = ScenarioBuilder::new()
        .geo_tiered(2, 6)
        .failure_probability(0.0)
        .loss_rate(0.0)
        .topics(6)
        .zipf_popularity(1.2, 0.9)
        .service_time(SimDuration::from_millis(SERVICE_TIME_MS))
        .quality(quality)
        .audit(true);
    if multiplier > 1 {
        b = b.flash_crowd(BurstConfig {
            at: duration / 4,
            len: duration / 2,
            multiplier,
        });
    }
    b
}

/// The router used by every arm: the paper's defaults minus upstream
/// reroute (see the module docs for why overload and reroute don't mix).
#[must_use]
pub fn hostile_config() -> DcrdConfig {
    DcrdConfig {
        reroute_upstream: false,
        ..DcrdConfig::default()
    }
}

/// Runs the three contenders on identical repetitions of one intensity.
fn contenders(quality: Quality, multiplier: u32) -> Vec<AggregateMetrics> {
    let arm = |b: ScenarioBuilder| Scenario {
        dcrd: hostile_config(),
        ..b.build()
    };
    let least_slack =
        arm(hostile_scenario(quality, multiplier)
            .bounded_queues(QUEUE_LIMIT, ShedPolicy::LeastSlack));
    let tail_drop = arm(
        hostile_scenario(quality, multiplier).bounded_queues(QUEUE_LIMIT, ShedPolicy::TailDrop)
    );
    let unbounded = arm(hostile_scenario(quality, multiplier));
    vec![
        run_labeled(&least_slack, StrategyKind::Dcrd, "DCRD-least-slack"),
        run_labeled(&tail_drop, StrategyKind::Dcrd, "DCRD-tail-drop"),
        run_labeled(&unbounded, StrategyKind::Dcrd, "DCRD-unbounded"),
    ]
}

/// Delivery degradation vs flash-crowd intensity.
#[must_use]
pub fn flash_crowd(quality: Quality) -> FigureSeries {
    let mut series = FigureSeries::new("flash-crowd", "Flash-Crowd Rate Multiplier");
    for multiplier in BURST_MULTIPLIER_SWEEP {
        series.points.push(SeriesPoint {
            x: f64::from(multiplier),
            strategies: contenders(quality, multiplier),
        });
    }
    series
}

/// Runs the sweep and pools the per-arm auditor verdicts and shed tally.
#[must_use]
pub fn hostile_report(quality: Quality) -> HostileReport {
    let series = flash_crowd(quality);
    let arm_violations = |name: &str| -> u64 {
        series
            .points
            .iter()
            .flat_map(|p| &p.strategies)
            .filter(|s| s.name() == name)
            .map(AggregateMetrics::audit_violations)
            .sum()
    };
    let least_slack_violations = arm_violations("DCRD-least-slack");
    let tail_drop_violations = arm_violations("DCRD-tail-drop");
    let unbounded_violations = arm_violations("DCRD-unbounded");
    let total_sheds = series
        .points
        .iter()
        .flat_map(|p| &p.strategies)
        .map(AggregateMetrics::sheds)
        .sum();
    HostileReport {
        series,
        least_slack_violations,
        tail_drop_violations,
        unbounded_violations,
        total_sheds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full-sweep acceptance test (clean audit, sheds at 4×, in-slack
    // delivery ≥ 0.99 for the least-slack arm, digest-identical reruns)
    // lives in `tests/hostile.rs` so CI can run it by name in release
    // mode.

    #[test]
    fn sweep_spans_nominal_to_the_acceptance_multiplier() {
        assert_eq!(BURST_MULTIPLIER_SWEEP[0], 1);
        assert!(BURST_MULTIPLIER_SWEEP.contains(&4));
    }

    #[test]
    fn hostile_scenario_is_adversarial_but_clean_linked() {
        let s = hostile_scenario(Quality::Smoke, 4).build();
        assert_eq!(s.nodes, 12);
        assert_eq!(s.pf, 0.0);
        assert_eq!(s.pl, 0.0);
        assert!(s.service_time.is_some());
        assert!(s.audit);
        let burst = s.burst.expect("4x scenario carries a flash crowd");
        assert_eq!(burst.multiplier, 4);
        // Nominal load carries no burst, so the 1x point is a true baseline.
        assert!(hostile_scenario(Quality::Smoke, 1).build().burst.is_none());
    }

    #[test]
    fn hostile_config_only_disables_reroute() {
        let hostile = hostile_config();
        let paper = DcrdConfig::default();
        assert!(!hostile.reroute_upstream);
        assert!(paper.reroute_upstream);
        assert_eq!(hostile.ordering, paper.ordering);
        assert_eq!(hostile.max_attempts_per_node, paper.max_attempts_per_node);
    }
}
