//! Randomized whole-simulator properties: for arbitrary small scenarios,
//! structural invariants must hold for every strategy.

use dcrd::experiments::runner::{run_once, StrategyKind};
use dcrd::experiments::scenario::ScenarioBuilder;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Metrics are well-formed for every strategy on arbitrary scenarios.
    #[test]
    fn metrics_are_well_formed(
        seed in 0u64..1000,
        pf_step in 0u8..6,
        degree in 3usize..8,
        m in 1u32..3,
    ) {
        let scenario = ScenarioBuilder::new()
            .nodes(12)
            .degree(degree)
            .failure_probability(f64::from(pf_step) * 0.02)
            .transmissions(m)
            .topics(4)
            .duration_secs(15)
            .repetitions(1)
            .seed(seed)
            .build();
        for kind in StrategyKind::ALL {
            let run = run_once(&scenario, kind, 0);
            let d = run.delivery_ratio();
            let q = run.qos_delivery_ratio();
            prop_assert!((0.0..=1.0).contains(&d), "{}: delivery {d}", kind.label());
            prop_assert!((0.0..=1.0).contains(&q), "{}: QoS {q}", kind.label());
            prop_assert!(q <= d + 1e-12, "{}: QoS {q} above delivery {d}", kind.label());
            prop_assert!(run.pairs() > 0, "{}: no pairs recorded", kind.label());
            prop_assert!(
                run.packets_per_subscriber().is_finite(),
                "{}: traffic not finite",
                kind.label()
            );
            // Delay stats only cover delivered pairs and are non-negative.
            if run.delay_stats().count() > 0 {
                prop_assert!(run.delay_stats().min().expect("nonempty") >= 0.0);
            }
        }
    }

    /// With zero failures and zero loss, every strategy delivers every
    /// single pair on arbitrary topologies.
    #[test]
    fn lossless_scenarios_deliver_everything(seed in 0u64..1000, degree in 3usize..8) {
        let scenario = ScenarioBuilder::new()
            .nodes(12)
            .degree(degree)
            .failure_probability(0.0)
            .loss_rate(0.0)
            .topics(4)
            .duration_secs(15)
            .repetitions(1)
            .seed(seed)
            .build();
        for kind in StrategyKind::ALL {
            let run = run_once(&scenario, kind, 0);
            prop_assert!(
                (run.delivery_ratio() - 1.0).abs() < 1e-12,
                "{}: delivery {} in a lossless network",
                kind.label(),
                run.delivery_ratio()
            );
        }
    }
}
