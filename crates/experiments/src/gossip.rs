//! Gossip study: membership dissemination under partitions and lossy
//! control planes.
//!
//! One sweep over the control-plane rumor-loss rate comparing three arms
//! on **identical** repetitions (same topology, workload, churn schedule
//! and partition schedule):
//!
//! * **DCRD-gossip** — membership deltas spread epidemically
//!   ([`ControlPlane::Gossip`]): eager-push rumors over bounded partial
//!   views plus periodic anti-entropy, applied through incremental repair
//!   only once every present broker has learned them. Partitions stall
//!   convergence; anti-entropy completes it after they heal.
//! * **DCRD-oracle** — the pre-gossip control plane: detector output
//!   reaches every broker the same epoch, unaffected by partitions or
//!   control-plane loss. The upper bound gossip must track.
//! * **DCRD-static** — detection without dissemination
//!   ([`ControlPlane::None`]): deltas are dropped, routing state goes
//!   permanently stale and only the per-hop fallback fights the rot. The
//!   arm that shows dissemination is load-bearing.
//!
//! Links are clean (`Pf = Pl = 0`): broker churn plus a recurring
//! partition are the only disturbances, so the gap between the arms
//! isolates the dissemination path. The auditor runs everywhere,
//! including the `StaleRouteAfterConvergence` clause that bounds how long
//! a broker may keep routing on pre-partition state after the control
//! plane heals.

use dcrd_core::DcrdConfig;
use dcrd_metrics::report::{FigureSeries, SeriesPoint};
use dcrd_metrics::AggregateMetrics;

use crate::runner::{run_labeled, StrategyKind};
use crate::scenario::{BrokerChurnSpec, ControlPlane, PartitionSpec, Quality, ScenarioBuilder};

/// Control-plane rumor-loss sweep (per-hop loss probability of gossip
/// messages; the data plane stays clean).
pub const GOSSIP_LOSS_SWEEP: [f64; 3] = [0.0, 0.15, 0.3];

/// Broker churn probability shared by every point of the sweep.
pub const GOSSIP_CHURN_RATE: f64 = 0.7;

/// The gossip study: one series over control-plane loss plus the pooled
/// auditor verdict and the gossip control-plane counters.
#[derive(Debug, Clone)]
pub struct GossipReport {
    /// `gossip-loss`: delivery per control-plane loss rate, three arms
    /// per point.
    pub series: FigureSeries,
    /// Invariant violations summed over every run of the study
    /// (including the staleness clause).
    pub total_audit_violations: u64,
    /// Rumors pushed by the gossip arm across the whole sweep.
    pub rumors_sent: u64,
    /// Anti-entropy digest exchanges run by the gossip arm.
    pub anti_entropy_rounds: u64,
    /// Converged membership deltas applied via the gossip path.
    pub gossip_deltas_applied: u64,
    /// Stale gaps closed by anti-entropy reconciliation.
    pub stale_reconciliations: u64,
}

/// Degree-bounded clean-link overlay under heavy broker churn plus a
/// recurring partition (8 s cut out of every 40 s) and a tight deadline
/// budget: dissemination quality is the only thing separating the arms. On clean links the dynamic per-hop fallback eventually
/// completes nearly every pair even on stale tables, so the arms
/// separate in the *on-time* column — packets routed by stale state
/// burn their delay budget exploring around dead brokers, and the
/// 2× deadline factor leaves no slack to hide that.
fn base(quality: Quality) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .nodes(16)
        .degree(4)
        .failure_probability(0.0)
        .loss_rate(0.0)
        .topics(3)
        .deadline_factor(2.0)
        .quality(quality)
        .broker_churn(BrokerChurnSpec {
            rate: GOSSIP_CHURN_RATE,
        })
        .partition(PartitionSpec {
            fraction: 0.25,
            window_secs: 8,
            period_secs: 40,
        })
        .dcrd(DcrdConfig::churn_hardened())
        .audit(true)
}

/// Runs the three contenders on identical repetitions of one loss point.
fn contenders(quality: Quality, loss: f64) -> Vec<AggregateMetrics> {
    let gossip = base(quality)
        .control_plane(ControlPlane::Gossip { loss })
        .build();
    let oracle = base(quality).control_plane(ControlPlane::Oracle).build();
    let none = base(quality).control_plane(ControlPlane::None).build();
    vec![
        run_labeled(&gossip, StrategyKind::Dcrd, "DCRD-gossip"),
        run_labeled(&oracle, StrategyKind::Dcrd, "DCRD-oracle"),
        run_labeled(&none, StrategyKind::Dcrd, "DCRD-static"),
    ]
}

/// Delivery vs control-plane rumor loss.
#[must_use]
pub fn gossip_loss(quality: Quality) -> FigureSeries {
    let mut series = FigureSeries::new("gossip-loss", "Control-Plane Loss Probability");
    for loss in GOSSIP_LOSS_SWEEP {
        series.points.push(SeriesPoint {
            x: loss,
            strategies: contenders(quality, loss),
        });
    }
    series
}

/// Runs the sweep and pools the auditor verdict plus the control-plane
/// counters (the gossip arm is the only one that gossips, so the sums
/// attribute cleanly).
#[must_use]
pub fn gossip_report(quality: Quality) -> GossipReport {
    let series = gossip_loss(quality);
    let all = || series.points.iter().flat_map(|p| &p.strategies);
    GossipReport {
        total_audit_violations: all().map(AggregateMetrics::audit_violations).sum(),
        rumors_sent: all().map(AggregateMetrics::rumors_sent).sum(),
        anti_entropy_rounds: all().map(AggregateMetrics::anti_entropy_rounds).sum(),
        gossip_deltas_applied: all().map(AggregateMetrics::gossip_deltas_applied).sum(),
        stale_reconciliations: all().map(AggregateMetrics::stale_reconciliations).sum(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The partition-heal acceptance test (post-heal recovery ≥ 0.99 with
    // zero rebuilds, clean audit, digest-identical reruns, and a static
    // arm that fails to recover) lives in `tests/gossip_partition_heal.rs`
    // so CI can run it by name in release mode.

    #[test]
    fn sweep_starts_lossless_and_spans_harsh_loss() {
        assert_eq!(GOSSIP_LOSS_SWEEP[0], 0.0);
        assert!(GOSSIP_LOSS_SWEEP.contains(&0.3));
    }

    #[test]
    fn base_scenario_arms_churn_partition_and_audit() {
        let s = base(Quality::Smoke)
            .control_plane(ControlPlane::Gossip { loss: 0.0 })
            .build();
        assert!(s.broker_churn.is_some());
        assert!(s.partition.is_some());
        assert!(s.audit);
        assert_eq!(s.control_plane, ControlPlane::Gossip { loss: 0.0 });
    }
}
