// Fixture: DET003 must fire — NaN-unsafe comparator in a sort.
pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn worst(xs: &[f64]) -> Option<&f64> {
    xs.iter().min_by(|a, b| {
        a.partial_cmp(b).unwrap()
    })
}
