//! Failure storm: watch DCRD's dynamic rerouting pull away from a fixed
//! tree as link failures intensify, and see what the persistence extension
//! buys on top.
//!
//! ```text
//! cargo run --release --example failure_storm
//! ```

use dcrd::baselines::tree::d_tree;
use dcrd::core::{DcrdConfig, DcrdStrategy, PersistenceMode};
use dcrd::experiments::runner::{build_topology, build_workload};
use dcrd::experiments::scenario::ScenarioBuilder;
use dcrd::net::failure::{FailureModel, LinkFailureModel};
use dcrd::net::loss::LossModel;
use dcrd::pubsub::runtime::{OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::strategy::RoutingStrategy;
use dcrd::sim::SimDuration;

fn run_with(strategy: &mut (impl RoutingStrategy + ?Sized), pf: f64) -> (f64, f64) {
    let scenario = ScenarioBuilder::new()
        .nodes(20)
        .degree(5)
        .failure_probability(pf)
        .duration_secs(120)
        .seed(99)
        .build();
    let topo = build_topology(&scenario, 0);
    let workload = build_workload(&scenario, &topo, 0);
    let failure = FailureModel::links_only(LinkFailureModel::new(pf, 0xBEEF));
    let config = RuntimeConfig::paper(SimDuration::from_secs(120), 31);
    let runtime = OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config);
    let log = runtime.run(strategy);
    (log.delivery_ratio(), log.qos_delivery_ratio())
}

fn main() {
    println!(
        "{:>6} | {:>22} | {:>22} | {:>22}",
        "Pf", "D-Tree (del/QoS)", "DCRD (del/QoS)", "DCRD+persist (del/QoS)"
    );
    println!("{}", "-".repeat(84));
    for pf in [0.0, 0.05, 0.10, 0.15, 0.20] {
        let (td, tq) = run_with(&mut d_tree(), pf);
        let (dd, dq) = run_with(&mut DcrdStrategy::new(DcrdConfig::default()), pf);
        let persist = DcrdConfig {
            persistence: PersistenceMode::Retry {
                max_retries: 10,
                retry_after_ms: 1000,
            },
            ..DcrdConfig::default()
        };
        let (pd, pq) = run_with(&mut DcrdStrategy::new(persist), pf);
        println!(
            "{pf:>6.2} | {:>10.4} {:>10.4} | {:>10.4} {:>10.4} | {:>10.4} {:>10.4}",
            td, tq, dd, dq, pd, pq
        );
    }
    println!(
        "\nThe fixed tree loses whatever its links lose; DCRD reroutes around \
         each failed epoch,\nand the persistence extension retries the rare \
         fully-partitioned packets until the epoch turns."
    );
}
