// Fixture: SAFE002 must fire — overflow-unchecked arithmetic feeding a
// SimTime/SimDuration construction.
pub struct SimTime(u64);
pub struct SimDuration(u64);

pub fn from_millis(millis: u64) -> SimTime {
    SimTime(millis * 1_000)
}

pub fn total(a: u64, b: u64) -> SimDuration {
    SimDuration(a + b)
}
