//! Struct-of-arrays containers for per-packet hot state.
//!
//! The runtime's delivery ledger and the router's custody state are keyed
//! by `(PacketId, NodeId)`. With a `BTreeMap` every probe on the hot path
//! (one per arrival, ACK, timer) is a pointer-chasing tree descent
//! comparing 12-byte tuples. Runtime packet ids are dense counters
//! (`0, 1, 2, …`), so the natural layout is an array indexed by packet id
//! whose slots hold the (tiny — one entry per involved broker) per-packet
//! rows, with a spill map for the sparse recovery-packet id space (NACK
//! ids carry the top bit).
//!
//! Iteration yields ascending `(PacketId, NodeId)` order — dense rows by
//! id, each row sorted by broker, then the spill (whose ids are all
//! larger) — exactly the order the `BTreeMap` layout produced, so metric
//! and trace consumers observe no reordering. The digest-equivalence pins
//! in `tests/csr_wheel_equivalence.rs` hold this promise to the byte.

use crate::packet::PacketId;
use dcrd_net::{NodeId, NodeSet};
use std::collections::{BTreeMap, BTreeSet};

/// Ids below this populate the dense array; ids at or above it (the NACK
/// recovery id space) go to the spill map. Well above any realistic
/// sequential id, well below the tagged `1 << 63` ranges.
const DENSE_LIMIT: u64 = 1 << 32;

#[inline]
fn dense_index(id: PacketId) -> Option<usize> {
    let raw = id.raw();
    (raw < DENSE_LIMIT).then_some(raw as usize)
}

/// A map keyed by `(packet id, broker)` with a dense packet-id-indexed
/// fast path.
#[derive(Debug, Clone)]
pub struct PacketNodeMap<V> {
    /// `dense[id][..]` = this packet's per-broker entries, sorted by
    /// broker id. Rows are tiny (one entry per involved broker), so a
    /// sorted `Vec` beats any nested map.
    dense: Vec<Vec<(NodeId, V)>>,
    /// Sparse id ranges (NACK recovery ids).
    spill: BTreeMap<(PacketId, NodeId), V>,
    len: usize,
}

impl<V> Default for PacketNodeMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PacketNodeMap<V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        PacketNodeMap {
            dense: Vec::new(),
            spill: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entry for `key`, if present.
    #[inline]
    pub fn get(&self, key: &(PacketId, NodeId)) -> Option<&V> {
        match dense_index(key.0) {
            Some(i) => {
                let row = self.dense.get(i)?;
                let at = row.binary_search_by_key(&key.1, |&(n, _)| n).ok()?;
                row.get(at).map(|(_, v)| v)
            }
            None => self.spill.get(key),
        }
    }

    /// The mutable entry for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: &(PacketId, NodeId)) -> Option<&mut V> {
        match dense_index(key.0) {
            Some(i) => {
                let row = self.dense.get_mut(i)?;
                let at = row.binary_search_by_key(&key.1, |&(n, _)| n).ok()?;
                row.get_mut(at).map(|(_, v)| v)
            }
            None => self.spill.get_mut(key),
        }
    }

    /// Whether `key` has an entry.
    #[inline]
    #[must_use]
    pub fn contains_key(&self, key: &(PacketId, NodeId)) -> bool {
        self.get(key).is_some()
    }

    /// Inserts (or replaces) the entry for `key`, returning the previous
    /// value.
    pub fn insert(&mut self, key: (PacketId, NodeId), value: V) -> Option<V> {
        match dense_index(key.0) {
            Some(i) => {
                if self.dense.len() <= i {
                    self.dense.resize_with(i + 1, Vec::new);
                }
                // Present after the resize above; a `None` here would mean a
                // broken `Vec`, so the degraded path drops the write.
                let row = self.dense.get_mut(i)?;
                match row.binary_search_by_key(&key.1, |&(n, _)| n) {
                    Ok(at) => row.get_mut(at).map(|e| std::mem::replace(&mut e.1, value)),
                    Err(at) => {
                        row.insert(at, (key.1, value));
                        self.len += 1;
                        None
                    }
                }
            }
            None => {
                let old = self.spill.insert(key, value);
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    /// Removes and returns the entry for `key`.
    pub fn remove(&mut self, key: &(PacketId, NodeId)) -> Option<V> {
        let removed = match dense_index(key.0) {
            Some(i) => {
                let row = self.dense.get_mut(i)?;
                let at = row.binary_search_by_key(&key.1, |&(n, _)| n).ok()?;
                Some(row.remove(at).1)
            }
            None => self.spill.remove(key),
        };
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Keeps only the entries the predicate approves — the crash-wipe
    /// primitive ("drop everything broker X holds").
    pub fn retain(&mut self, mut keep: impl FnMut(NodeId, &mut V) -> bool) {
        let mut len = 0;
        for row in &mut self.dense {
            row.retain_mut(|(node, value)| keep(*node, value));
            len += row.len();
        }
        self.spill.retain(|&(_, node), value| keep(node, value));
        self.len = len + self.spill.len();
    }

    /// Iterates in ascending `(packet id, broker)` order — the same order
    /// the `BTreeMap` layout produced.
    pub fn iter(&self) -> impl Iterator<Item = ((PacketId, NodeId), &V)> {
        self.dense
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter()
                    .map(move |(node, v)| ((PacketId::new(i as u64), *node), v))
            })
            .chain(self.spill.iter().map(|(&key, v)| (key, v)))
    }

    /// Iterates over the values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

/// A set of `(packet id, broker)` pairs with a dense packet-id-indexed
/// bitset fast path — the subscriber-side delivery log.
#[derive(Debug, Clone, Default)]
pub struct PacketNodeSet {
    /// `dense[id]` = the brokers involved with packet `id`, as a bitset.
    dense: Vec<NodeSet>,
    /// Sparse id ranges (NACK recovery ids).
    spill: BTreeSet<(PacketId, NodeId)>,
}

impl PacketNodeSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        PacketNodeSet {
            dense: Vec::new(),
            spill: BTreeSet::new(),
        }
    }

    /// Inserts a pair; returns `true` if it was not already present.
    pub fn insert(&mut self, key: (PacketId, NodeId)) -> bool {
        match dense_index(key.0) {
            Some(i) => {
                if self.dense.len() <= i {
                    self.dense.resize_with(i + 1, NodeSet::new);
                }
                // Present after the resize above.
                self.dense.get_mut(i).is_some_and(|s| s.insert(key.1))
            }
            None => self.spill.insert(key),
        }
    }

    /// Whether the pair is in the set.
    #[must_use]
    pub fn contains(&self, key: &(PacketId, NodeId)) -> bool {
        match dense_index(key.0) {
            Some(i) => self.dense.get(i).is_some_and(|s| s.contains(key.1)),
            None => self.spill.contains(key),
        }
    }
}

/// A map keyed by dense [`NodeId`] — plain indexed storage for per-node
/// values like the router's cached per-publisher shortest-path trees.
#[derive(Debug, Clone, Default)]
pub struct NodeMap<V> {
    slots: Vec<Option<V>>,
}

impl<V> NodeMap<V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        NodeMap { slots: Vec::new() }
    }

    /// The value for `node`, if present.
    #[inline]
    #[must_use]
    pub fn get(&self, node: NodeId) -> Option<&V> {
        self.slots.get(node.index()).and_then(Option::as_ref)
    }

    /// Inserts (or replaces) the value for `node`.
    pub fn insert(&mut self, node: NodeId, value: V) {
        let i = node.index();
        if self.slots.len() <= i {
            self.slots.resize_with(i + 1, || None);
        }
        if let Some(slot) = self.slots.get_mut(i) {
            *slot = Some(value);
        }
    }

    /// The value for `node`, inserting `make()` first if absent.
    pub fn get_or_insert_with(&mut self, node: NodeId, make: impl FnOnce() -> V) -> &V {
        let i = node.index();
        if self.slots.len() <= i {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i].get_or_insert_with(make)
    }

    /// Drops every value, keeping the slot capacity.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPARSE: u64 = 1 << 63;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn id(raw: u64) -> PacketId {
        PacketId::new(raw)
    }

    #[test]
    fn dense_and_spill_roundtrip() {
        let mut m: PacketNodeMap<&str> = PacketNodeMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert((id(0), n(3)), "a"), None);
        assert_eq!(m.insert((id(0), n(1)), "b"), None);
        assert_eq!(m.insert((id(SPARSE), n(9)), "nack"), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&(id(0), n(3))), Some(&"a"));
        assert_eq!(m.get(&(id(SPARSE), n(9))), Some(&"nack"));
        assert!(m.contains_key(&(id(0), n(1))));
        assert!(!m.contains_key(&(id(1), n(1))));
        assert_eq!(m.insert((id(0), n(3)), "a2"), Some("a"));
        assert_eq!(m.len(), 3, "replacement does not grow the map");
        *m.get_mut(&(id(0), n(1))).unwrap() = "b2";
        assert_eq!(m.remove(&(id(0), n(1))), Some("b2"));
        assert_eq!(m.remove(&(id(0), n(1))), None);
        assert_eq!(m.remove(&(id(SPARSE), n(9))), Some("nack"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_matches_btreemap_order() {
        let mut m: PacketNodeMap<u32> = PacketNodeMap::new();
        let mut reference: BTreeMap<(PacketId, NodeId), u32> = BTreeMap::new();
        for (raw, node, v) in [
            (5, 2, 52),
            (0, 7, 7),
            (0, 1, 1),
            (SPARSE, 0, 90),
            (3, 4, 34),
            (SPARSE + 1, 6, 96),
        ] {
            m.insert((id(raw), n(node)), v);
            reference.insert((id(raw), n(node)), v);
        }
        let got: Vec<_> = m.iter().map(|(k, &v)| (k, v)).collect();
        let want: Vec<_> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want);
        let vals: Vec<u32> = m.values().copied().collect();
        assert_eq!(vals, want.iter().map(|&(_, v)| v).collect::<Vec<_>>());
    }

    #[test]
    fn retain_wipes_a_broker_across_both_ranges() {
        let mut m: PacketNodeMap<u32> = PacketNodeMap::new();
        m.insert((id(0), n(1)), 10);
        m.insert((id(0), n(2)), 20);
        m.insert((id(5), n(1)), 50);
        m.insert((id(SPARSE), n(1)), 99);
        m.retain(|node, _| node != n(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&(id(0), n(2))), Some(&20));
        assert!(!m.contains_key(&(id(5), n(1))));
        assert!(!m.contains_key(&(id(SPARSE), n(1))));
    }

    #[test]
    fn set_tracks_dense_and_sparse_pairs() {
        let mut s = PacketNodeSet::new();
        assert!(s.insert((id(2), n(7))));
        assert!(!s.insert((id(2), n(7))), "second insert reports stale");
        assert!(s.insert((id(SPARSE), n(7))));
        assert!(s.contains(&(id(2), n(7))));
        assert!(s.contains(&(id(SPARSE), n(7))));
        assert!(!s.contains(&(id(3), n(7))));
    }

    #[test]
    fn node_map_clear_and_reinsert() {
        let mut m: NodeMap<u32> = NodeMap::new();
        assert!(m.get(n(4)).is_none());
        m.insert(n(4), 44);
        assert_eq!(m.get(n(4)), Some(&44));
        assert_eq!(*m.get_or_insert_with(n(4), || 0), 44);
        assert_eq!(*m.get_or_insert_with(n(6), || 66), 66);
        m.clear();
        assert!(m.get(n(4)).is_none());
        assert!(m.get(n(6)).is_none());
    }
}
