//! Failure models.
//!
//! The paper injects failures by re-rolling the network condition **once per
//! second**: in each 1-second epoch a randomly chosen set of links fails and
//! drops every packet for that second. We model this exactly: per epoch,
//! each link independently fails with probability `Pf`.
//!
//! The implementation is *stateless*: whether link `e` is failed during
//! epoch `k` is a pure hash of `(seed, e, k)`, so any component can query
//! the failure state at any time with O(1) work and no shared mutable state,
//! and a run is reproducible from its seed alone.
//!
//! The paper's conclusion sketches **node failures** as future work; the
//! [`NodeFailureModel`] extension implements fail-stop node outages the same
//! way (a failed node silently drops everything addressed to it, which takes
//! down all of its incident links at once — exactly the "simultaneous link
//! failures" scenario the paper worries about).

use dcrd_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::chaos::ChaosModel;
use crate::graph::{EdgeId, NodeId, Topology};

/// The paper's epoch length: network conditions change once per second.
pub const DEFAULT_EPOCH: SimDuration = SimDuration::from_secs(1);

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Converts a hash to a uniform f64 in [0, 1).
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Epoch-based Bernoulli link failures (the paper's model).
///
/// # Example
///
/// ```
/// use dcrd_net::failure::LinkFailureModel;
/// use dcrd_net::graph::EdgeId;
/// use dcrd_sim::SimTime;
///
/// let always_up = LinkFailureModel::new(0.0, 7);
/// assert!(!always_up.is_failed(EdgeId::new(0), SimTime::from_secs(3)));
/// let always_down = LinkFailureModel::new(1.0, 7);
/// assert!(always_down.is_failed(EdgeId::new(0), SimTime::from_secs(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFailureModel {
    pf: f64,
    seed: u64,
    epoch: SimDuration,
}

impl LinkFailureModel {
    /// Creates a model with failure probability `pf` per link per epoch,
    /// using the paper's 1-second epoch.
    ///
    /// # Panics
    ///
    /// Panics if `pf` is outside `[0, 1]`.
    #[must_use]
    pub fn new(pf: f64, seed: u64) -> Self {
        Self::with_epoch(pf, seed, DEFAULT_EPOCH)
    }

    /// Creates a model with a custom epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `pf` is outside `[0, 1]` or the epoch is zero.
    #[must_use]
    pub fn with_epoch(pf: f64, seed: u64, epoch: SimDuration) -> Self {
        assert!(
            (0.0..=1.0).contains(&pf),
            "failure probability out of range: {pf}"
        );
        assert!(epoch > SimDuration::ZERO, "epoch must be positive");
        LinkFailureModel { pf, seed, epoch }
    }

    /// The per-epoch failure probability.
    #[must_use]
    pub fn pf(&self) -> f64 {
        self.pf
    }

    /// The epoch length.
    #[must_use]
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// The epoch index containing instant `at`.
    #[must_use]
    pub fn epoch_index(&self, at: SimTime) -> u64 {
        at.as_micros() / self.epoch.as_micros()
    }

    /// The start of the epoch following the one containing `at`.
    #[must_use]
    pub fn next_epoch_start(&self, at: SimTime) -> SimTime {
        SimTime::from_micros((self.epoch_index(at) + 1) * self.epoch.as_micros())
    }

    /// Whether `edge` is failed during the epoch containing `at`.
    #[must_use]
    pub fn is_failed(&self, edge: EdgeId, at: SimTime) -> bool {
        if self.pf <= 0.0 {
            return false;
        }
        if self.pf >= 1.0 {
            return true;
        }
        let h = mix(self.seed ^ mix(edge.index() as u64) ^ mix(self.epoch_index(at) ^ 0xA5A5));
        unit(h) < self.pf
    }
}

/// Bursty link outages (extension): failures that persist for several
/// consecutive epochs.
///
/// The paper's model re-rolls every link each second, so outages last
/// exactly one second; its §III discussion of **persistent failures** (the
/// case motivating the persistency mode) never appears in its evaluation.
/// This model adds it: each epoch a link *starts* a burst with a small
/// probability, and burst lengths are geometric with a configurable mean.
/// The model stays stateless — burst starts and lengths are pure hashes of
/// `(seed, link, epoch)` — so queries remain O(max burst length) with no
/// shared mutable state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstFailureModel {
    start_prob: f64,
    mean_len: f64,
    max_len: u64,
    seed: u64,
    epoch: SimDuration,
}

impl BurstFailureModel {
    /// Creates a burst model targeting a marginal per-epoch failure rate of
    /// about `pf`, with bursts of `mean_burst_epochs` epochs on average.
    ///
    /// The burst-start probability is set to `pf / mean_burst_epochs`
    /// (burst overlap makes the realized marginal rate slightly lower; the
    /// tests pin it within ±20% of the target for the paper's regimes).
    ///
    /// # Panics
    ///
    /// Panics if `pf` is outside `[0, 1]` or `mean_burst_epochs < 1`.
    #[must_use]
    pub fn new(pf: f64, mean_burst_epochs: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pf),
            "failure probability out of range: {pf}"
        );
        assert!(
            mean_burst_epochs >= 1.0,
            "mean burst length must be ≥ 1 epoch"
        );
        BurstFailureModel {
            start_prob: (pf / mean_burst_epochs).min(1.0),
            mean_len: mean_burst_epochs,
            max_len: (mean_burst_epochs * 8.0).ceil() as u64,
            seed,
            epoch: DEFAULT_EPOCH,
        }
    }

    /// The mean burst length in epochs.
    #[must_use]
    pub fn mean_burst_epochs(&self) -> f64 {
        self.mean_len
    }

    /// The per-epoch burst-start probability.
    #[must_use]
    pub fn start_prob(&self) -> f64 {
        self.start_prob
    }

    /// The epoch index containing `at`.
    #[must_use]
    pub fn epoch_index(&self, at: SimTime) -> u64 {
        at.as_micros() / self.epoch.as_micros()
    }

    /// Length in epochs of the burst starting at `(edge, epoch)`, if one
    /// starts there.
    fn burst_len(&self, edge: EdgeId, epoch: u64) -> Option<u64> {
        if self.start_prob <= 0.0 {
            return None;
        }
        let h = mix(self.seed ^ mix(edge.index() as u64 ^ 0xB0B0) ^ mix(epoch ^ 0x1D1D));
        if unit(h) >= self.start_prob {
            return None;
        }
        if self.mean_len <= 1.0 {
            return Some(1);
        }
        // Geometric with mean `mean_len`: P(L > k) = (1 - 1/mean)^k.
        let u = unit(mix(h ^ 0xC0FF_EE00));
        let q = 1.0 - 1.0 / self.mean_len;
        let len = 1 + (u.max(1e-12).ln() / q.ln()).floor() as u64;
        Some(len.min(self.max_len))
    }

    /// Whether `edge` is inside a failure burst during the epoch
    /// containing `at`.
    #[must_use]
    pub fn is_failed(&self, edge: EdgeId, at: SimTime) -> bool {
        let now = self.epoch_index(at);
        let lookback = now.min(self.max_len.saturating_sub(1));
        (0..=lookback).any(|back| {
            self.burst_len(edge, now - back)
                .is_some_and(|len| len > back)
        })
    }
}

/// Fail-stop node failures (extension beyond the paper's evaluation).
///
/// A failed node drops every packet and ACK addressed to it for the whole
/// epoch, which is equivalent to all of its incident links failing at once.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFailureModel {
    pn: f64,
    seed: u64,
    epoch: SimDuration,
}

impl NodeFailureModel {
    /// Creates a model with failure probability `pn` per node per 1-second
    /// epoch.
    ///
    /// # Panics
    ///
    /// Panics if `pn` is outside `[0, 1]`.
    #[must_use]
    pub fn new(pn: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pn),
            "failure probability out of range: {pn}"
        );
        NodeFailureModel {
            pn,
            seed,
            epoch: DEFAULT_EPOCH,
        }
    }

    /// The per-epoch node failure probability.
    #[must_use]
    pub fn pn(&self) -> f64 {
        self.pn
    }

    /// Whether `node` is failed during the epoch containing `at`.
    #[must_use]
    pub fn is_failed(&self, node: NodeId, at: SimTime) -> bool {
        if self.pn <= 0.0 {
            return false;
        }
        if self.pn >= 1.0 {
            return true;
        }
        let epoch = at.as_micros() / self.epoch.as_micros();
        let h = mix(self.seed ^ mix(node.index() as u64 ^ 0x0DD0) ^ mix(epoch ^ 0x5A5A));
        unit(h) < self.pn
    }
}

/// Either link-outage process: the paper's independent per-epoch model or
/// the bursty extension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkOutageModel {
    /// Independent per-epoch failures (the paper's evaluation model).
    Epoch(LinkFailureModel),
    /// Multi-epoch bursts (persistent failures).
    Burst(BurstFailureModel),
}

impl LinkOutageModel {
    /// Whether `edge` is failed during the epoch containing `at`.
    #[must_use]
    pub fn is_failed(&self, edge: EdgeId, at: SimTime) -> bool {
        match self {
            LinkOutageModel::Epoch(m) => m.is_failed(edge, at),
            LinkOutageModel::Burst(m) => m.is_failed(edge, at),
        }
    }

    /// The epoch index containing `at`.
    #[must_use]
    pub fn epoch_index(&self, at: SimTime) -> u64 {
        match self {
            LinkOutageModel::Epoch(m) => m.epoch_index(at),
            LinkOutageModel::Burst(m) => m.epoch_index(at),
        }
    }

    /// The long-run fraction of (link, epoch) pairs that are failed — what
    /// monitoring converges to.
    #[must_use]
    pub fn marginal_rate(&self) -> f64 {
        match self {
            LinkOutageModel::Epoch(m) => m.pf(),
            // Burst-start probability × mean length, ignoring the small
            // overlap correction.
            LinkOutageModel::Burst(m) => (m.start_prob() * m.mean_burst_epochs()).min(1.0),
        }
    }
}

/// Combined failure view over a topology: a link transmission succeeds only
/// if the link itself is up *and* both endpoints are up, and no configured
/// chaos injector (partition cut, crash-down endpoint) blocks it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    links: LinkOutageModel,
    nodes: Option<NodeFailureModel>,
    #[serde(default)]
    chaos: Option<ChaosModel>,
}

impl FailureModel {
    /// Link failures only (the paper's evaluation setup).
    #[must_use]
    pub fn links_only(links: LinkFailureModel) -> Self {
        FailureModel {
            links: LinkOutageModel::Epoch(links),
            nodes: None,
            chaos: None,
        }
    }

    /// Bursty link outages only (persistent-failure extension).
    #[must_use]
    pub fn bursty(links: BurstFailureModel) -> Self {
        FailureModel {
            links: LinkOutageModel::Burst(links),
            nodes: None,
            chaos: None,
        }
    }

    /// Link plus node failures (the paper's future-work extension).
    #[must_use]
    pub fn with_node_failures(links: LinkFailureModel, nodes: NodeFailureModel) -> Self {
        FailureModel {
            links: LinkOutageModel::Epoch(links),
            nodes: Some(nodes),
            chaos: None,
        }
    }

    /// Any link-outage process combined with optional node failures.
    #[must_use]
    pub fn new(links: LinkOutageModel, nodes: Option<NodeFailureModel>) -> Self {
        FailureModel {
            links,
            nodes,
            chaos: None,
        }
    }

    /// Adds a chaos injector (partitions, crash-restart brokers, gray
    /// links) on top of the base failure processes. An empty injector is
    /// normalized away.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosModel) -> Self {
        self.chaos = if chaos.is_empty() { None } else { Some(chaos) };
        self
    }

    /// The link-outage component.
    #[must_use]
    pub fn link_model(&self) -> &LinkOutageModel {
        &self.links
    }

    /// The node-failure component, if enabled.
    #[must_use]
    pub fn node_model(&self) -> Option<&NodeFailureModel> {
        self.nodes.as_ref()
    }

    /// The chaos injector, if enabled.
    #[must_use]
    pub fn chaos(&self) -> Option<&ChaosModel> {
        self.chaos.as_ref()
    }

    /// Whether `node` is unable to process traffic at `at`: epoch-failed
    /// (node model) or crash-down (chaos). A down node loses packets that
    /// *arrive* during the outage, not just new transmissions.
    #[must_use]
    pub fn node_down(&self, node: NodeId, at: SimTime) -> bool {
        if self.nodes.is_some_and(|m| m.is_failed(node, at)) {
            return true;
        }
        self.chaos.is_some_and(|c| c.node_down(node, at))
    }

    /// Whether a transmission over `edge` at `at` is blocked by a failure
    /// (of the link, of either endpoint, or by chaos).
    #[must_use]
    pub fn edge_blocked(&self, topo: &Topology, edge: EdgeId, at: SimTime) -> bool {
        if self.links.is_failed(edge, at) {
            return true;
        }
        if let Some(nodes) = &self.nodes {
            let e = topo.edge(edge);
            if nodes.is_failed(e.a(), at) || nodes.is_failed(e.b(), at) {
                return true;
            }
        }
        if let Some(chaos) = &self.chaos {
            if chaos.edge_blocked(topo, edge, at) {
                return true;
            }
        }
        false
    }

    /// The start of the next failure-state change after `at`.
    #[must_use]
    pub fn next_change(&self, at: SimTime) -> SimTime {
        let epoch_len = DEFAULT_EPOCH.as_micros();
        SimTime::from_micros((self.links.epoch_index(at) + 1) * epoch_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{full_mesh, DelayRange};
    use dcrd_sim::rng::rng_for;

    #[test]
    fn epoch_indexing() {
        let m = LinkFailureModel::new(0.5, 1);
        assert_eq!(m.epoch_index(SimTime::ZERO), 0);
        assert_eq!(m.epoch_index(SimTime::from_millis(999)), 0);
        assert_eq!(m.epoch_index(SimTime::from_secs(1)), 1);
        assert_eq!(
            m.next_epoch_start(SimTime::from_millis(500)),
            SimTime::from_secs(1)
        );
        assert_eq!(
            m.next_epoch_start(SimTime::from_secs(1)),
            SimTime::from_secs(2)
        );
    }

    #[test]
    fn failure_state_constant_within_epoch() {
        let m = LinkFailureModel::new(0.5, 42);
        let e = EdgeId::new(3);
        let base = m.is_failed(e, SimTime::from_secs(5));
        for ms in 0..1000u64 {
            assert_eq!(
                m.is_failed(e, SimTime::from_secs(5) + SimDuration::from_millis(ms)),
                base
            );
        }
    }

    #[test]
    fn marginal_failure_rate_approximates_pf() {
        let m = LinkFailureModel::new(0.06, 7);
        let mut failed = 0u64;
        let total = 200 * 100;
        for epoch in 0..200u64 {
            for edge in 0..100u32 {
                if m.is_failed(EdgeId::new(edge), SimTime::from_secs(epoch)) {
                    failed += 1;
                }
            }
        }
        let rate = failed as f64 / total as f64;
        assert!((rate - 0.06).abs() < 0.01, "empirical failure rate {rate}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = LinkFailureModel::new(0.5, 1);
        let b = LinkFailureModel::new(0.5, 2);
        let mut differs = false;
        for epoch in 0..64u64 {
            let t = SimTime::from_secs(epoch);
            if a.is_failed(EdgeId::new(0), t) != b.is_failed(EdgeId::new(0), t) {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }

    #[test]
    fn edges_fail_independently() {
        let m = LinkFailureModel::new(0.5, 9);
        let t = SimTime::from_secs(3);
        let states: Vec<bool> = (0..64).map(|i| m.is_failed(EdgeId::new(i), t)).collect();
        assert!(states.iter().any(|&s| s));
        assert!(states.iter().any(|&s| !s));
    }

    #[test]
    fn extreme_probabilities() {
        let up = LinkFailureModel::new(0.0, 1);
        let down = LinkFailureModel::new(1.0, 1);
        for epoch in 0..10u64 {
            let t = SimTime::from_secs(epoch);
            assert!(!up.is_failed(EdgeId::new(0), t));
            assert!(down.is_failed(EdgeId::new(0), t));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_probability() {
        let _ = LinkFailureModel::new(1.5, 0);
    }

    #[test]
    fn node_failures_block_incident_edges() {
        let mut rng = rng_for(0, "nf");
        let topo = full_mesh(4, DelayRange::PAPER, &mut rng);
        let links = LinkFailureModel::new(0.0, 1);
        let nodes = NodeFailureModel::new(1.0, 1); // every node always failed
        let fm = FailureModel::with_node_failures(links, nodes);
        for e in topo.edge_ids() {
            assert!(fm.edge_blocked(&topo, e, SimTime::ZERO));
        }
        let fm2 = FailureModel::links_only(links);
        for e in topo.edge_ids() {
            assert!(!fm2.edge_blocked(&topo, e, SimTime::ZERO));
        }
    }

    #[test]
    fn node_marginal_rate() {
        let m = NodeFailureModel::new(0.1, 11);
        let mut failed = 0u64;
        for epoch in 0..500u64 {
            for node in 0..20u32 {
                if m.is_failed(NodeId::new(node), SimTime::from_secs(epoch)) {
                    failed += 1;
                }
            }
        }
        let rate = failed as f64 / (500.0 * 20.0);
        assert!(
            (rate - 0.1).abs() < 0.02,
            "empirical node failure rate {rate}"
        );
        assert!((m.pn() - 0.1).abs() < f64::EPSILON);
    }

    #[test]
    fn combined_next_change_follows_epoch() {
        let fm = FailureModel::links_only(LinkFailureModel::new(0.1, 3));
        assert_eq!(
            fm.next_change(SimTime::from_millis(1500)),
            SimTime::from_secs(2)
        );
        let bm = FailureModel::bursty(BurstFailureModel::new(0.06, 4.0, 3));
        assert_eq!(
            bm.next_change(SimTime::from_millis(2500)),
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn burst_marginal_rate_close_to_target() {
        for (pf, mean) in [(0.06, 4.0), (0.1, 2.0), (0.04, 8.0)] {
            let m = BurstFailureModel::new(pf, mean, 17);
            let mut failed = 0u64;
            let total = 2000u64 * 40;
            for epoch in 0..2000u64 {
                for edge in 0..40u32 {
                    if m.is_failed(EdgeId::new(edge), SimTime::from_secs(epoch)) {
                        failed += 1;
                    }
                }
            }
            let rate = failed as f64 / total as f64;
            assert!(
                (rate - pf).abs() < 0.25 * pf,
                "target pf={pf} mean={mean}: empirical rate {rate}"
            );
        }
    }

    #[test]
    fn bursts_are_temporally_correlated() {
        // P(failed at t+1 | failed at t) must be far above the marginal
        // rate — the whole point of bursts.
        let m = BurstFailureModel::new(0.06, 6.0, 23);
        let mut failed_now = 0u64;
        let mut failed_both = 0u64;
        for epoch in 0..5000u64 {
            for edge in 0..20u32 {
                let e = EdgeId::new(edge);
                if m.is_failed(e, SimTime::from_secs(epoch)) {
                    failed_now += 1;
                    if m.is_failed(e, SimTime::from_secs(epoch + 1)) {
                        failed_both += 1;
                    }
                }
            }
        }
        let conditional = failed_both as f64 / failed_now as f64;
        assert!(
            conditional > 0.5,
            "bursty conditional persistence {conditional} too low"
        );

        // The paper's per-epoch model has no such correlation.
        let iid = LinkFailureModel::new(0.06, 23);
        let mut now = 0u64;
        let mut both = 0u64;
        for epoch in 0..5000u64 {
            for edge in 0..20u32 {
                let e = EdgeId::new(edge);
                if iid.is_failed(e, SimTime::from_secs(epoch)) {
                    now += 1;
                    if iid.is_failed(e, SimTime::from_secs(epoch + 1)) {
                        both += 1;
                    }
                }
            }
        }
        let iid_conditional = both as f64 / now as f64;
        assert!(
            iid_conditional < 0.15,
            "iid model should not persist: {iid_conditional}"
        );
    }

    #[test]
    fn burst_state_constant_within_epoch() {
        let m = BurstFailureModel::new(0.3, 3.0, 5);
        let e = EdgeId::new(1);
        for epoch in 0..50u64 {
            let base = m.is_failed(e, SimTime::from_secs(epoch));
            for ms in [1u64, 250, 999] {
                assert_eq!(
                    m.is_failed(e, SimTime::from_secs(epoch) + SimDuration::from_millis(ms)),
                    base
                );
            }
        }
    }

    #[test]
    fn burst_zero_rate_never_fails() {
        let m = BurstFailureModel::new(0.0, 4.0, 1);
        for epoch in 0..100 {
            assert!(!m.is_failed(EdgeId::new(0), SimTime::from_secs(epoch)));
        }
        assert_eq!(LinkOutageModel::Burst(m).marginal_rate(), 0.0);
    }

    #[test]
    fn node_outage_blocks_incident_links_both_directions_until_epoch_boundary() {
        // A failed node takes down every incident link for the whole epoch
        // — traffic *to* it and *from* it alike (edge_blocked is queried
        // for both directions of a link) — and recovery is exactly at the
        // next epoch boundary.
        let mut rng = rng_for(1, "nf-recovery");
        let topo = full_mesh(5, DelayRange::PAPER, &mut rng);
        let links = LinkFailureModel::new(0.0, 1);
        let nodes = NodeFailureModel::new(0.5, 77);
        let fm = FailureModel::with_node_failures(links, nodes);
        let victim = topo.node(2);
        // Find an epoch where the victim is down and the next is up.
        let (down_epoch, up_epoch) = (0..200u64)
            .find_map(|e| {
                let down = nodes.is_failed(victim, SimTime::from_secs(e));
                let up = !nodes.is_failed(victim, SimTime::from_secs(e + 1));
                (down && up).then_some((e, e + 1))
            })
            .expect("pn = 0.5 must yield a down→up transition");
        for e in topo.edge_ids() {
            let edge = topo.edge(e);
            let incident = edge.a() == victim || edge.b() == victim;
            if !incident {
                continue;
            }
            // Blocked throughout the outage epoch, regardless of which
            // endpoint is transmitting...
            for ms in [0u64, 500, 999] {
                let t = SimTime::from_secs(down_epoch) + SimDuration::from_millis(ms);
                assert!(fm.edge_blocked(&topo, e, t), "outage must block {e:?}");
            }
            // ...and restored at the epoch boundary (unless the peer node
            // happens to be failed itself in the recovery epoch).
            let t = SimTime::from_secs(up_epoch);
            let peer = if edge.a() == victim {
                edge.b()
            } else {
                edge.a()
            };
            if !nodes.is_failed(peer, t) {
                assert!(!fm.edge_blocked(&topo, e, t), "recovery must unblock {e:?}");
            }
        }
        assert!(fm.node_down(victim, SimTime::from_secs(down_epoch)));
        assert!(!fm.node_down(victim, SimTime::from_secs(up_epoch)));
    }

    #[test]
    fn burst_with_unit_mean_degenerates_to_single_epochs() {
        // mean = 1 epoch: every burst is exactly one epoch long, so the
        // model reduces to the paper's per-epoch process with rate pf.
        let m = BurstFailureModel::new(0.3, 1.0, 31);
        assert!((m.start_prob() - 0.3).abs() < 1e-12);
        let mut failed = 0u64;
        let total = 2000u64 * 20;
        for epoch in 0..2000u64 {
            for edge in 0..20u32 {
                if m.is_failed(EdgeId::new(edge), SimTime::from_secs(epoch)) {
                    failed += 1;
                }
            }
        }
        let rate = failed as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.03, "unit-mean burst rate {rate}");
    }

    #[test]
    fn burst_with_certain_failure_is_always_down() {
        // Pf = 1.0, mean = 1.0: a burst starts every epoch, so the link is
        // permanently failed.
        let m = BurstFailureModel::new(1.0, 1.0, 3);
        for epoch in 0..100u64 {
            assert!(m.is_failed(EdgeId::new(0), SimTime::from_secs(epoch)));
        }
    }

    #[test]
    fn burst_spanning_simulation_end_stays_queryable() {
        // A burst that starts near the end of a run keeps answering
        // consistently for queries past the horizon: the failure state is a
        // pure function of the epoch, with no dependence on run length.
        let m = BurstFailureModel::new(0.1, 6.0, 41);
        let horizon = 100u64;
        let e = EdgeId::new(2);
        // Locate a burst in progress at the horizon.
        let spanning = (0..horizon).rev().find(|&epoch| {
            m.is_failed(e, SimTime::from_secs(epoch)) && m.is_failed(e, SimTime::from_secs(horizon))
        });
        // Whether or not one spans this particular horizon, queries beyond
        // it are well-defined and epoch-constant.
        for epoch in horizon..horizon + 20 {
            let base = m.is_failed(e, SimTime::from_secs(epoch));
            assert_eq!(
                m.is_failed(e, SimTime::from_secs(epoch) + SimDuration::from_millis(999)),
                base
            );
        }
        // And the spanning burst (if found) agrees before and after.
        if let Some(epoch) = spanning {
            assert!(m.is_failed(e, SimTime::from_secs(epoch)));
        }
    }

    #[test]
    fn chaos_injector_composes_with_link_model() {
        use crate::chaos::{ChaosModel, CrashRestartModel, PartitionModel};
        let mut rng = rng_for(2, "chaos-fm");
        let topo = full_mesh(8, DelayRange::PAPER, &mut rng);
        let base = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let chaos = ChaosModel::none().with_partition(PartitionModel::new(
            0.25,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
            5,
        ));
        let fm = base.with_chaos(chaos);
        assert!(fm.chaos().is_some());
        let t = SimTime::from_secs(3);
        let cut = topo
            .edge_ids()
            .filter(|&e| fm.edge_blocked(&topo, e, t))
            .count();
        // 2 isolated of 8 in a mesh → 2 × 6 crossing edges, all blocked.
        assert_eq!(cut, 12);
        // Outside the window the base (loss-free) model is back.
        let healed = SimTime::from_secs(15);
        assert!(topo.edge_ids().all(|e| !fm.edge_blocked(&topo, e, healed)));
        // Crash-down nodes surface through node_down.
        let crashing =
            base.with_chaos(ChaosModel::none().with_crashes(CrashRestartModel::new(1.0, 1.0, 2)));
        assert!(crashing.node_down(topo.node(0), SimTime::ZERO));
        // Empty injectors normalize away.
        assert!(base.with_chaos(ChaosModel::none()).chaos().is_none());
    }

    #[test]
    fn outage_model_dispatch() {
        let epoch_model = LinkOutageModel::Epoch(LinkFailureModel::new(0.08, 2));
        assert!((epoch_model.marginal_rate() - 0.08).abs() < 1e-12);
        assert_eq!(epoch_model.epoch_index(SimTime::from_secs(3)), 3);
        let burst = LinkOutageModel::Burst(BurstFailureModel::new(0.08, 4.0, 2));
        assert!((burst.marginal_rate() - 0.08).abs() < 1e-12);
        assert_eq!(burst.epoch_index(SimTime::from_secs(3)), 3);
    }
}
