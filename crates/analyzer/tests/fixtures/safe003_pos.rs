// Fixture: SAFE003 must fire — capacity hints in a wire-codec file fed by
// unclamped (wire-decoded) lengths.
pub fn read_nodes(buf: &[u8], count: usize) -> Vec<u32> {
    let mut nodes = Vec::with_capacity(count);
    for chunk in buf.chunks_exact(4).take(count) {
        nodes.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    nodes
}

pub fn extend(out: &mut Vec<u8>, payload_len: usize) {
    out.reserve(payload_len);
}
