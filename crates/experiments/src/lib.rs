//! # dcrd-experiments — the paper's evaluation, reproducible
//!
//! One module per concern:
//!
//! * [`scenario`] — a declarative description of one experimental setup
//!   (topology family, `Pf`, `Pl`, `m`, deadline factor, duration,
//!   repetitions) with the paper's defaults.
//! * [`runner`] — deterministic execution: one scenario × strategy ×
//!   repetition per run, repetitions pooled, strategies compared, sweeps
//!   parallelized over a thread pool.
//! * [`figures`] — the drivers reproducing **every figure of the paper**
//!   (Figs. 2–8) plus the ablations listed in `DESIGN.md`.
//! * [`chaos`] — the chaos study: partition / crash-restart / gray-link
//!   sweeps comparing the chaos-hardened DCRD router against the paper's
//!   fixed-timeout router, with the invariant auditor on everywhere.
//! * [`recovery`] — the recovery study: a harsh crash-rate sweep
//!   comparing the durable custody journal + NACK recovery against the
//!   volatile router, with the end-to-end sequence audit armed.
//! * [`churn`] — the churn study: broker joins, graceful leaves and
//!   permanent deaths mid-run, comparing incremental membership repair
//!   against the global-rebuild oracle and a no-repair control.
//! * [`gossip`] — the gossip study: epidemic membership dissemination
//!   under partitions and control-plane loss, comparing gossip against
//!   the oracle control plane and a no-dissemination control.
//! * [`hostile`] — the hostile study: flash crowds on a Zipf-skewed,
//!   geo-tiered overlay with bounded broker queues, comparing
//!   delay-cognizant least-slack shedding against tail-drop and an
//!   unbounded control.
//!
//! The `dcrd-experiments` binary exposes all of it on the command line:
//!
//! ```text
//! dcrd-experiments fig2 --quality standard
//! dcrd-experiments all --quality quick --out results/
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod churn;
pub mod figures;
pub mod gossip;
pub mod hostile;
pub mod recovery;
pub mod runner;
pub mod scenario;

pub use chaos::{chaos_report, ChaosReport};
pub use churn::{churn_report, ChurnReport};
pub use gossip::{gossip_report, GossipReport};
pub use hostile::{hostile_report, HostileReport};
pub use recovery::{recovery_report, RecoveryReport};
pub use runner::{run_comparison, run_scenario, run_traced, StrategyKind};
pub use scenario::{Quality, Scenario, ScenarioBuilder, TopologyKind};
