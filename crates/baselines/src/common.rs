//! Shared hop-by-hop forwarding engine for the baseline strategies.
//!
//! Every baseline transmits packets hop by hop with the same ACK discipline
//! as DCRD (ACK timeout of `ack_timeout_factor × α`, up to `m` transmissions
//! per link) but differs in **where the next hop comes from** and **what
//! happens after `m` failed transmissions**. Those two choices are captured
//! by [`NextHopPolicy`]; [`HopByHopStrategy`] supplies the rest.

use std::collections::BTreeMap;

use dcrd_net::estimate::LinkEstimates;
use dcrd_net::{NodeId, Topology};
use dcrd_pubsub::packet::Packet;
use dcrd_pubsub::strategy::{
    ack_timeout, Actions, RoutingStrategy, RunParams, SetupContext, TimerKey,
};
use dcrd_sim::SimTime;

/// What a policy wants to happen after a neighbor fails `m` transmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureResponse {
    /// Abandon the affected destinations (trees, Multipath — they never
    /// reroute).
    GiveUp,
    /// Ask the policy for a fresh next hop and try again, up to the given
    /// total budget per (packet, broker) (ORACLE — the failure state may
    /// have changed).
    Retry {
        /// Maximum processing passes per (packet, broker).
        budget: u32,
    },
}

/// The per-baseline routing brain plugged into [`HopByHopStrategy`].
pub trait NextHopPolicy {
    /// Short human-readable name (used in reports).
    fn name(&self) -> &'static str;

    /// Called once before the run.
    fn setup(&mut self, ctx: &SetupContext<'_>);

    /// The copies a fresh publication fans out into. The default is the
    /// single original packet; Multipath overrides this to duplicate per
    /// subscriber with pinned routes.
    fn initial_copies(&mut self, node: NodeId, packet: Packet) -> Vec<Packet> {
        let _ = node;
        vec![packet]
    }

    /// The neighbor `node` should forward `packet` to in order to reach
    /// `dest`, or `None` if this policy has no route (the destination is
    /// then abandoned).
    fn next_hop(
        &mut self,
        node: NodeId,
        packet: &Packet,
        dest: NodeId,
        now: SimTime,
    ) -> Option<NodeId>;

    /// Reaction to `m` failed transmissions toward one neighbor.
    fn on_failure(&self) -> FailureResponse;
}

#[derive(Debug, Clone)]
struct Pending {
    node: NodeId,
    to: NodeId,
    packet: Packet,
    sends: u32,
    /// Remaining re-processing budget for Retry policies.
    budget: u32,
}

/// A [`RoutingStrategy`] forwarding along policy-chosen next hops with
/// hop-by-hop ACKs and `m` transmissions per link, and **no** rerouting
/// beyond what the policy's [`FailureResponse`] allows.
#[derive(Debug)]
pub struct HopByHopStrategy<P> {
    policy: P,
    params: RunParams,
    topology: Option<Topology>,
    estimates: Option<LinkEstimates>,
    pending: BTreeMap<u64, Pending>,
    next_tag: u64,
}

impl<P: NextHopPolicy> HopByHopStrategy<P> {
    /// Wraps a policy.
    #[must_use]
    pub fn new(policy: P) -> Self {
        HopByHopStrategy {
            policy,
            params: RunParams::default(),
            topology: None,
            estimates: None,
            pending: BTreeMap::new(),
            next_tag: 0,
        }
    }

    /// The wrapped policy.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Outstanding un-ACKed transmissions (diagnostic).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    fn initial_budget(&self) -> u32 {
        match self.policy.on_failure() {
            FailureResponse::GiveUp => 1,
            FailureResponse::Retry { budget } => budget.max(1),
        }
    }

    /// Routes every destination of `packet` out of `node`: destinations
    /// sharing a next hop travel in one transmission.
    fn process(
        &mut self,
        node: NodeId,
        packet: &Packet,
        budget: u32,
        now: SimTime,
        out: &mut Actions,
    ) {
        let mut groups: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for &dest in &packet.destinations {
            if dest == node {
                continue;
            }
            match self.policy.next_hop(node, packet, dest, now) {
                Some(hop) => {
                    if let Some(g) = groups.iter_mut().find(|(h, _)| *h == hop) {
                        g.1.push(dest);
                    } else {
                        groups.push((hop, vec![dest]));
                    }
                }
                None => out.give_up(packet.id, dest),
            }
        }
        for (hop, dests) in groups {
            let tag = self.next_tag;
            self.next_tag += 1;
            let forwarded = packet.forward(node, dests, tag);
            let topo = self.topology.as_ref().expect("setup ran");
            let est = self.estimates.as_ref().expect("setup ran");
            let edge = topo
                .edge_between(node, hop)
                .unwrap_or_else(|| panic!("policy chose non-neighbor {hop} from {node}"));
            let timeout = ack_timeout(est.get(edge).alpha, &self.params);
            out.send(hop, forwarded.clone());
            out.set_timer(
                now + timeout,
                TimerKey {
                    packet: packet.id,
                    tag,
                },
            );
            self.pending.insert(
                tag,
                Pending {
                    node,
                    to: hop,
                    packet: forwarded,
                    sends: 1,
                    budget,
                },
            );
        }
    }
}

impl<P: NextHopPolicy> RoutingStrategy for HopByHopStrategy<P> {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn setup(&mut self, ctx: &SetupContext<'_>) {
        self.params = ctx.params;
        self.topology = Some(ctx.topology.clone());
        self.estimates = Some(ctx.estimates.clone());
        self.policy.setup(ctx);
    }

    fn on_publish(&mut self, node: NodeId, packet: Packet, now: SimTime, out: &mut Actions) {
        let budget = self.initial_budget();
        for copy in self.policy.initial_copies(node, packet) {
            self.process(node, &copy, budget, now, out);
        }
    }

    fn on_packet(
        &mut self,
        node: NodeId,
        _from: NodeId,
        mut packet: Packet,
        now: SimTime,
        out: &mut Actions,
    ) {
        if let Some(pos) = packet.destinations.iter().position(|&d| d == node) {
            out.deliver(packet.id);
            packet.destinations.swap_remove(pos);
        }
        if packet.destinations.is_empty() {
            return;
        }
        let budget = self.initial_budget();
        self.process(node, &packet, budget, now, out);
    }

    fn on_ack(
        &mut self,
        _node: NodeId,
        _to: NodeId,
        packet: &Packet,
        _now: SimTime,
        _out: &mut Actions,
    ) {
        self.pending.remove(&packet.tag);
    }

    fn on_timer(&mut self, _node: NodeId, key: TimerKey, now: SimTime, out: &mut Actions) {
        let Some(p) = self.pending.get_mut(&key.tag) else {
            return; // ACKed; stale timer.
        };
        if p.sends < self.params.m {
            p.sends += 1;
            let to = p.to;
            let node = p.node;
            let packet = p.packet.clone();
            let topo = self.topology.as_ref().expect("setup ran");
            let est = self.estimates.as_ref().expect("setup ran");
            let edge = topo.edge_between(node, to).expect("pending over a link");
            let timeout = ack_timeout(est.get(edge).alpha, &self.params);
            out.send(to, packet);
            out.set_timer(now + timeout, key);
            return;
        }
        let p = self.pending.remove(&key.tag).expect("checked above");
        match self.policy.on_failure() {
            FailureResponse::GiveUp => {
                for &dest in &p.packet.destinations {
                    out.give_up(p.packet.id, dest);
                }
            }
            FailureResponse::Retry { .. } => {
                if p.budget > 1 {
                    // Re-route the affected destinations with a fresh view.
                    self.process(p.node, &p.packet, p.budget - 1, now, out);
                } else {
                    for &dest in &p.packet.destinations {
                        out.give_up(p.packet.id, dest);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::failure::{FailureModel, LinkFailureModel};
    use dcrd_net::loss::LossModel;
    use dcrd_net::topology::line;
    use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig};
    use dcrd_pubsub::topic::{Subscription, TopicId};
    use dcrd_pubsub::workload::{TopicSpec, Workload};
    use dcrd_sim::SimDuration;

    /// Policy that always forwards toward higher node ids along a line.
    struct LinePolicy;
    impl NextHopPolicy for LinePolicy {
        fn name(&self) -> &'static str {
            "line"
        }
        fn setup(&mut self, _ctx: &SetupContext<'_>) {}
        fn next_hop(
            &mut self,
            node: NodeId,
            _packet: &Packet,
            dest: NodeId,
            _now: SimTime,
        ) -> Option<NodeId> {
            (dest.index() > node.index()).then(|| NodeId::new(node.index() as u32 + 1))
        }
        fn on_failure(&self) -> FailureResponse {
            FailureResponse::GiveUp
        }
    }

    fn line_workload(topo: &Topology, deadline_ms: u64) -> Workload {
        Workload::from_topics(vec![TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(
                topo.node(topo.num_nodes() - 1),
                SimDuration::from_millis(deadline_ms),
            )],
            burst: None,
        }])
    }

    #[test]
    fn forwards_along_policy_route() {
        let topo = line(4, SimDuration::from_millis(10));
        let wl = line_workload(&topo, 100);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let rt = OverlayRuntime::new(
            &topo,
            &wl,
            failure,
            LossModel::new(0.0),
            RuntimeConfig::paper(SimDuration::from_secs(10), 1),
        );
        let mut s = HopByHopStrategy::new(LinePolicy);
        let log = rt.run(&mut s);
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!((log.packets_per_subscriber() - 3.0).abs() < 1e-12);
        assert_eq!(s.outstanding(), 0, "all pendings ACKed");
        assert_eq!(s.name(), "line");
    }

    #[test]
    fn gives_up_on_failed_link_without_retrying() {
        let topo = line(2, SimDuration::from_millis(10));
        let wl = line_workload(&topo, 100);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.5, 3));
        let rt = OverlayRuntime::new(
            &topo,
            &wl,
            failure,
            LossModel::new(0.0),
            RuntimeConfig::paper(SimDuration::from_secs(120), 2),
        );
        let log = rt.run(&mut HopByHopStrategy::new(LinePolicy));
        let ratio = log.delivery_ratio();
        assert!(
            (0.3..0.7).contains(&ratio),
            "no-retry delivery should track link availability, got {ratio}"
        );
        // m=1 and GiveUp ⇒ exactly one transmission per message.
        assert!((log.packets_per_subscriber() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn m2_retransmits_on_loss() {
        let topo = line(2, SimDuration::from_millis(10));
        let wl = line_workload(&topo, 200);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let mut cfg = RuntimeConfig::paper(SimDuration::from_secs(120), 5);
        cfg.params.m = 2;
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.3), cfg);
        let log = rt.run(&mut HopByHopStrategy::new(LinePolicy));
        // One attempt delivers 70%; two attempts ≈ 91%.
        assert!(
            log.delivery_ratio() > 0.84,
            "m=2 delivery {}",
            log.delivery_ratio()
        );
        assert!(log.packets_per_subscriber() > 1.2);
    }
}
