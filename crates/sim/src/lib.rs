//! # dcrd-sim — deterministic discrete-event simulation engine
//!
//! This crate is the simulation substrate used by the DCRD reproduction
//! (Guo et al., *Delay-Cognizant Reliable Delivery for Publish/Subscribe
//! Overlay Networks*, ICDCS 2011). The paper evaluates purely in simulation,
//! so this engine is one of the systems the reproduction has to build from
//! scratch.
//!
//! It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time,
//!   strongly typed so that wall-clock and simulated time can never be mixed.
//! * [`EventQueue`] — a stable priority queue of timestamped events: events
//!   scheduled for the same instant pop in FIFO order, which makes whole-run
//!   results reproducible bit-for-bit for a given seed.
//! * [`rng`] — seed-derivation helpers so that every component of a large
//!   experiment gets an independent, deterministic random stream.
//! * [`stats`] — online statistics (Welford mean/variance, counters,
//!   fixed-bucket histograms and empirical CDFs) used by the metric crates.
//!
//! # Example
//!
//! ```
//! use dcrd_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(5), "later");
//! queue.schedule(SimTime::ZERO, "now");
//! let (t, ev) = queue.pop().expect("event");
//! assert_eq!(ev, "now");
//! assert_eq!(t, SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
pub mod wheel;

pub use event::EventQueue;
pub use time::{SimDuration, SimTime};
pub use wheel::TimerWheel;
