//! The gossip-study acceptance gate, run by CI in release mode: the whole
//! control-plane loss sweep at smoke quality, checking shape, a clean
//! audit (staleness clause included), and that the epidemic path actually
//! carried the deltas the gossip arm routed on.

use dcrd_experiments::gossip::{gossip_loss, gossip_report, GOSSIP_LOSS_SWEEP};
use dcrd_experiments::scenario::Quality;
use dcrd_metrics::report::MetricKind;

/// One pass over the whole sweep: shape, a clean audit, and live
/// control-plane counters — the gossip arm must have pushed rumors, run
/// anti-entropy, and applied converged deltas at every loss rate.
#[test]
fn gossip_sweep_is_clean_and_the_epidemic_path_carries_deltas() {
    let report = gossip_report(Quality::Smoke);
    let series = &report.series;
    assert_eq!(series.points.len(), GOSSIP_LOSS_SWEEP.len());
    assert_eq!(
        series.strategy_names(),
        ["DCRD-gossip", "DCRD-oracle", "DCRD-static"]
    );
    assert_eq!(
        report.total_audit_violations, 0,
        "auditor flagged a violation (possibly the staleness clause)"
    );
    assert!(report.rumors_sent > 0, "gossip arm pushed no rumors");
    assert!(
        report.anti_entropy_rounds > 0,
        "anti-entropy never ran despite recurring partitions"
    );
    assert!(
        report.gossip_deltas_applied > 0,
        "no membership delta ever converged through the epidemic path"
    );
    for point in &series.points {
        let gossip = &point.strategies[0];
        assert!(
            gossip.rumors_sent() > 0 && gossip.gossip_deltas_applied() > 0,
            "at loss {} the gossip arm did not gossip (rumors {}, applied {})",
            point.x,
            gossip.rumors_sent(),
            gossip.gossip_deltas_applied()
        );
        // Only the gossip arm runs the epidemic control plane.
        for other in &point.strategies[1..] {
            assert_eq!(other.rumors_sent(), 0, "{} gossiped", other.name());
        }
    }
    let table = series.render_table(MetricKind::Delivery);
    assert!(table.contains("DCRD-gossip"));
}

/// The sweep itself is deterministic: running it twice produces the same
/// delivery numbers and counters at every point for every arm.
#[test]
fn gossip_sweep_is_seed_deterministic() {
    let a = gossip_loss(Quality::Smoke);
    let b = gossip_loss(Quality::Smoke);
    assert_eq!(a.points.len(), b.points.len());
    for (pa, pb) in a.points.iter().zip(&b.points) {
        for (sa, sb) in pa.strategies.iter().zip(&pb.strategies) {
            assert_eq!(sa.name(), sb.name());
            assert_eq!(
                sa.delivery_ratio().to_bits(),
                sb.delivery_ratio().to_bits(),
                "{} at loss {} not reproducible",
                sa.name(),
                pa.x
            );
            assert_eq!(sa.rumors_sent(), sb.rumors_sent());
            assert_eq!(sa.gossip_deltas_applied(), sb.gossip_deltas_applied());
            assert_eq!(sa.audit_violations(), sb.audit_violations());
        }
    }
}
