//! Typed runtime diagnostics.
//!
//! The runtime never aborts a run on an internal inconsistency: like the
//! [`invalid_sends`] / [`invalid_delivers`] counters for strategy bugs, an
//! impossible runtime state (an arrival over a link that does not exist, a
//! probe event without a monitor) is recorded as a [`RuntimeError`] in the
//! [`DeliveryLog`] and the offending event is dropped. An injected fault
//! that trips a latent bug then surfaces as a diagnostic in the log, not a
//! crashed experiment sweep.
//!
//! [`invalid_sends`]: crate::runtime::DeliveryLog::invalid_sends
//! [`invalid_delivers`]: crate::runtime::DeliveryLog::invalid_delivers
//! [`DeliveryLog`]: crate::runtime::DeliveryLog

use std::fmt;

use dcrd_net::NodeId;
use serde::{Deserialize, Serialize};

use crate::packet::PacketId;

/// How many runtime errors are kept verbatim in the log; beyond this only
/// [`runtime_errors`](crate::runtime::DeliveryLog::runtime_errors) grows.
pub const MAX_RUNTIME_ERRORS: usize = 16;

/// An internal runtime inconsistency detected (and survived) during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeError {
    /// A packet arrival was scheduled over a `(from, to)` pair that shares
    /// no link in the topology. The arrival is dropped.
    ArrivalWithoutLink {
        /// The broker that supposedly sent the packet.
        from: NodeId,
        /// The broker the packet arrived at.
        to: NodeId,
        /// The message.
        packet: PacketId,
    },
    /// A probe or monitor event fired but no link monitor exists (the run
    /// is not in probing mode). The event is dropped.
    MonitorMissing,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RuntimeError::ArrivalWithoutLink { from, to, packet } => {
                write!(
                    f,
                    "{packet} arrived at n{} from n{} but no such link exists",
                    to.index(),
                    from.index()
                )
            }
            RuntimeError::MonitorMissing => {
                write!(f, "probe/monitor event fired without a link monitor")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_for_reports() {
        let e = RuntimeError::ArrivalWithoutLink {
            from: NodeId::new(1),
            to: NodeId::new(2),
            packet: PacketId::new(7),
        };
        assert!(e.to_string().contains("pkt7"));
        assert!(e.to_string().contains("no such link"));
        assert!(RuntimeError::MonitorMissing
            .to_string()
            .contains("without a link monitor"));
    }

    #[test]
    fn errors_are_comparable_values() {
        let a = RuntimeError::ArrivalWithoutLink {
            from: NodeId::new(0),
            to: NodeId::new(1),
            packet: PacketId::new(3),
        };
        assert_eq!(a, a);
        assert_ne!(a, RuntimeError::MonitorMissing);
    }
}
