//! The routing-strategy interface.
//!
//! A [`RoutingStrategy`] implements the forwarding logic of every broker in
//! the overlay. The runtime drives it through event callbacks; the strategy
//! responds with [`Action`]s. The callbacks expose only information a real
//! broker would have locally (the packet it received, its own timers, ACKs
//! from its neighbors) — except that the [`SetupContext`] also hands over a
//! global failure oracle, which **only** the ORACLE baseline is allowed to
//! consult.

use dcrd_net::estimate::LinkEstimates;
use dcrd_net::failure::FailureModel;
use dcrd_net::membership::MembershipDelta;
use dcrd_net::{NodeId, Topology};
use dcrd_sim::{SimDuration, SimTime};

use crate::packet::{Packet, PacketId};
use crate::workload::Workload;

/// Per-run parameters shared by all strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunParams {
    /// Number of transmissions a broker attempts on one link before giving
    /// up on that neighbor (the paper's `m`; default 1).
    pub m: u32,
    /// ACK timeout as a multiple of the link's expected one-way delay `α`.
    /// The paper waits "α" (§III-D), which matches the runtime's default
    /// instant-ACK transit model; use ≥ 2.0 with the round-trip ACK model.
    pub ack_timeout_factor: f64,
    /// The publish horizon: no message is published at or after this time
    /// (the runtime injects its configured duration here). Recovery sweeps
    /// use it to avoid NACKing sequence numbers that were never published
    /// because the run ended. Static workload knowledge, so strategies may
    /// consult it without breaking honest locality.
    pub horizon: SimDuration,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            m: 1,
            ack_timeout_factor: 1.0,
            horizon: SimDuration::MAX,
        }
    }
}

/// Everything a strategy may precompute from before the run starts.
#[derive(Debug, Clone, Copy)]
pub struct SetupContext<'a> {
    /// The overlay topology.
    pub topology: &'a Topology,
    /// Long-run link quality estimates `⟨α, γ⟩` (what monitoring reports).
    pub estimates: &'a LinkEstimates,
    /// The static workload (topics, publishers, subscriptions, deadlines).
    pub workload: &'a Workload,
    /// Global failure oracle. **Only the ORACLE baseline may use this**;
    /// every other strategy must route from `estimates` and runtime
    /// feedback alone.
    pub failure_oracle: &'a FailureModel,
    /// Shared per-run parameters.
    pub params: RunParams,
}

/// A timer handle: `(message, strategy-chosen tag)`. Strategies typically
/// put a send sequence number in the tag and ignore stale firings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerKey {
    /// The message the timer belongs to.
    pub packet: PacketId,
    /// Strategy-private discriminator.
    pub tag: u64,
}

/// One instruction from a strategy back to the runtime.
#[derive(Debug, Clone)]
pub enum Action {
    /// Transmit `packet` to the neighboring broker `to`. The runtime
    /// simulates the link (failure epoch, random loss, propagation delay)
    /// and the hop-by-hop ACK, then calls `on_packet` at the receiver /
    /// `on_ack` at the sender as appropriate.
    Send {
        /// The neighbor to transmit to (must share a link with the acting
        /// node).
        to: NodeId,
        /// The packet copy to put on the wire.
        packet: Packet,
    },
    /// Deliver the message to the local subscriber on the acting node. The
    /// runtime records the delivery time against the subscription deadline.
    Deliver {
        /// The message being delivered.
        packet: PacketId,
    },
    /// Arrange for `on_timer` to fire at `at` with `key`.
    SetTimer {
        /// Absolute firing time.
        at: SimTime,
        /// Echoed back to `on_timer`.
        key: TimerKey,
    },
    /// Give up on reaching `destination` with this message (accounting
    /// only — helps distinguish "gave up" from "still in flight").
    GiveUp {
        /// The message being abandoned.
        packet: PacketId,
        /// The subscriber that will not be reached.
        destination: NodeId,
    },
    /// A duplicate copy reached the local subscriber and was absorbed by the
    /// dedup window instead of being delivered again (recovery mode only:
    /// crash replay and NACK re-sends legitimately produce extra copies).
    /// Accounting only — the auditor counts these as benign.
    Suppress {
        /// The message whose duplicate copy was suppressed.
        packet: PacketId,
    },
}

/// Action sink handed to every callback; actions execute in push order.
#[derive(Debug, Default)]
pub struct Actions {
    items: Vec<Action>,
}

impl Actions {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Actions::default()
    }

    /// Queues a transmission to a neighbor.
    pub fn send(&mut self, to: NodeId, packet: Packet) {
        self.items.push(Action::Send { to, packet });
    }

    /// Queues a local delivery.
    pub fn deliver(&mut self, packet: PacketId) {
        self.items.push(Action::Deliver { packet });
    }

    /// Queues a timer.
    pub fn set_timer(&mut self, at: SimTime, key: TimerKey) {
        self.items.push(Action::SetTimer { at, key });
    }

    /// Queues a give-up notice.
    pub fn give_up(&mut self, packet: PacketId, destination: NodeId) {
        self.items.push(Action::GiveUp {
            packet,
            destination,
        });
    }

    /// Queues a duplicate-suppression notice.
    pub fn suppress(&mut self, packet: PacketId) {
        self.items.push(Action::Suppress { packet });
    }

    /// Drains the queued actions (runtime-side).
    pub fn drain(&mut self) -> impl Iterator<Item = Action> + '_ {
        self.items.drain(..)
    }

    /// Number of queued actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no actions are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Forwarding logic for every broker in the overlay.
///
/// One strategy value serves all nodes; each callback names the acting node
/// and must only use that node's local knowledge (plus whatever the strategy
/// legitimately precomputed in [`setup`](RoutingStrategy::setup)).
pub trait RoutingStrategy {
    /// Short human-readable name (used in reports).
    fn name(&self) -> &'static str;

    /// Called once before the run starts.
    fn setup(&mut self, ctx: &SetupContext<'_>);

    /// The broker `node` publishes a fresh message, already wrapped in a
    /// packet whose `destinations` are the topic's subscribers.
    fn on_publish(&mut self, node: NodeId, packet: Packet, now: SimTime, out: &mut Actions);

    /// A data packet arrived at `node` from neighbor `from` (the runtime has
    /// already returned the hop-by-hop ACK to `from`).
    fn on_packet(
        &mut self,
        node: NodeId,
        from: NodeId,
        packet: Packet,
        now: SimTime,
        out: &mut Actions,
    );

    /// The hop-by-hop ACK for a packet `node` earlier sent to `to` arrived.
    /// `packet` is the copy as it was sent (including its `tag`).
    fn on_ack(
        &mut self,
        node: NodeId,
        to: NodeId,
        packet: &Packet,
        now: SimTime,
        out: &mut Actions,
    );

    /// A timer set earlier by `node` fired.
    fn on_timer(&mut self, node: NodeId, key: TimerKey, now: SimTime, out: &mut Actions);

    /// Fresh monitoring estimates arrived (every monitoring interval —
    /// 5 minutes in the paper). Default: ignore.
    fn on_monitor(&mut self, estimates: &LinkEstimates, now: SimTime) {
        let _ = (estimates, now);
    }

    /// A batch of membership deltas from the runtime's failure detector
    /// (broker churn only): joins, announced leaves, confirmed deaths and
    /// refuted suspicions, in detection order. Membership-aware strategies
    /// repair their routing state here; everyone else ignores it. Default:
    /// ignore.
    fn on_membership(&mut self, deltas: &[MembershipDelta], now: SimTime) {
        let _ = (deltas, now);
    }

    /// A batch of membership deltas whose rumors finished their epidemic
    /// spread: with gossip dissemination armed, the runtime routes
    /// detector output through the gossip overlay and delivers it here
    /// only once every present broker has learned it (convergence
    /// gating), in rumor-submission order. Strategies apply them exactly
    /// like [`on_membership`](Self::on_membership) deltas — the
    /// difference is *when* they arrive, not what they mean. Default:
    /// ignore.
    fn on_gossip(&mut self, deltas: &[MembershipDelta], now: SimTime) {
        let _ = (deltas, now);
    }

    /// Periodic housekeeping tick for broker `node` (driven by the chaos
    /// epoch clock, once per epoch per live node). Recovery-capable
    /// strategies run their gap-detection sweep here; everyone else ignores
    /// it. Default: ignore.
    fn on_tick(&mut self, node: NodeId, now: SimTime, out: &mut Actions) {
        let _ = (node, now, out);
    }

    /// Broker `node` restarted after a crash (chaos crash-restart model):
    /// all of its volatile, in-flight router state is gone. Strategies
    /// holding per-broker packet state must discard `node`'s share of it;
    /// durable state (routing tables, subscriber delivery records) survives.
    /// Default: ignore (stateless strategies have nothing to lose).
    fn on_restart(&mut self, node: NodeId, now: SimTime, out: &mut Actions) {
        let _ = (node, now, out);
    }
}

/// Processing slack added to every ACK timeout so that an ACK arriving at
/// exactly the round-trip time is not raced by its own timer (and to absorb
/// small under-estimates of `α` from online monitoring).
pub const ACK_TIMEOUT_SLACK: SimDuration = SimDuration::from_millis(1);

/// Helper: the ACK timeout for a link with expected one-way delay `alpha`:
/// `factor × α` plus [`ACK_TIMEOUT_SLACK`].
#[must_use]
pub fn ack_timeout(alpha: SimDuration, params: &RunParams) -> SimDuration {
    alpha.mul_f64(params.ack_timeout_factor) + ACK_TIMEOUT_SLACK
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicId;

    #[test]
    fn actions_preserve_push_order() {
        let mut a = Actions::new();
        assert!(a.is_empty());
        let pkt = Packet::new(
            PacketId::new(1),
            TopicId::new(0),
            NodeId::new(0),
            SimTime::ZERO,
            vec![NodeId::new(1)],
        );
        a.deliver(pkt.id);
        a.send(NodeId::new(1), pkt.clone());
        a.set_timer(
            SimTime::from_millis(5),
            TimerKey {
                packet: pkt.id,
                tag: 9,
            },
        );
        a.give_up(pkt.id, NodeId::new(1));
        a.suppress(pkt.id);
        assert_eq!(a.len(), 5);
        let kinds: Vec<&'static str> = a
            .drain()
            .map(|act| match act {
                Action::Deliver { .. } => "deliver",
                Action::Send { .. } => "send",
                Action::SetTimer { .. } => "timer",
                Action::GiveUp { .. } => "giveup",
                Action::Suppress { .. } => "suppress",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["deliver", "send", "timer", "giveup", "suppress"]
        );
        assert!(a.is_empty());
    }

    #[test]
    fn default_params_match_paper() {
        let p = RunParams::default();
        assert_eq!(p.m, 1);
        assert!((p.ack_timeout_factor - 1.0).abs() < f64::EPSILON);
        assert_eq!(p.horizon, SimDuration::MAX);
    }

    #[test]
    fn ack_timeout_scales_alpha_plus_slack() {
        let p = RunParams {
            m: 1,
            ack_timeout_factor: 2.0,
            horizon: SimDuration::MAX,
        };
        assert_eq!(
            ack_timeout(SimDuration::from_millis(30), &p),
            SimDuration::from_millis(61)
        );
        assert_eq!(
            ack_timeout(SimDuration::from_millis(30), &RunParams::default()),
            SimDuration::from_millis(31)
        );
    }
}
