//! Capacity planning with the analytic layer: before a single message is
//! published, DCRD's routing tables already predict each subscription's
//! expected delay and delivery probability (`⟨d_P, r_P⟩`). This example
//! checks a proposed deployment's subscriptions against their requirements
//! analytically — then validates the verdicts against a simulation run.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use dcrd::core::analysis::predict_workload;
use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::net::diagnostics::{distance_summary, DistanceSummary};
use dcrd::net::estimate::analytic_estimates;
use dcrd::net::failure::{FailureModel, LinkFailureModel};
use dcrd::net::loss::LossModel;
use dcrd::net::paths::Metric;
use dcrd::net::topology::{random_connected, DelayRange};
use dcrd::pubsub::runtime::{OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::workload::{Workload, WorkloadConfig};
use dcrd::sim::rng::rng_for;
use dcrd::sim::SimDuration;

fn main() {
    let seed = 404;
    let mut rng = rng_for(seed, "capacity");
    let pf = 0.06;
    let pl = 1e-4;

    // A proposed deployment: 24 brokers, degree 6, aggressive 2x deadlines.
    let topo = random_connected(24, 6, DelayRange::PAPER, &mut rng);
    let workload = Workload::generate(
        &topo,
        &WorkloadConfig {
            num_topics: 8,
            deadline_factor: 2.0,
            ..WorkloadConfig::PAPER
        },
        &mut rng,
    );

    let DistanceSummary { diameter, mean, .. } = distance_summary(&topo, Metric::Delay);
    println!(
        "overlay: 24 brokers, degree 6 — delay diameter {:.0} ms, mean shortest delay {:.0} ms\n",
        diameter.unwrap_or(0) as f64 / 1000.0,
        mean / 1000.0
    );

    // Analytic pass: what do the routing tables promise?
    let estimates = analytic_estimates(&topo, pf, pl);
    let predictions = predict_workload(&topo, &estimates, 1, &workload, &DcrdConfig::default());
    let promised = predictions.iter().filter(|p| p.expected_on_time).count();
    println!(
        "analytic check at Pf = {pf}: {promised}/{} subscriptions expected on time",
        predictions.len()
    );
    for p in predictions.iter().take(5) {
        println!(
            "  {} {}→{}: requirement {}, expected delay {}, r = {:.4} → {}",
            p.topic,
            p.publisher,
            p.subscriber,
            p.requirement,
            p.expected_delay
                .map_or_else(|| "∞".to_string(), |d| d.to_string()),
            p.expected_delivery_ratio,
            if p.expected_on_time { "OK" } else { "AT RISK" }
        );
    }

    // Validation pass: simulate 5 minutes and compare.
    let failure = FailureModel::links_only(LinkFailureModel::new(pf, seed ^ 0xCAFE));
    let config = RuntimeConfig::paper(SimDuration::from_secs(300), seed);
    let log = OverlayRuntime::new(&topo, &workload, failure, LossModel::new(pl), config)
        .run(&mut DcrdStrategy::new(DcrdConfig::default()));
    println!(
        "\nsimulated 5 minutes: delivery {:.2}%, on-time {:.2}% — the analytic pass is a sound \
         lower bound\n(upstream rerouting and cross-epoch retries only add delivery chances).",
        log.delivery_ratio() * 100.0,
        log.qos_delivery_ratio() * 100.0
    );
}
