//! `analyzer.toml`: the checked-in violation baseline plus v2 policy.
//!
//! The file holds three kinds of sections:
//!
//! * `[[allow]]` — the violation baseline: each entry names a rule, a
//!   file, a distinguishing substring of the offending line, and a
//!   reason. Entries are line-content based (not line-number based) so
//!   unrelated edits above a suppressed site do not invalidate them.
//! * `[layers]` — the crate layering (`LAYER001`): an `order` string of
//!   crate directory names from lowest to highest layer, `<` separating
//!   layers and `|` separating same-layer peers. A crate may only depend
//!   on crates in strictly lower layers.
//! * `[pure]` — sans-io exemptions (`PURE001-003`): `exempt` lists
//!   `,`-separated workspace-relative path prefixes (e.g. the future
//!   real-transport crate) where ambient IO is sanctioned.
//!
//! The parser is a deliberate TOML subset (array-of-tables and tables of
//! string key/values) so the analyzer stays dependency-free;
//! `--write-baseline` emits exactly the `[[allow]]` subset.

use crate::rules::Diagnostic;

/// One suppressed legacy violation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule id being suppressed (`DET001` …).
    pub rule: String,
    /// Workspace-relative path of the file.
    pub path: String,
    /// Substring of the offending (trimmed) source line.
    pub contains: String,
    /// Why the violation is allowed to stay.
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry suppresses `diag`.
    #[must_use]
    pub fn matches(&self, diag: &Diagnostic) -> bool {
        self.rule == diag.rule && self.path == diag.path && diag.snippet.contains(&self.contains)
    }
}

/// The parsed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// The `[[allow]]` entries, in file order.
    pub allows: Vec<AllowEntry>,
}

/// The fully parsed `analyzer.toml`: baseline plus v2 policy sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalyzerConfig {
    /// The `[[allow]]` baseline.
    pub baseline: Baseline,
    /// `[layers] order` parsed into groups, lowest layer first. Empty
    /// when the section is absent (disables `LAYER001`).
    pub layer_order: Vec<Vec<String>>,
    /// `[pure] exempt` path prefixes where the purity rules stay quiet.
    pub pure_exempt: Vec<String>,
}

#[derive(PartialEq)]
enum Section {
    None,
    Allow,
    Layers,
    Pure,
}

impl AnalyzerConfig {
    /// Parses the `analyzer.toml` subset. Errors name the offending line.
    pub fn parse(text: &str) -> Result<AnalyzerConfig, String> {
        let mut cfg = AnalyzerConfig::default();
        let mut section = Section::None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line {
                "[[allow]]" => {
                    cfg.baseline.allows.push(AllowEntry::default());
                    section = Section::Allow;
                    continue;
                }
                "[layers]" => {
                    section = Section::Layers;
                    continue;
                }
                "[pure]" => {
                    section = Section::Pure;
                    continue;
                }
                _ if line.starts_with('[') => {
                    return Err(format!("line {}: unknown section `{line}`", idx + 1));
                }
                _ => {}
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = \"value\"`", idx + 1));
            };
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("line {}: value must be a quoted string", idx + 1))?;
            match (&section, key.trim()) {
                (Section::Allow, "rule" | "path" | "contains" | "reason") => {
                    let entry = cfg
                        .baseline
                        .allows
                        .last_mut()
                        .ok_or("no open [[allow]] entry")?;
                    match key.trim() {
                        "rule" => entry.rule = value.to_string(),
                        "path" => entry.path = value.to_string(),
                        "contains" => entry.contains = value.to_string(),
                        _ => entry.reason = value.to_string(),
                    }
                }
                (Section::Layers, "order") => {
                    cfg.layer_order = value
                        .split('<')
                        .map(|layer| {
                            layer
                                .split('|')
                                .map(|c| c.trim().to_string())
                                .filter(|c| !c.is_empty())
                                .collect::<Vec<_>>()
                        })
                        .filter(|l: &Vec<String>| !l.is_empty())
                        .collect();
                }
                (Section::Pure, "exempt") => {
                    cfg.pure_exempt = value
                        .split(',')
                        .map(|p| p.trim().to_string())
                        .filter(|p| !p.is_empty())
                        .collect();
                }
                (Section::None, other) => {
                    return Err(format!("line {}: key `{other}` outside a section", idx + 1));
                }
                (_, other) => {
                    return Err(format!("line {}: unknown key `{other}`", idx + 1));
                }
            }
        }
        for (i, e) in cfg.baseline.allows.iter().enumerate() {
            if e.rule.is_empty() || e.path.is_empty() || e.contains.is_empty() {
                return Err(format!(
                    "allow entry {} is missing rule/path/contains",
                    i + 1
                ));
            }
        }
        Ok(cfg)
    }

    /// The layer index of crate directory `krate`, if listed.
    #[must_use]
    pub fn layer_of(&self, krate: &str) -> Option<usize> {
        self.layer_order
            .iter()
            .position(|layer| layer.iter().any(|c| c == krate))
    }
}

impl Baseline {
    /// Parses just the `[[allow]]` baseline out of an `analyzer.toml`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        AnalyzerConfig::parse(text).map(|c| c.baseline)
    }

    /// Renders diagnostics as `[[allow]]` entries (`--write-baseline`).
    #[must_use]
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut out = String::new();
        for d in diags {
            out.push_str("[[allow]]\n");
            out.push_str(&format!("rule = \"{}\"\n", d.rule));
            out.push_str(&format!("path = \"{}\"\n", d.path));
            out.push_str(&format!("contains = \"{}\"\n", d.snippet.replace('"', "'")));
            out.push_str("reason = \"TODO: justify or fix\"\n\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line: 1,
            col: 1,
            snippet: snippet.to_string(),
            note: String::new(),
        }
    }

    #[test]
    fn parses_allow_entries() {
        let text = "# comment\n[[allow]]\nrule = \"DET001\"\npath = \"crates/core/src/x.rs\"\ncontains = \"HashMap\"\nreason = \"legacy\"\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.allows.len(), 1);
        assert_eq!(b.allows[0].rule, "DET001");
        assert!(b.allows[0].matches(&diag(
            "DET001",
            "crates/core/src/x.rs",
            "let m: HashMap<u32, u32> = x;"
        )));
        assert!(!b.allows[0].matches(&diag(
            "DET001",
            "crates/core/src/y.rs",
            "let m: HashMap<u32, u32> = x;"
        )));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Baseline::parse("[weird]\n").is_err());
        assert!(Baseline::parse("rule = \"X\"\n").is_err());
        assert!(Baseline::parse("[[allow]]\nrule = unquoted\n").is_err());
        assert!(Baseline::parse("[[allow]]\nrule = \"X\"\n").is_err()); // incomplete
        assert!(Baseline::parse("[[allow]]\nnope = \"X\"\n").is_err());
    }

    #[test]
    fn empty_baseline_is_fine() {
        let b = Baseline::parse("# nothing suppressed\n").expect("parses");
        assert!(b.allows.is_empty());
    }

    #[test]
    fn render_round_trips_through_parse() {
        let d = diag("SAFE001", "crates/core/src/x.rs", "x.unwrap();");
        let text = Baseline::render(std::slice::from_ref(&d));
        let b = Baseline::parse(&text).expect("rendered baseline parses");
        assert_eq!(b.allows.len(), 1);
        assert!(b.allows[0].matches(&d));
    }
}
