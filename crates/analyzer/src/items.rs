//! Lightweight item extraction on top of the masked lexer.
//!
//! The v2 graph passes (PURE/PANIC/LAYER) need to know *which function*
//! a pattern occurs in and *who calls whom* — per-file substring scans
//! cannot answer either. This module parses the masked, test-stripped
//! source (see [`crate::mask`]) into a flat list of items:
//!
//! * `fn` items, with their enclosing `impl`/`trait` owner type, module
//!   path, visibility, and exact body byte-span;
//! * `use` declarations (raw path text, for the purity rules);
//! * inline and file `mod` declarations (for the module graph).
//!
//! Masked input makes the parser robust by construction: braces, quotes
//! and item keywords inside comments, strings and `#[cfg(test)]` regions
//! were already blanked, so brace matching and keyword scans cannot be
//! fooled by literals. The parser is intentionally approximate where the
//! rules do not need precision (e.g. generic bounds are skipped, not
//! modeled) but exact where they do (body spans, owner types, names).

/// One parsed `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` type or `trait` name, if any.
    pub owner: Option<String>,
    /// Module path inside the file (inline `mod` nesting), outermost first.
    pub module: Vec<String>,
    /// Whether the declaration carries any `pub` qualifier.
    pub is_pub: bool,
    /// Byte offset of the `fn` keyword in the (masked) source.
    pub offset: usize,
    /// Byte span of the body including braces; `None` for a bodiless
    /// trait-method declaration.
    pub body: Option<(usize, usize)>,
}

/// One `use` declaration, with whitespace collapsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// Byte offset of the `use` keyword.
    pub offset: usize,
    /// The path text between `use` and `;`, single-spaced.
    pub path: String,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// `use` declarations, in source order.
    pub uses: Vec<UseDecl>,
    /// Names declared by `mod name;` (file modules).
    pub file_mods: Vec<String>,
}

#[derive(Debug)]
enum Scope {
    Mod(String),
    Impl(String),
    Trait(String),
    /// Index into `FileItems::fns` whose body this scope is.
    Fn(usize),
    Other,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parses `masked` (output of `mask_source` + `strip_test_regions`).
#[must_use]
pub fn parse_items(masked: &str) -> FileItems {
    let bytes = masked.as_bytes();
    let mut out = FileItems::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Scope> = None;
    // `pub` seen since the last item boundary (`;`, `{`, `}`).
    let mut saw_pub = false;
    // `[...]` nesting, so the `;` inside `-> [u8; 4]` or `[0u8; N]` is
    // not mistaken for an item boundary.
    let mut square = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if is_ident(b) && (i == 0 || !is_ident(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && is_ident(bytes[i]) {
                i += 1;
            }
            match &masked[start..i] {
                "pub" => saw_pub = true,
                "mod" => {
                    if let Some((name, after)) = read_ident(bytes, masked, i) {
                        // `mod name {` opens an inline module; `mod name;`
                        // declares a file module.
                        match next_significant(bytes, after) {
                            Some((b'{', _)) => pending = Some(Scope::Mod(name)),
                            Some((b';', _)) => out.file_mods.push(name),
                            _ => {}
                        }
                        i = after;
                    }
                }
                "impl" => {
                    let brace = find_byte_at_depth0(bytes, i, b'{').unwrap_or(bytes.len());
                    pending = Some(Scope::Impl(impl_type_name(&masked[i..brace])));
                    i = brace;
                }
                "trait" => {
                    if let Some((name, after)) = read_ident(bytes, masked, i) {
                        pending = Some(Scope::Trait(name));
                        i = after;
                    }
                }
                "fn" => {
                    if let Some((name, after)) = read_ident(bytes, masked, i) {
                        let owner = scopes.iter().rev().find_map(|s| match s {
                            Scope::Impl(t) | Scope::Trait(t) => Some(t.clone()),
                            _ => None,
                        });
                        let module = scopes
                            .iter()
                            .filter_map(|s| match s {
                                Scope::Mod(m) => Some(m.clone()),
                                _ => None,
                            })
                            .collect();
                        out.fns.push(FnItem {
                            name,
                            owner,
                            module,
                            is_pub: saw_pub,
                            offset: start,
                            body: None,
                        });
                        pending = Some(Scope::Fn(out.fns.len() - 1));
                        i = after;
                    }
                    // `fn(` with no name is a fn-pointer type: ignore.
                }
                "use" => {
                    let end = find_byte_at_depth0(bytes, i, b';').unwrap_or(bytes.len());
                    let path: String = masked[i..end]
                        .split_whitespace()
                        .collect::<Vec<_>>()
                        .join(" ");
                    out.uses.push(UseDecl {
                        offset: start,
                        path,
                    });
                    i = end;
                }
                _ => {}
            }
            continue;
        }
        match b {
            b'{' => {
                let scope = pending.take().unwrap_or(Scope::Other);
                if let Scope::Fn(idx) = scope {
                    out.fns[idx].body = Some((i, i)); // end patched on pop
                }
                scopes.push(scope);
                saw_pub = false;
            }
            b'}' => {
                if let Some(Scope::Fn(idx)) = scopes.pop() {
                    if let Some((open, _)) = out.fns[idx].body {
                        out.fns[idx].body = Some((open, i + 1));
                    }
                }
                saw_pub = false;
            }
            b';' if square == 0 => {
                // A bodiless `fn` declaration (trait method) ends here.
                pending = None;
                saw_pub = false;
            }
            b'[' => square += 1,
            b']' => square = (square - 1).max(0),
            _ => {}
        }
        i += 1;
    }
    out
}

/// Reads the next identifier after `from`, skipping whitespace. Returns
/// `(name, index_after)`.
fn read_ident(bytes: &[u8], masked: &str, from: usize) -> Option<(String, usize)> {
    let mut i = from;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    let start = i;
    while i < bytes.len() && is_ident(bytes[i]) {
        i += 1;
    }
    (i > start).then(|| (masked[start..i].to_string(), i))
}

/// The next non-whitespace byte at or after `from`, with its index.
fn next_significant(bytes: &[u8], from: usize) -> Option<(u8, usize)> {
    let mut i = from;
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some((bytes[i], i));
        }
        i += 1;
    }
    None
}

/// First occurrence of `target` at angle/paren/bracket depth 0, starting
/// from `from`. Used to find the `{` that opens an impl block (skipping
/// generic bounds which may contain braces only inside const generics —
/// rare enough to ignore) and the `;` ending a `use`.
fn find_byte_at_depth0(bytes: &[u8], from: usize, target: u8) -> Option<usize> {
    let mut angle = 0i32;
    let mut round = 0i32;
    let mut square = 0i32;
    let mut i = from;
    while i < bytes.len() {
        let b = bytes[i];
        if b == target && angle <= 0 && round == 0 && square == 0 {
            return Some(i);
        }
        match b {
            b'<' => angle += 1,
            b'>' if i > 0 && bytes[i - 1] != b'-' => angle -= 1, // `->` is not a close
            b'(' => round += 1,
            b')' => round -= 1,
            b'[' => square += 1,
            b']' => square -= 1,
            _ => {}
        }
        i += 1;
    }
    None
}

/// The self-type name of an `impl` header (the text between `impl` and
/// `{`): `impl<T> Trait for Type<T>` → `Type`; `impl Type` → `Type`.
fn impl_type_name(header: &str) -> String {
    let header = header.strip_prefix("impl").unwrap_or(header);
    // Skip the generic parameter list, if any.
    let header = skip_leading_generics(header);
    let after_for = match split_on_word(header, "for") {
        Some((_, rest)) => rest,
        None => header,
    };
    let after_for = match split_on_word(after_for, "where") {
        Some((head, _)) => head,
        None => after_for,
    };
    first_type_segment(after_for)
}

/// Drops a leading `<...>` (balanced) from `s`.
fn skip_leading_generics(s: &str) -> &str {
    let t = s.trim_start();
    if !t.starts_with('<') {
        return t;
    }
    let mut depth = 0i32;
    for (i, b) in t.bytes().enumerate() {
        match b {
            b'<' => depth += 1,
            b'>' if i > 0 && t.as_bytes()[i - 1] != b'-' => {
                depth -= 1;
                if depth == 0 {
                    return &t[i + 1..];
                }
            }
            _ => {}
        }
    }
    t
}

/// Splits `s` on the first whole-word occurrence of `word` at angle
/// depth 0.
fn split_on_word<'a>(s: &'a str, word: &str) -> Option<(&'a str, &'a str)> {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i + word.len() <= bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] != b'-' => depth -= 1,
            _ => {}
        }
        if depth == 0
            && s[i..].starts_with(word)
            && (i == 0 || !is_ident(bytes[i - 1]))
            && (i + word.len() >= bytes.len() || !is_ident(bytes[i + word.len()]))
        {
            return Some((&s[..i], &s[i + word.len()..]));
        }
        i += 1;
    }
    None
}

/// The last path segment of the first type in `s`, generics stripped:
/// `&mut crate::router::Router<'a>` → `Router`.
fn first_type_segment(s: &str) -> String {
    let s = s.trim().trim_start_matches(['&', '*']).trim_start();
    let s = s.strip_prefix("mut ").unwrap_or(s).trim_start();
    let s = s.strip_prefix("dyn ").unwrap_or(s).trim_start();
    // Cut at the generic argument list of the type itself.
    let head = match s.find('<') {
        Some(p) => &s[..p],
        None => s,
    };
    head.trim()
        .rsplit("::")
        .next()
        .unwrap_or(head)
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::{mask_source, strip_test_regions};

    fn parse(src: &str) -> FileItems {
        parse_items(&strip_test_regions(&mask_source(src)))
    }

    #[test]
    fn extracts_free_and_method_fns_with_owners() {
        let src = r#"
            pub fn free(x: u32) -> u32 { x + 1 }
            struct S;
            impl S {
                pub(crate) fn method(&self) { helper(); }
                fn private_method(&self) {}
            }
            impl std::fmt::Display for S {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
            trait T {
                fn required(&self);
                fn defaulted(&self) { self.required(); }
            }
        "#;
        let items = parse(src);
        let names: Vec<(&str, Option<&str>, bool)> = items
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, true),
                ("method", Some("S"), true),
                ("private_method", Some("S"), false),
                ("fmt", Some("S"), false),
                ("required", Some("T"), false),
                ("defaulted", Some("T"), false),
            ]
        );
        // The bodiless trait method has no body span; the others do.
        assert!(items.fns[4].body.is_none());
        assert!(items.fns[5].body.is_some());
    }

    #[test]
    fn impl_headers_resolve_to_the_self_type() {
        for (header, ty) in [
            ("impl Router {", "Router"),
            ("impl<'a> Router<'a> {", "Router"),
            ("impl RoutingStrategy for Router {", "Router"),
            ("impl<T: Clone> Wrapper<T> {", "Wrapper"),
            (
                "impl Iterator for paths::Walker where u32: Copy {",
                "Walker",
            ),
            ("impl From<u32> for NodeId {", "NodeId"),
        ] {
            let src = format!("{header} fn probe(&self) {{}} }}");
            let items = parse(&src);
            assert_eq!(items.fns[0].owner.as_deref(), Some(ty), "header: {header}");
        }
    }

    #[test]
    fn modules_nest_and_file_mods_are_recorded() {
        let src = "mod outer { mod inner { fn deep() {} } }\nmod filemod;\nfn top() {}";
        let items = parse(src);
        assert_eq!(items.fns[0].module, vec!["outer", "inner"]);
        assert!(items.fns[1].module.is_empty());
        assert_eq!(items.file_mods, vec!["filemod"]);
    }

    #[test]
    fn use_decls_are_captured_and_collapsed() {
        let src = "use std::collections::BTreeMap;\nuse std::sync::{\n    Arc,\n};\nfn f() {}";
        let items = parse(src);
        assert_eq!(items.uses.len(), 2);
        assert_eq!(items.uses[0].path, "std::collections::BTreeMap");
        assert_eq!(items.uses[1].path, "std::sync::{ Arc, }");
    }

    #[test]
    fn body_spans_cover_the_braces() {
        let src = "fn f() { let x = { 1 }; }";
        let items = parse(src);
        let (open, close) = items.fns[0].body.expect("body span");
        assert_eq!(&src[open..close], "{ let x = { 1 }; }");
    }

    #[test]
    fn fn_pointer_types_and_test_modules_are_ignored() {
        let src =
            "type Cb = fn(u32) -> u32;\n#[cfg(test)]\nmod tests { fn hidden() {} }\nfn live() {}";
        let items = parse(src);
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live"]);
    }

    #[test]
    fn return_types_with_brackets_do_not_confuse_body_detection() {
        let src = "fn f() -> [u8; 4] { [0; 4] }\nfn g(x: (u32, u32)) -> (u32, u32) { x }";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        assert!(items.fns.iter().all(|f| f.body.is_some()));
    }
}
