//! Micro-benchmarks of the computational kernels underneath DCRD.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcrd_core::ordering::optimal_order;
use dcrd_core::params::{combine, Candidate};
use dcrd_core::propagation::compute_tables;
use dcrd_core::reliability::m_transmission_stats;
use dcrd_core::DcrdConfig;
use dcrd_net::estimate::analytic_estimates;
use dcrd_net::paths::{dijkstra, k_shortest_paths, Metric};
use dcrd_net::topology::{full_mesh, random_connected, DelayRange};
use dcrd_net::NodeId;
use dcrd_sim::rng::rng_for;
use dcrd_sim::{EventQueue, SimTime};
use std::hint::black_box;

fn bench_equations(c: &mut Criterion) {
    let mut group = c.benchmark_group("equations");
    group.bench_function("eq1_m_transmission_stats_m4", |b| {
        b.iter(|| black_box(m_transmission_stats(black_box(30_000.0), black_box(0.9), 4)))
    });

    let candidates: Vec<Candidate> = (0..16)
        .map(|i| Candidate {
            neighbor: NodeId::new(i),
            d: 10_000.0 + f64::from(i) * 997.0,
            r: 0.5 + f64::from(i % 7) * 0.07,
        })
        .collect();
    group.bench_function("eq3_combine_16_candidates", |b| {
        b.iter(|| black_box(combine(black_box(&candidates))))
    });
    group.bench_function("theorem1_sort_16_candidates", |b| {
        b.iter_batched(
            || candidates.clone(),
            |mut cs| {
                optimal_order(&mut cs);
                black_box(cs)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    for n in [20usize, 80] {
        let topo = random_connected(n, 8, DelayRange::PAPER, &mut rng_for(1, "bench"));
        group.bench_with_input(BenchmarkId::new("dijkstra", n), &topo, |b, t| {
            b.iter(|| black_box(dijkstra(t, t.node(0), Metric::Delay)))
        });
        group.bench_with_input(BenchmarkId::new("yen_k5", n), &topo, |b, t| {
            b.iter(|| {
                black_box(k_shortest_paths(
                    t,
                    t.node(0),
                    t.node(n / 2),
                    5,
                    Metric::Delay,
                ))
            })
        });
    }
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    group.sample_size(20);
    for (name, topo) in [
        (
            "mesh20",
            full_mesh(20, DelayRange::PAPER, &mut rng_for(2, "bench")),
        ),
        (
            "deg8_80",
            random_connected(80, 8, DelayRange::PAPER, &mut rng_for(3, "bench")),
        ),
    ] {
        let estimates = analytic_estimates(&topo, 0.06, 1e-4);
        let config = DcrdConfig::default();
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(compute_tables(
                    &topo,
                    &estimates,
                    1,
                    topo.node(0),
                    topo.node(topo.num_nodes() - 1),
                    500_000.0,
                    &config,
                ))
            })
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    use bytes::Bytes;
    use dcrd_pubsub::codec::{decode_packet, encode_packet};
    use dcrd_pubsub::packet::{Packet, PacketBody, PacketId, PacketKind};
    use dcrd_pubsub::topic::TopicId;
    use dcrd_sim::SimTime;

    let packet = Packet::from_body(
        PacketBody::new(
            PacketId::new(7),
            TopicId::new(2),
            NodeId::new(0),
            SimTime::from_millis(1234),
            0,
            Bytes::from(vec![0xAB; 256]),
        ),
        PacketKind::Data,
        (1..9).map(NodeId::new).collect(),
        (0..12).map(NodeId::new).collect::<Vec<_>>().into(),
        None,
        42,
    );
    let encoded = encode_packet(&packet);
    let mut group = c.benchmark_group("codec");
    group.bench_function("encode_8dest_12hop_256B", |b| {
        b.iter(|| black_box(encode_packet(black_box(&packet))))
    });
    group.bench_function("decode_8dest_12hop_256B", |b| {
        b.iter(|| black_box(decode_packet(black_box(&encoded)).expect("valid")))
    });
    group.finish();
}

fn bench_disjoint(c: &mut Criterion) {
    use dcrd_net::disjoint::edge_disjoint_pair;
    let mut group = c.benchmark_group("disjoint_pairs");
    for n in [20usize, 80] {
        let topo = random_connected(n, 8, DelayRange::PAPER, &mut rng_for(4, "bench"));
        group.bench_with_input(BenchmarkId::new("bhandari", n), &topo, |b, t| {
            b.iter(|| {
                black_box(edge_disjoint_pair(
                    t,
                    t.node(0),
                    t.node(n / 2),
                    Metric::Delay,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("paper_top5", n), &topo, |b, t| {
            b.iter(|| black_box(dcrd_net::paths::multipath_pair(t, t.node(0), t.node(n / 2))))
        });
    }
    group.finish();
}

fn bench_path_membership(c: &mut Criterion) {
    use dcrd_net::NodeSet;
    use dcrd_pubsub::packet::PathRecord;

    let mut group = c.benchmark_group("path_membership");
    for n in [16u32, 64, 256] {
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        group.bench_with_input(
            BenchmarkId::new("nodeset_insert_contains", n),
            &nodes,
            |b, nodes| {
                b.iter(|| {
                    let mut set = NodeSet::new();
                    for &node in nodes {
                        set.insert(node);
                    }
                    let mut hits = 0usize;
                    for &node in nodes {
                        hits += usize::from(set.contains(node));
                    }
                    black_box(hits)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("path_record_visited", n),
            &nodes,
            |b, nodes| {
                let path: PathRecord = nodes.clone().into();
                b.iter(|| {
                    let mut hits = 0usize;
                    for &node in nodes {
                        hits += usize::from(path.contains(black_box(node)));
                    }
                    black_box(hits)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("path_record_merge", n),
            &nodes,
            |b, nodes| {
                // Two half-overlapping paths: the merge has to skip the shared
                // prefix and append only the novel suffix.
                let ours: PathRecord = nodes[..nodes.len() / 2].to_vec().into();
                let theirs: PathRecord = nodes[nodes.len() / 4..].to_vec().into();
                b.iter_batched(
                    || ours.clone(),
                    |mut p| {
                        p.merge(&theirs);
                        black_box(p)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_fanout(c: &mut Criterion) {
    use bytes::Bytes;
    use dcrd_pubsub::packet::{Packet, PacketBody, PacketId, PacketKind};
    use dcrd_pubsub::topic::TopicId;

    let packet = Packet::from_body(
        PacketBody::new(
            PacketId::new(9),
            TopicId::new(1),
            NodeId::new(0),
            SimTime::from_millis(50),
            3,
            Bytes::from(vec![0x5A; 1024]),
        ),
        PacketKind::Data,
        (1..9).map(NodeId::new).collect(),
        (0..12).map(NodeId::new).collect::<Vec<_>>().into(),
        None,
        7,
    );
    // Eight per-neighbor copies of a 1 KiB packet: the shared-body split
    // means this clones headers only, never the payload.
    c.bench_function("packet_fanout_8way_1KiB", |b| {
        b.iter(|| {
            let copies: Vec<Packet> = (1..9)
                .map(|i| packet.forward(NodeId::new(0), vec![NodeId::new(i)], u64::from(i)))
                .collect();
            black_box(copies)
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                // Pseudo-shuffled timestamps.
                q.schedule(
                    SimTime::from_micros(i.wrapping_mul(2_654_435_761) % 1_000_000_000),
                    i,
                );
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_equations,
    bench_graph,
    bench_propagation,
    bench_codec,
    bench_disjoint,
    bench_path_membership,
    bench_fanout,
    bench_event_queue
);
criterion_main!(benches);
