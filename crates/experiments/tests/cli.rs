//! End-to-end tests of the `dcrd-experiments` binary: argument handling,
//! figure execution, output files, and the `predict`/`run` subcommands.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dcrd-experiments"))
}

#[test]
fn help_succeeds_and_lists_figures() {
    let out = bin().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("fig2"));
    assert!(text.contains("ablation-ordering"));
    assert!(text.contains("predict"));
}

#[test]
fn chaos_smoke_reports_a_clean_audit() {
    let out = bin()
        .args(["chaos", "--quality", "smoke"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DCRD-hardened"));
    assert!(stdout.contains("DCRD-fixed"));
    assert!(stdout.contains("invariant auditor: 0 violation(s)"));
}

#[test]
fn unknown_figure_fails() {
    let out = bin().arg("fig99").output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn missing_figure_fails() {
    let out = bin().output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn bad_quality_fails() {
    let out = bin()
        .args(["fig2", "--quality", "bogus"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn fig2_smoke_writes_all_artifacts() {
    let dir = std::env::temp_dir().join(format!("dcrd-cli-test-{}", std::process::id()));
    let out = bin()
        .args(["fig2", "--quality", "smoke", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Delivery Ratio"));
    assert!(stdout.contains("DCRD"));
    for suffix in ["txt", "csv", "json"] {
        assert!(
            dir.join(format!("fig2.{suffix}")).exists(),
            "missing fig2.{suffix}"
        );
    }
    for metric in ["delivery", "qos", "traffic"] {
        let svg = dir.join(format!("fig2-{metric}.svg"));
        assert!(svg.exists(), "missing {}", svg.display());
        let content = std::fs::read_to_string(&svg).expect("readable");
        assert!(content.starts_with("<svg"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_reports_verdicts() {
    let out = bin()
        .args(["predict", "--nodes", "10", "--degree", "4", "--pf", "0.05"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict"));
    assert!(stdout.contains("subscriptions expected on time"));
}

#[test]
fn run_subcommand_prints_comparison() {
    let out = bin()
        .args([
            "run",
            "--nodes",
            "10",
            "--degree",
            "4",
            "--pf",
            "0.04",
            "--duration",
            "10",
            "--reps",
            "1",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["DCRD", "R-Tree", "D-Tree", "ORACLE", "Multipath"] {
        assert!(stdout.contains(name), "missing {name} in output");
    }
}

#[test]
fn run_subcommand_rejects_bad_flags() {
    let out = bin().args(["run", "--bogus", "1"]).output().expect("spawn");
    assert!(!out.status.success());
}
