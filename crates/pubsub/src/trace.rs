//! Per-transmission trace capture.
//!
//! When enabled ([`RuntimeConfig::capture_trace`]), the runtime records
//! every link transmission with its outcome, every local delivery and every
//! give-up. Traces make forwarding behavior inspectable: tests use them to
//! assert loop bounds and path validity, and the examples use them to
//! explain *why* a packet took the route it did.
//!
//! [`RuntimeConfig::capture_trace`]: crate::runtime::RuntimeConfig::capture_trace

use dcrd_net::NodeId;
use dcrd_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::packet::PacketId;

/// What happened to one link transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxOutcome {
    /// Arrived at the receiver after the link delay.
    Arrived,
    /// Swallowed by a failed link epoch.
    Blocked,
    /// Randomly lost (`Pl`).
    Lost,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A data transmission over one link.
    Send {
        /// When the transmission started.
        at: SimTime,
        /// Sending broker.
        from: NodeId,
        /// Receiving broker.
        to: NodeId,
        /// The message.
        packet: PacketId,
        /// Number of destinations carried by this copy.
        destinations: u32,
        /// The transmission's fate.
        outcome: TxOutcome,
    },
    /// A local delivery to a subscriber.
    Deliver {
        /// Delivery time.
        at: SimTime,
        /// The subscribing broker.
        node: NodeId,
        /// The message.
        packet: PacketId,
    },
    /// A strategy gave up on one `(message, subscriber)` pair.
    GiveUp {
        /// When the strategy gave up.
        at: SimTime,
        /// The broker that gave up.
        node: NodeId,
        /// The message.
        packet: PacketId,
        /// The abandoned subscriber.
        destination: NodeId,
    },
    /// A duplicate copy was absorbed by a subscriber's dedup window
    /// (recovery mode: crash replay or a NACK re-send arrived after the
    /// original delivery). Benign by construction — the auditor counts
    /// these separately from genuine duplicate deliveries.
    Suppress {
        /// When the duplicate was absorbed.
        at: SimTime,
        /// The subscribing broker.
        node: NodeId,
        /// The message.
        packet: PacketId,
    },
    /// A hop-by-hop ACK reached the original sender.
    Ack {
        /// When the ACK arrived.
        at: SimTime,
        /// The broker that acknowledged (the data receiver).
        from: NodeId,
        /// The broker the ACK reached (the data sender).
        to: NodeId,
        /// The message.
        packet: PacketId,
    },
    /// An overloaded broker shed a queued packet copy because its bounded
    /// service queue exceeded budget (delay-cognizant load shedding; see
    /// `RuntimeConfig::queue_limit`).
    Shed {
        /// When the packet was shed.
        at: SimTime,
        /// The overloaded broker.
        node: NodeId,
        /// The message.
        packet: PacketId,
    },
}

impl TraceEvent {
    /// The message this event concerns.
    #[must_use]
    pub fn packet(&self) -> PacketId {
        match *self {
            TraceEvent::Send { packet, .. }
            | TraceEvent::Deliver { packet, .. }
            | TraceEvent::GiveUp { packet, .. }
            | TraceEvent::Suppress { packet, .. }
            | TraceEvent::Ack { packet, .. }
            | TraceEvent::Shed { packet, .. } => packet,
        }
    }

    /// The event's timestamp.
    #[must_use]
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::Send { at, .. }
            | TraceEvent::Deliver { at, .. }
            | TraceEvent::GiveUp { at, .. }
            | TraceEvent::Suppress { at, .. }
            | TraceEvent::Ack { at, .. }
            | TraceEvent::Shed { at, .. } => at,
        }
    }
}

/// The complete trace of one run (only populated when capture is enabled).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one event (runtime-side).
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in chronological (recording) order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All `Send` events for one message, in order.
    #[must_use]
    pub fn sends_for(&self, packet: PacketId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { .. }) && e.packet() == packet)
            .collect()
    }

    /// The maximum number of times any single message traversed the same
    /// directed link (a forwarding-loop indicator: retransmissions and
    /// bounded rerouting keep it small, a livelock makes it explode).
    #[must_use]
    pub fn max_directed_edge_uses(&self) -> u32 {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<(PacketId, NodeId, NodeId), u32> = BTreeMap::new();
        for e in &self.events {
            if let TraceEvent::Send {
                from, to, packet, ..
            } = *e
            {
                *counts.entry((packet, from, to)).or_insert(0) += 1;
            }
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Counts transmissions per outcome: `(arrived, blocked, lost)`.
    #[must_use]
    pub fn outcome_counts(&self) -> (u64, u64, u64) {
        let mut arrived = 0;
        let mut blocked = 0;
        let mut lost = 0;
        for e in &self.events {
            if let TraceEvent::Send { outcome, .. } = e {
                match outcome {
                    TxOutcome::Arrived => arrived += 1,
                    TxOutcome::Blocked => blocked += 1,
                    TxOutcome::Lost => lost += 1,
                }
            }
        }
        (arrived, blocked, lost)
    }

    /// A 64-bit FNV-1a digest over the canonical encoding of every event,
    /// in recording order. Two runs of a deterministic simulation with the
    /// same seed must produce equal digests — the determinism regression
    /// tests compare this instead of diffing full traces.
    #[must_use]
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        for e in &self.events {
            match *e {
                TraceEvent::Send {
                    at,
                    from,
                    to,
                    packet,
                    destinations,
                    outcome,
                } => {
                    mix(1);
                    mix(at.as_micros());
                    mix(from.index() as u64);
                    mix(to.index() as u64);
                    mix(packet.raw());
                    mix(u64::from(destinations));
                    mix(match outcome {
                        TxOutcome::Arrived => 0,
                        TxOutcome::Blocked => 1,
                        TxOutcome::Lost => 2,
                    });
                }
                TraceEvent::Deliver { at, node, packet } => {
                    mix(2);
                    mix(at.as_micros());
                    mix(node.index() as u64);
                    mix(packet.raw());
                }
                TraceEvent::GiveUp {
                    at,
                    node,
                    packet,
                    destination,
                } => {
                    mix(3);
                    mix(at.as_micros());
                    mix(node.index() as u64);
                    mix(packet.raw());
                    mix(destination.index() as u64);
                }
                TraceEvent::Suppress { at, node, packet } => {
                    mix(4);
                    mix(at.as_micros());
                    mix(node.index() as u64);
                    mix(packet.raw());
                }
                TraceEvent::Ack {
                    at,
                    from,
                    to,
                    packet,
                } => {
                    mix(5);
                    mix(at.as_micros());
                    mix(from.index() as u64);
                    mix(to.index() as u64);
                    mix(packet.raw());
                }
                TraceEvent::Shed { at, node, packet } => {
                    mix(6);
                    mix(at.as_micros());
                    mix(node.index() as u64);
                    mix(packet.raw());
                }
            }
        }
        hash
    }

    /// Delivery times per message at one subscriber, if any.
    #[must_use]
    pub fn delivery_time(&self, packet: PacketId, node: NodeId) -> Option<SimTime> {
        self.events.iter().find_map(|e| match *e {
            TraceEvent::Deliver {
                at,
                node: n,
                packet: p,
            } if n == node && p == packet => Some(at),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(at_ms: u64, from: u32, to: u32, pkt: u64, outcome: TxOutcome) -> TraceEvent {
        TraceEvent::Send {
            at: SimTime::from_millis(at_ms),
            from: NodeId::new(from),
            to: NodeId::new(to),
            packet: PacketId::new(pkt),
            destinations: 1,
            outcome,
        }
    }

    #[test]
    fn records_and_queries() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.record(send(0, 0, 1, 7, TxOutcome::Arrived));
        t.record(send(5, 1, 2, 7, TxOutcome::Blocked));
        t.record(send(9, 1, 2, 7, TxOutcome::Lost));
        t.record(TraceEvent::Deliver {
            at: SimTime::from_millis(20),
            node: NodeId::new(2),
            packet: PacketId::new(7),
        });
        assert_eq!(t.len(), 4);
        assert_eq!(t.sends_for(PacketId::new(7)).len(), 3);
        assert_eq!(t.sends_for(PacketId::new(8)).len(), 0);
        assert_eq!(t.outcome_counts(), (1, 1, 1));
        assert_eq!(t.max_directed_edge_uses(), 2);
        assert_eq!(
            t.delivery_time(PacketId::new(7), NodeId::new(2)),
            Some(SimTime::from_millis(20))
        );
        assert_eq!(t.delivery_time(PacketId::new(7), NodeId::new(1)), None);
    }

    #[test]
    fn event_accessors() {
        let e = send(3, 0, 1, 9, TxOutcome::Arrived);
        assert_eq!(e.packet(), PacketId::new(9));
        assert_eq!(e.time(), SimTime::from_millis(3));
        let g = TraceEvent::GiveUp {
            at: SimTime::from_millis(4),
            node: NodeId::new(0),
            packet: PacketId::new(9),
            destination: NodeId::new(5),
        };
        assert_eq!(g.packet(), PacketId::new(9));
        assert_eq!(g.time(), SimTime::from_millis(4));
        let a = TraceEvent::Ack {
            at: SimTime::from_millis(6),
            from: NodeId::new(1),
            to: NodeId::new(0),
            packet: PacketId::new(9),
        };
        assert_eq!(a.packet(), PacketId::new(9));
        assert_eq!(a.time(), SimTime::from_millis(6));
    }

    #[test]
    fn acks_do_not_count_as_edge_uses() {
        let mut t = Trace::new();
        t.record(send(0, 0, 1, 7, TxOutcome::Arrived));
        t.record(TraceEvent::Ack {
            at: SimTime::from_millis(1),
            from: NodeId::new(1),
            to: NodeId::new(0),
            packet: PacketId::new(7),
        });
        assert_eq!(t.max_directed_edge_uses(), 1);
        assert_eq!(t.outcome_counts(), (1, 0, 0));
    }

    #[test]
    fn empty_trace_queries() {
        let t = Trace::new();
        assert_eq!(t.max_directed_edge_uses(), 0);
        assert_eq!(t.outcome_counts(), (0, 0, 0));
        assert!(t.events().is_empty());
    }
}
