//! The overlay packet.
//!
//! Per the paper (§III-D), each packet carries **both** the set of
//! destination subscribers it is currently responsible for and the record of
//! brokers that have been on its routing path. The path record serves two
//! purposes: loop avoidance (a broker never forwards to a broker already on
//! the path) and upstream rerouting (a broker that exhausts its sending list
//! reads its upstream hop out of the packet instead of keeping per-packet
//! state).
//!
//! # Hot-path layout
//!
//! Forwarding fans one packet out into many per-hop copies, so [`Packet`]
//! splits into an [`Arc`]-shared immutable [`PacketBody`] (message identity
//! and payload — identical across every copy) and a small mutable per-copy
//! header (destinations, path record, route, tag). [`Packet::forward`]
//! bumps the body's refcount instead of cloning the payload, and the
//! [`PathRecord`] keeps a bitset shadow of its nodes so loop checks are
//! O(1) instead of a linear scan.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use bytes::Bytes;
use dcrd_net::{NodeId, NodeSet};
use dcrd_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::topic::TopicId;

/// Identifier of a published message. Every copy/retransmission of the same
/// logical message shares one `PacketId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet id from a raw counter value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// The raw counter value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

/// What a packet is: application data or recovery control traffic.
///
/// NACKs travel through the same overlay links as data (they are packets
/// too — subject to loss, blocking and hop-by-hop ACKs), but strategies
/// route them toward the publisher instead of down the sending lists, and
/// the runtime never creates delivery expectations for them.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PacketKind {
    /// A copy of a published message.
    #[default]
    Data,
    /// A subscriber-side negative acknowledgement: `subscriber` detected
    /// that the listed per-(topic, publisher) sequence numbers never
    /// arrived and asks the nearest upstream custodian to re-send them.
    Nack {
        /// The subscriber requesting recovery.
        subscriber: NodeId,
        /// The missing sequence numbers, ascending.
        missing: Vec<u64>,
    },
}

/// The immutable identity of a published message, shared by every in-flight
/// copy via [`Arc`]. Forwarding a packet clones the header around this body
/// without touching the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketBody {
    /// The logical message this copy belongs to.
    pub id: PacketId,
    /// Topic the message was published on.
    pub topic: TopicId,
    /// The publishing broker.
    pub publisher: NodeId,
    /// When the message was published.
    pub published_at: SimTime,
    /// Per-(topic, publisher) publish sequence number (the publish round):
    /// the k-th message a publisher emits on a topic carries `seq = k`.
    /// Subscribers use it for gap detection and replay deduplication.
    #[serde(default)]
    pub seq: u64,
    /// Application payload.
    #[serde(skip)]
    pub payload: Bytes,
}

impl PacketBody {
    /// Assembles a body from its parts (codec decode, tests).
    #[must_use]
    pub fn new(
        id: PacketId,
        topic: TopicId,
        publisher: NodeId,
        published_at: SimTime,
        seq: u64,
        payload: Bytes,
    ) -> Self {
        PacketBody {
            id,
            topic,
            publisher,
            published_at,
            seq,
            payload,
        }
    }
}

/// A packet's routing-path record: the brokers that have carried this copy,
/// in order (revisits re-append, consecutive duplicates collapse), shadowed
/// by a [`NodeSet`] so membership queries — the router's loop-avoidance
/// check — are O(1).
///
/// Serializes as the plain ordered node list; the bitset is rebuilt on
/// deserialization.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<NodeId>", into = "Vec<NodeId>")]
pub struct PathRecord {
    nodes: Vec<NodeId>,
    seen: NodeSet,
}

impl PathRecord {
    /// An empty path.
    #[must_use]
    pub const fn new() -> Self {
        PathRecord {
            nodes: Vec::new(),
            seen: NodeSet::new(),
        }
    }

    /// Appends `node`, collapsing a consecutive duplicate (forwarding twice
    /// in a row from one broker keeps a single entry).
    pub fn push(&mut self, node: NodeId) {
        if self.nodes.last() != Some(&node) {
            self.nodes.push(node);
        }
        self.seen.insert(node);
    }

    /// Whether `node` appears anywhere on the path. O(1).
    #[inline]
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.seen.contains(node)
    }

    /// Appends every node of `other` not already on this path, preserving
    /// `other`'s order. Linear in `other` thanks to the bitset shadow.
    pub fn merge(&mut self, other: &PathRecord) {
        for &node in &other.nodes {
            if self.seen.insert(node) {
                self.nodes.push(node);
            }
        }
    }

    /// The ordered node list.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Iterates the ordered node list.
    pub fn iter(&self) -> std::slice::Iter<'_, NodeId> {
        self.nodes.iter()
    }

    /// The most recent path entry (the broker that physically sent this
    /// copy).
    #[must_use]
    pub fn last(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// Number of path entries (counting revisits).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the path has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Empties the record, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.seen.clear();
    }
}

/// Path equality is the ordered node list; the bitset shadow is derived.
impl PartialEq for PathRecord {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
    }
}

impl Eq for PathRecord {}

impl PartialEq<Vec<NodeId>> for PathRecord {
    fn eq(&self, other: &Vec<NodeId>) -> bool {
        &self.nodes == other
    }
}

impl PartialEq<[NodeId]> for PathRecord {
    fn eq(&self, other: &[NodeId]) -> bool {
        self.nodes == other
    }
}

/// Builds the record from an ordered node list **verbatim** (duplicates and
/// all — wire decode must round-trip exactly).
impl From<Vec<NodeId>> for PathRecord {
    fn from(nodes: Vec<NodeId>) -> Self {
        let seen = nodes.iter().copied().collect();
        PathRecord { nodes, seen }
    }
}

impl From<PathRecord> for Vec<NodeId> {
    fn from(path: PathRecord) -> Self {
        path.nodes
    }
}

impl<'a> IntoIterator for &'a PathRecord {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter()
    }
}

/// One in-flight copy of a published message: a shared [`PacketBody`] plus
/// this copy's mutable routing header.
///
/// The runtime treats most of this as opaque strategy state; it only uses
/// `id` (for the delivery log) and the `tag` echoed back in ACKs. The body
/// fields read through [`Deref`], so `packet.id`, `packet.seq` etc. work as
/// if they were inline; mutating the body goes through dedicated methods
/// ([`Packet::with_seq`]) since it may be shared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// The shared immutable message identity + payload.
    pub body: Arc<PacketBody>,
    /// Data or recovery control (see [`PacketKind`]).
    #[serde(default)]
    pub kind: PacketKind,
    /// Subscribers this copy is responsible for reaching.
    pub destinations: Vec<NodeId>,
    /// Brokers that have been on this copy's routing path, in order.
    pub path: PathRecord,
    /// Optional pinned source route (used by Multipath and tree baselines);
    /// `None` for strategies that pick hops dynamically.
    pub route: Option<Vec<NodeId>>,
    /// Strategy-private cookie echoed back in ACKs (e.g. a send sequence
    /// number); opaque to the runtime.
    pub tag: u64,
}

impl Deref for Packet {
    type Target = PacketBody;

    #[inline]
    fn deref(&self) -> &PacketBody {
        &self.body
    }
}

impl Packet {
    /// Creates a fresh packet for a newly published message.
    #[must_use]
    pub fn new(
        id: PacketId,
        topic: TopicId,
        publisher: NodeId,
        published_at: SimTime,
        destinations: Vec<NodeId>,
    ) -> Self {
        Packet {
            body: Arc::new(PacketBody::new(
                id,
                topic,
                publisher,
                published_at,
                0,
                Bytes::new(),
            )),
            kind: PacketKind::Data,
            destinations,
            path: PathRecord::new(),
            route: None,
            tag: 0,
        }
    }

    /// Assembles a packet around an existing body (codec decode, tests).
    #[must_use]
    pub fn from_body(
        body: PacketBody,
        kind: PacketKind,
        destinations: Vec<NodeId>,
        path: PathRecord,
        route: Option<Vec<NodeId>>,
        tag: u64,
    ) -> Self {
        Packet {
            body: Arc::new(body),
            kind,
            destinations,
            path,
            route,
            tag,
        }
    }

    /// Sets the publish sequence number (builder style). Copies the body
    /// only if it is already shared (it never is on a fresh packet).
    #[must_use]
    pub fn with_seq(mut self, seq: u64) -> Self {
        Arc::make_mut(&mut self.body).seq = seq;
        self
    }

    /// Creates a NACK asking the custodians of `(topic, publisher)` to
    /// re-send the `missing` sequence numbers to `subscriber`. The single
    /// destination is the publisher (the NACK's ultimate terminus); brokers
    /// relay it hop-by-hop toward that destination.
    #[must_use]
    pub fn nack(
        id: PacketId,
        topic: TopicId,
        publisher: NodeId,
        now: SimTime,
        subscriber: NodeId,
        missing: Vec<u64>,
    ) -> Self {
        Packet {
            body: Arc::new(PacketBody::new(id, topic, publisher, now, 0, Bytes::new())),
            kind: PacketKind::Nack {
                subscriber,
                missing,
            },
            destinations: vec![publisher],
            path: PathRecord::new(),
            route: None,
            tag: 0,
        }
    }

    /// Whether this packet is recovery control traffic.
    #[must_use]
    pub fn is_nack(&self) -> bool {
        matches!(self.kind, PacketKind::Nack { .. })
    }

    /// Whether `node` has already been on this copy's routing path. O(1).
    #[inline]
    #[must_use]
    pub fn visited(&self, node: NodeId) -> bool {
        self.path.contains(node)
    }

    /// The upstream hop of `node` for this packet: the entry immediately
    /// before `node`'s first occurrence on the path, or the last path entry
    /// when `node` has not been on the path yet. `None` when the path is
    /// empty (i.e. `node` is the publisher holding a fresh packet) or when
    /// `node` opens the path.
    #[must_use]
    pub fn upstream_of(&self, node: NodeId) -> Option<NodeId> {
        let path = self.path.as_slice();
        if !self.path.contains(node) {
            return path.last().copied();
        }
        match path.iter().position(|&n| n == node) {
            Some(0) | None => None,
            Some(i) => Some(path[i - 1]),
        }
    }

    /// A derived copy responsible for `destinations`, with `node` appended
    /// to the routing path — the packet a broker actually puts on the wire
    /// (§III-D, Algorithm 2 lines 20–21).
    ///
    /// The node is appended even when it already appears earlier (a packet
    /// rerouted back upstream revisits brokers): the *last* entry must
    /// always be the broker that physically sent this copy, which is what
    /// receivers read their upstream hop from, while loop avoidance only
    /// needs set membership. Consecutive duplicates are collapsed.
    ///
    /// Zero-copy: the payload-bearing body is shared, not cloned.
    #[must_use]
    pub fn forward(&self, node: NodeId, destinations: Vec<NodeId>, tag: u64) -> Packet {
        let mut path = self.path.clone();
        path.push(node);
        Packet {
            body: Arc::clone(&self.body),
            kind: self.kind.clone(),
            destinations,
            path,
            route: self.route.clone(),
            tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Packet {
        Packet::new(
            PacketId::new(1),
            TopicId::new(0),
            NodeId::new(0),
            SimTime::ZERO,
            vec![NodeId::new(5), NodeId::new(6)],
        )
    }

    #[test]
    fn fresh_packet_has_no_history() {
        let p = base();
        assert!(p.path.is_empty());
        assert_eq!(p.upstream_of(NodeId::new(0)), None);
        assert!(!p.visited(NodeId::new(0)));
        assert_eq!(p.id.raw(), 1);
        assert_eq!(p.id.to_string(), "pkt1");
    }

    #[test]
    fn forward_appends_to_path() {
        let p = base();
        let f = p.forward(NodeId::new(0), vec![NodeId::new(5)], 7);
        assert_eq!(f.path, vec![NodeId::new(0)]);
        assert_eq!(f.tag, 7);
        assert_eq!(f.destinations, vec![NodeId::new(5)]);
        // Forwarding twice in a row from the same node collapses the entry.
        let f2 = f.forward(NodeId::new(0), vec![NodeId::new(6)], 8);
        assert_eq!(f2.path, vec![NodeId::new(0)]);
    }

    #[test]
    fn forward_shares_one_body() {
        let p = base();
        let f = p.forward(NodeId::new(0), vec![NodeId::new(5)], 7);
        assert!(
            Arc::ptr_eq(&p.body, &f.body),
            "forward must share the body, not clone it"
        );
        let f2 = f.forward(NodeId::new(1), vec![NodeId::new(5)], 8);
        assert!(Arc::ptr_eq(&p.body, &f2.body));
    }

    #[test]
    fn forward_reappends_on_revisit() {
        // 0 → 1 → back to 0 → 3: after the detour, 0 re-appends itself so
        // node 3 sees its physical sender (0) as the last path entry.
        let p = base();
        let at1 = p.forward(NodeId::new(0), vec![NodeId::new(5)], 0).forward(
            NodeId::new(1),
            vec![NodeId::new(5)],
            0,
        );
        let back_at0 = at1.forward(NodeId::new(0), vec![NodeId::new(5)], 0);
        assert_eq!(
            back_at0.path,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(0)]
        );
        assert_eq!(back_at0.path.last(), Some(NodeId::new(0)));
        // upstream_of keeps using the FIRST occurrence: 0 is the publisher.
        assert_eq!(back_at0.upstream_of(NodeId::new(0)), None);
    }

    #[test]
    fn upstream_follows_first_occurrence() {
        let mut p = base();
        p.path = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)].into();
        // Node 2 first appears at index 2 → upstream is node 1.
        assert_eq!(p.upstream_of(NodeId::new(2)), Some(NodeId::new(1)));
        // Node 1 → node 0.
        assert_eq!(p.upstream_of(NodeId::new(1)), Some(NodeId::new(0)));
        // Node 0 opened the path → no upstream.
        assert_eq!(p.upstream_of(NodeId::new(0)), None);
        // A node not on the path was handed the packet by the last entry.
        assert_eq!(p.upstream_of(NodeId::new(9)), Some(NodeId::new(2)));
    }

    #[test]
    fn upstream_stable_after_return_trip() {
        // 0 → 1 → 2, then 2 returns the packet to 1.
        let mut p = base();
        p.path = vec![NodeId::new(0), NodeId::new(1)].into();
        let at2 = p.forward(NodeId::new(2), vec![NodeId::new(5)], 0);
        assert_eq!(
            at2.path,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
        let back_at1 = at2.forward(NodeId::new(1), vec![NodeId::new(5)], 0);
        assert_eq!(
            back_at1.path,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(1)
            ]
        );
        // 1's upstream is still 0 even after the detour through 2.
        assert_eq!(back_at1.upstream_of(NodeId::new(1)), Some(NodeId::new(0)));
        // Loop avoidance still sees 2 on the path.
        assert!(back_at1.visited(NodeId::new(2)));
    }

    #[test]
    fn path_record_round_trips_verbatim() {
        // Wire decode goes Vec → PathRecord → Vec and must be the identity,
        // including duplicates (revisits) and consecutive duplicates.
        let raw = vec![
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(1),
            NodeId::new(0),
            NodeId::new(70),
        ];
        let rec: PathRecord = raw.clone().into();
        assert_eq!(Vec::<NodeId>::from(rec.clone()), raw);
        assert!(rec.contains(NodeId::new(70)));
        assert!(rec.contains(NodeId::new(1)));
        assert!(!rec.contains(NodeId::new(2)));
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn path_record_clear_resets_membership() {
        let mut rec: PathRecord = vec![NodeId::new(3), NodeId::new(9)].into();
        rec.clear();
        assert!(rec.is_empty());
        assert!(!rec.contains(NodeId::new(3)));
        rec.push(NodeId::new(9));
        assert_eq!(rec, vec![NodeId::new(9)]);
    }

    #[test]
    fn path_record_merge_appends_only_novel_nodes() {
        let mut into: PathRecord = vec![NodeId::new(0), NodeId::new(1)].into();
        let from: PathRecord = vec![NodeId::new(1), NodeId::new(2), NodeId::new(0)].into();
        into.merge(&from);
        assert_eq!(into, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        // Merging again is a no-op.
        into.merge(&from);
        assert_eq!(into.len(), 3);
    }

    #[test]
    fn seq_and_kind_survive_forwarding() {
        let p = base().with_seq(17);
        assert_eq!(p.seq, 17);
        assert_eq!(p.kind, PacketKind::Data);
        assert!(!p.is_nack());
        let f = p.forward(NodeId::new(0), vec![NodeId::new(5)], 3);
        assert_eq!(f.seq, 17);
        assert_eq!(f.kind, PacketKind::Data);
    }

    #[test]
    fn nack_targets_the_publisher() {
        let n = Packet::nack(
            PacketId::new(9),
            TopicId::new(2),
            NodeId::new(4),
            SimTime::from_millis(50),
            NodeId::new(7),
            vec![3, 5],
        );
        assert!(n.is_nack());
        assert_eq!(n.destinations, vec![NodeId::new(4)]);
        let PacketKind::Nack {
            subscriber,
            ref missing,
        } = n.kind
        else {
            panic!("nack kind expected");
        };
        assert_eq!(subscriber, NodeId::new(7));
        assert_eq!(missing, &vec![3, 5]);
        // NACKs forward like any packet, keeping their kind.
        let f = n.forward(NodeId::new(7), vec![NodeId::new(4)], 0);
        assert!(f.is_nack());
    }

    #[test]
    fn visited_checks_path_membership() {
        let mut p = base();
        p.path = vec![NodeId::new(3)].into();
        assert!(p.visited(NodeId::new(3)));
        assert!(!p.visited(NodeId::new(4)));
    }
}
