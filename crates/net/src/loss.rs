//! Random per-transmission packet loss.
//!
//! Separately from epoch failures, every individual transmission over a
//! healthy link is lost with probability `Pl` (the paper sweeps `Pl` from
//! 10⁻⁴ — the default — up to 10⁻¹ in Fig. 8). ACKs traverse the same links
//! and are subject to the same loss.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bernoulli per-transmission loss model.
///
/// # Example
///
/// ```
/// use dcrd_net::loss::LossModel;
/// use dcrd_sim::rng::rng_for;
///
/// let mut rng = rng_for(1, "loss");
/// let lossless = LossModel::new(0.0);
/// assert!(!lossless.drops(&mut rng));
/// let lossy = LossModel::new(1.0);
/// assert!(lossy.drops(&mut rng));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    pl: f64,
}

impl LossModel {
    /// The paper's default loss rate (`10⁻⁴`).
    pub const PAPER_DEFAULT: LossModel = LossModel { pl: 1e-4 };

    /// Creates a loss model with per-transmission loss probability `pl`,
    /// clamped into `[0, 1]` (NaN reads as lossless; debug builds assert
    /// the input was already in range).
    #[must_use]
    pub fn new(pl: f64) -> Self {
        debug_assert!(
            (0.0..=1.0).contains(&pl),
            "loss probability out of range: {pl}"
        );
        let pl = if pl.is_nan() { 0.0 } else { pl.clamp(0.0, 1.0) };
        LossModel { pl }
    }

    /// The loss probability.
    #[must_use]
    pub fn pl(&self) -> f64 {
        self.pl
    }

    /// Draws whether one transmission is lost.
    pub fn drops<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.pl <= 0.0 {
            false
        } else if self.pl >= 1.0 {
            true
        } else {
            rng.gen::<f64>() < self.pl
        }
    }
}

impl Default for LossModel {
    fn default() -> Self {
        LossModel::PAPER_DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_sim::rng::rng_for;

    #[test]
    fn empirical_rate_matches() {
        let model = LossModel::new(0.05);
        let mut rng = rng_for(3, "loss");
        let n = 100_000;
        let losses = (0..n).filter(|_| model.drops(&mut rng)).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "empirical loss rate {rate}");
    }

    #[test]
    fn default_is_paper_value() {
        assert!((LossModel::default().pl() - 1e-4).abs() < f64::EPSILON);
    }

    #[test]
    fn extremes() {
        let mut rng = rng_for(4, "loss");
        assert!(!LossModel::new(0.0).drops(&mut rng));
        assert!(LossModel::new(1.0).drops(&mut rng));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_probability() {
        let _ = LossModel::new(-0.1);
    }
}
