//! Topics and subscriptions.

use std::fmt;

use dcrd_net::NodeId;
use dcrd_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a pub/sub topic (dense, `0..num_topics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TopicId(u32);

impl TopicId {
    /// Creates a topic id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        TopicId(index)
    }

    /// The dense index of this topic.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topic{}", self.0)
    }
}

/// One subscription: a broker node subscribed to a topic with a QoS delay
/// requirement (the paper's `D_PS`) and an activity window (churn
/// extension; the paper's subscriptions last the whole run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subscription {
    /// The subscribing broker node.
    pub subscriber: NodeId,
    /// Maximum acceptable publisher-to-subscriber delay.
    pub deadline: SimDuration,
    /// The subscription joins at this instant (inclusive).
    pub active_from: SimTime,
    /// The subscription leaves at this instant (exclusive).
    pub active_until: SimTime,
}

impl Subscription {
    /// Creates a subscription active for the whole run (the paper's model).
    #[must_use]
    pub fn new(subscriber: NodeId, deadline: SimDuration) -> Self {
        Subscription {
            subscriber,
            deadline,
            active_from: SimTime::ZERO,
            active_until: SimTime::MAX,
        }
    }

    /// Creates a subscription active in `[from, until)` — the churn
    /// extension: a subscriber that joins and later leaves.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until`.
    #[must_use]
    pub fn windowed(
        subscriber: NodeId,
        deadline: SimDuration,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(from < until, "subscription window must be non-empty");
        Subscription {
            subscriber,
            deadline,
            active_from: from,
            active_until: until,
        }
    }

    /// Whether the subscription is active when a message publishes at `at`.
    #[must_use]
    pub fn active_at(&self, at: SimTime) -> bool {
        at >= self.active_from && at < self.active_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_id_round_trip() {
        let t = TopicId::new(5);
        assert_eq!(t.index(), 5);
        assert_eq!(t.to_string(), "topic5");
        assert!(TopicId::new(1) < TopicId::new(2));
    }

    #[test]
    fn subscription_fields() {
        let s = Subscription::new(NodeId::new(3), SimDuration::from_millis(90));
        assert_eq!(s.subscriber, NodeId::new(3));
        assert_eq!(s.deadline, SimDuration::from_millis(90));
        assert!(s.active_at(SimTime::ZERO));
        assert!(s.active_at(SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn windowed_subscription_activity() {
        let s = Subscription::windowed(
            NodeId::new(1),
            SimDuration::from_millis(50),
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        assert!(!s.active_at(SimTime::from_secs(9)));
        assert!(s.active_at(SimTime::from_secs(10)));
        assert!(s.active_at(SimTime::from_millis(19_999)));
        assert!(!s.active_at(SimTime::from_secs(20)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let _ = Subscription::windowed(
            NodeId::new(1),
            SimDuration::from_millis(50),
            SimTime::from_secs(5),
            SimTime::from_secs(5),
        );
    }
}
