//! API-guideline conformance (C-SEND-SYNC, C-COMMON-TRAITS): the types a
//! multithreaded experiment runner shares across threads must stay `Send`
//! and `Sync`, and core value types must keep their common traits. These
//! are compile-time checks — regressions fail to build.

use dcrd::core::propagation::SubscriberTables;
use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::metrics::{AggregateMetrics, RunMetrics, Timeline};
use dcrd::net::estimate::{LinkEstimate, LinkEstimates};
use dcrd::net::failure::{BurstFailureModel, FailureModel, LinkFailureModel};
use dcrd::net::paths::Path;
use dcrd::net::{EdgeId, NodeId, Topology};
use dcrd::pubsub::packet::{Packet, PacketId};
use dcrd::pubsub::runtime::DeliveryLog;
use dcrd::pubsub::topic::{Subscription, TopicId};
use dcrd::pubsub::trace::Trace;
use dcrd::pubsub::workload::Workload;
use dcrd::sim::stats::{Histogram, Ratio, Welford};
use dcrd::sim::{SimDuration, SimTime};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_types_are_send_and_sync() {
    assert_send_sync::<Topology>();
    assert_send_sync::<LinkEstimates>();
    assert_send_sync::<FailureModel>();
    assert_send_sync::<Workload>();
    assert_send_sync::<Packet>();
    assert_send_sync::<DeliveryLog>();
    assert_send_sync::<Trace>();
    assert_send_sync::<RunMetrics>();
    assert_send_sync::<AggregateMetrics>();
    assert_send_sync::<Timeline>();
    assert_send_sync::<SubscriberTables>();
    assert_send_sync::<DcrdStrategy>();
    assert_send_sync::<dcrd::experiments::Scenario>();
}

#[test]
fn value_types_have_common_traits() {
    // Copy + Ord ids usable as map keys.
    fn assert_ord_key<T: Copy + Ord + std::hash::Hash + std::fmt::Debug>() {}
    assert_ord_key::<NodeId>();
    assert_ord_key::<EdgeId>();
    assert_ord_key::<TopicId>();
    assert_ord_key::<PacketId>();
    assert_ord_key::<SimTime>();
    assert_ord_key::<SimDuration>();

    // Display on user-facing ids and durations.
    assert_eq!(format!("{}", NodeId::new(1)), "n1");
    assert_eq!(format!("{}", TopicId::new(2)), "topic2");
    assert_eq!(format!("{}", PacketId::new(3)), "pkt3");
    assert!(!format!("{}", SimDuration::from_millis(10)).is_empty());

    // Default on accumulators and configs.
    let _ = Welford::default();
    let _ = Ratio::default();
    let _ = DcrdConfig::default();
    let _ = LinkEstimate::new(SimDuration::ZERO, 1.0);
    let _ = Histogram::new(0.0, 1.0, 4);
    let _ = BurstFailureModel::new(0.1, 2.0, 1);
    let _ = LinkFailureModel::new(0.1, 1);
}

#[test]
fn data_types_serialize_with_serde() {
    // C-SERDE: data-structure types round-trip through JSON.
    let sub = Subscription::new(NodeId::new(1), SimDuration::from_millis(30));
    let json = serde_json::to_string(&sub).expect("serialize");
    let back: Subscription = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, sub);

    let path = Path::from_parts(
        vec![NodeId::new(0), NodeId::new(1)],
        vec![EdgeId::new(0)],
        5,
    );
    let json = serde_json::to_string(&path).expect("serialize");
    let back: Path = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, path);
}
