//! The paper's pub/sub workload generator.
//!
//! §IV-A of the paper: 10 topics; one publisher per topic on a randomly
//! chosen broker; each publisher sends 1 packet/s (the ADS-B air
//! surveillance rate); per topic a subscription probability `Ps` is drawn
//! uniformly from `[0.2, 0.6]` and every *other* broker subscribes with
//! probability `Ps`; each subscription's delay requirement is `factor ×` the
//! shortest-path delay from publisher to subscriber (factor 3 by default,
//! swept in Fig. 6).
//!
//! Two adversarial extensions ride on the same generator:
//!
//! * [`TopicPopularity::Zipf`] — instead of drawing every topic's `Ps`
//!   uniformly, subscription probability follows a Zipf law over topic
//!   rank with topic 0 as a *mega-topic* that nearly every broker
//!   subscribes to. Fan-out (and therefore broker load) concentrates on
//!   the mega-topic's publisher instead of spreading evenly.
//! * [`BurstConfig`] — a flash crowd: during one window the publish rate
//!   multiplies. The schedule stays closed-form (see
//!   [`TopicSpec::publish_time`]) so runs remain deterministic and
//!   replayable from the round index alone.

use dcrd_net::paths::{dijkstra, Metric};
use dcrd_net::{NodeId, Topology};
use dcrd_sim::{SimDuration, SimTime};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::topic::{Subscription, TopicId};

/// Subscriber churn (extension): subscriptions join and leave during the
/// run instead of lasting forever.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Join times are drawn uniformly from `[0, join_within)`.
    pub join_within: SimDuration,
    /// Active lifetimes are drawn uniformly from this range.
    pub lifetime: (SimDuration, SimDuration),
}

/// How subscription probability is assigned across topics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum TopicPopularity {
    /// The paper's model: per-topic `Ps` drawn uniformly from `ps_range`.
    #[default]
    Uniform,
    /// Zipf-skewed popularity over topic rank: topic 0 is a mega-topic
    /// subscribed with probability `mega_ps`, topic `r > 0` with
    /// probability `mega_ps / (r + 1)^exponent`, floored at the bottom of
    /// `ps_range` so tail topics still have subscribers.
    Zipf {
        /// The skew exponent `s` (1.0 is classic Zipf; larger is more
        /// head-heavy).
        exponent: f64,
        /// Subscription probability of the rank-0 mega-topic.
        mega_ps: f64,
    },
}

impl TopicPopularity {
    /// The subscription probability of the topic at `rank`, or `None` for
    /// the uniform model (whose `Ps` is drawn, not computed).
    #[must_use]
    pub fn ps_for_rank(&self, rank: usize, floor: f64) -> Option<f64> {
        match *self {
            TopicPopularity::Uniform => None,
            TopicPopularity::Zipf { exponent, mega_ps } => {
                let scaled = mega_ps / ((rank + 1) as f64).powf(exponent);
                Some(scaled.max(floor).min(1.0))
            }
        }
    }
}

/// A flash-crowd window: for `len` starting at `at`, the publish rate
/// multiplies by `multiplier`. The burst replaces the normal schedule
/// inside its window (publishes spaced `interval / multiplier`) and the
/// normal cadence resumes at `at + len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Burst start, as an offset from the beginning of the run.
    pub at: SimDuration,
    /// Burst window length.
    pub len: SimDuration,
    /// Publish-rate multiplier inside the window (1 = no burst).
    pub multiplier: u32,
}

/// Configuration of the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of topics (= number of publishers).
    pub num_topics: usize,
    /// Publish interval per topic (paper: 1 s).
    pub publish_interval: SimDuration,
    /// Subscription probability range per topic (paper: `[0.2, 0.6]`).
    pub ps_range: (f64, f64),
    /// Deadline as a multiple of the shortest-path delay (paper: 3.0).
    pub deadline_factor: f64,
    /// Subscriber churn; `None` (the paper's model) keeps every
    /// subscription active for the whole run.
    pub churn: Option<ChurnConfig>,
    /// How popularity spreads across topics (default: the paper's uniform
    /// draw).
    #[serde(default)]
    pub popularity: TopicPopularity,
    /// Flash-crowd publish burst applied to every topic; `None` keeps the
    /// paper's constant rate.
    #[serde(default)]
    pub burst: Option<BurstConfig>,
}

impl WorkloadConfig {
    /// The paper's configuration (§IV-A).
    pub const PAPER: WorkloadConfig = WorkloadConfig {
        num_topics: 10,
        publish_interval: SimDuration::from_secs(1),
        ps_range: (0.2, 0.6),
        deadline_factor: 3.0,
        churn: None,
        popularity: TopicPopularity::Uniform,
        burst: None,
    };

    /// Returns a copy with a different deadline factor (Fig. 6 sweep).
    #[must_use]
    pub fn with_deadline_factor(mut self, factor: f64) -> Self {
        self.deadline_factor = factor;
        self
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::PAPER
    }
}

/// One topic's static description: its publisher, publish schedule and
/// subscriptions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicSpec {
    /// The topic id.
    pub topic: TopicId,
    /// The publishing broker.
    pub publisher: NodeId,
    /// Interval between publishes.
    pub interval: SimDuration,
    /// Phase offset of the first publish (de-synchronizes topics).
    pub offset: SimDuration,
    /// The topic's subscriptions.
    pub subscriptions: Vec<Subscription>,
    /// Flash-crowd burst window, if any (see [`BurstConfig`]).
    #[serde(default)]
    pub burst: Option<BurstConfig>,
}

impl TopicSpec {
    /// The subscriber nodes of this topic (active or not).
    #[must_use]
    pub fn subscribers(&self) -> Vec<NodeId> {
        self.subscriptions.iter().map(|s| s.subscriber).collect()
    }

    /// The subscriptions active when a message publishes at `at` (churn
    /// extension; equals all subscriptions in the paper's model).
    #[must_use]
    pub fn active_subscriptions(&self, at: SimTime) -> Vec<&Subscription> {
        self.subscriptions
            .iter()
            .filter(|s| s.active_at(at))
            .collect()
    }

    /// The deadline of `subscriber`'s subscription, if subscribed.
    #[must_use]
    pub fn deadline_of(&self, subscriber: NodeId) -> Option<SimDuration> {
        self.subscriptions
            .iter()
            .find(|s| s.subscriber == subscriber)
            .map(|s| s.deadline)
    }

    /// The time of the `k`-th publish (0-based).
    ///
    /// Without a burst this is the linear schedule `offset + k × interval`.
    /// With one, the schedule is piecewise but still closed-form in `k`:
    /// rounds before the burst keep the linear cadence, rounds inside the
    /// window fire every `interval / multiplier` starting at the burst
    /// start, and rounds after it resume the normal cadence from the end
    /// of the window. Closed form matters: the runtime replays any round
    /// from its index alone, so determinism and digest-equality carry over
    /// to flash-crowd runs unchanged.
    #[must_use]
    pub fn publish_time(&self, k: u64) -> SimTime {
        let linear = SimTime::ZERO + self.offset + self.interval * k;
        let Some(burst) = self.burst else {
            return linear;
        };
        if burst.multiplier <= 1 || self.interval.as_micros() == 0 {
            return linear;
        }
        let start = burst.at.as_micros();
        let interval = self.interval.as_micros();
        let fast = (interval / u64::from(burst.multiplier)).max(1);
        // Rounds before the window keep the linear cadence.
        let pre = if start > self.offset.as_micros() {
            (start - self.offset.as_micros()).div_ceil(interval)
        } else {
            0
        };
        if k < pre {
            return linear;
        }
        // Rounds inside the window fire every `interval / multiplier`.
        let in_burst = burst.len.as_micros() / fast;
        if k < pre + in_burst {
            return SimTime::from_micros(start + (k - pre) * fast);
        }
        // Rounds after the window resume the normal cadence at its end.
        let after_start = start + burst.len.as_micros();
        SimTime::from_micros(after_start + (k - pre - in_burst) * interval)
    }
}

/// A complete static workload: every topic with its publisher and
/// subscriptions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    topics: Vec<TopicSpec>,
}

impl Workload {
    /// Builds a workload from explicit topic specs (used by tests and
    /// examples that need precise control).
    ///
    /// # Panics
    ///
    /// Panics if `topics` is empty or any topic has no subscriptions.
    #[must_use]
    pub fn from_topics(topics: Vec<TopicSpec>) -> Self {
        assert!(!topics.is_empty(), "workload needs at least one topic");
        for t in &topics {
            assert!(
                !t.subscriptions.is_empty(),
                "{} has no subscriptions",
                t.topic
            );
        }
        Workload { topics }
    }

    /// Generates the paper's workload over `topo`.
    ///
    /// Publishers are placed by sampling broker nodes without replacement
    /// (with replacement if there are more topics than brokers). Every
    /// non-publisher broker subscribes to each topic with that topic's
    /// `Ps`; topics that end up with no subscribers get one random
    /// subscriber so every published message has a destination.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(
        topo: &Topology,
        config: &WorkloadConfig,
        rng: &mut R,
    ) -> Self {
        let nodes: Vec<NodeId> = topo.nodes().collect();
        if nodes.is_empty() {
            return Workload { topics: Vec::new() };
        }
        let mut publishers: Vec<NodeId> = Vec::with_capacity(config.num_topics);
        if config.num_topics <= nodes.len() {
            let mut pool = nodes.clone();
            pool.shuffle(rng);
            publishers.extend(pool.into_iter().take(config.num_topics));
        } else {
            for _ in 0..config.num_topics {
                if let Some(&p) = nodes.choose(rng) {
                    publishers.push(p);
                }
            }
        }

        let topics = publishers
            .iter()
            .enumerate()
            .map(|(i, &publisher)| {
                let sp = dijkstra(topo, publisher, Metric::Delay);
                // Zipf popularity replaces the uniform draw; the draw still
                // happens so the uniform model's RNG stream (and therefore
                // every pre-existing seeded workload) is unchanged.
                let drawn = rng.gen_range(config.ps_range.0..=config.ps_range.1);
                let ps = config
                    .popularity
                    .ps_for_rank(i, config.ps_range.0)
                    .unwrap_or(drawn);
                let mut subscriptions: Vec<Subscription> = Vec::new();
                for &n in nodes.iter().filter(|&&n| n != publisher) {
                    if rng.gen::<f64>() >= ps {
                        continue;
                    }
                    let deadline = deadline_for(&sp, n, config.deadline_factor);
                    subscriptions.push(match config.churn {
                        None => Subscription::new(n, deadline),
                        Some(churn) => {
                            let from = SimTime::from_micros(
                                rng.gen_range(0..churn.join_within.as_micros().max(1)),
                            );
                            let life = SimDuration::from_micros(rng.gen_range(
                                churn.lifetime.0.as_micros()..=churn.lifetime.1.as_micros(),
                            ));
                            Subscription::windowed(n, deadline, from, from + life)
                        }
                    });
                }
                if subscriptions.is_empty() {
                    // A single-broker topology has nobody left to force-
                    // subscribe; the topic then simply stays empty.
                    let candidates: Vec<NodeId> =
                        nodes.iter().copied().filter(|&n| n != publisher).collect();
                    if let Some(&n) = candidates.choose(rng) {
                        subscriptions.push(Subscription::new(
                            n,
                            deadline_for(&sp, n, config.deadline_factor),
                        ));
                    }
                }
                TopicSpec {
                    topic: TopicId::new(i as u32),
                    publisher,
                    interval: config.publish_interval,
                    offset: SimDuration::from_micros(
                        rng.gen_range(0..config.publish_interval.as_micros().max(1)),
                    ),
                    subscriptions,
                    burst: config.burst,
                }
            })
            .collect();
        Workload { topics }
    }

    /// The topics of the workload.
    #[must_use]
    pub fn topics(&self) -> &[TopicSpec] {
        &self.topics
    }

    /// The spec of `topic`.
    ///
    /// # Panics
    ///
    /// Panics if the topic is not part of this workload.
    #[must_use]
    pub fn topic(&self, topic: TopicId) -> &TopicSpec {
        &self.topics[topic.index()]
    }

    /// Total number of subscriptions across all topics.
    #[must_use]
    pub fn num_subscriptions(&self) -> usize {
        self.topics.iter().map(|t| t.subscriptions.len()).sum()
    }
}

fn deadline_for(
    sp: &dcrd_net::paths::ShortestPaths,
    subscriber: NodeId,
    factor: f64,
) -> SimDuration {
    // A subscriber the publisher cannot reach has no meaningful delay
    // bound; give it an unbounded deadline rather than panicking.
    let Some(base) = sp.cost_to(subscriber) else {
        return SimDuration::MAX;
    };
    SimDuration::from_micros(base).mul_f64(factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::paths::shortest_path;
    use dcrd_net::topology::{full_mesh, random_connected, DelayRange};
    use dcrd_sim::rng::rng_for;

    #[test]
    fn paper_workload_shape() {
        let mut rng = rng_for(1, "wl");
        let topo = full_mesh(20, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        assert_eq!(wl.topics().len(), 10);
        for t in wl.topics() {
            assert!(!t.subscriptions.is_empty());
            assert!(t.subscriptions.iter().all(|s| s.subscriber != t.publisher));
            assert_eq!(t.interval, SimDuration::from_secs(1));
            assert!(t.offset < SimDuration::from_secs(1));
        }
        // Publishers are distinct when there are enough brokers.
        let mut pubs: Vec<NodeId> = wl.topics().iter().map(|t| t.publisher).collect();
        pubs.sort();
        pubs.dedup();
        assert_eq!(pubs.len(), 10);
    }

    #[test]
    fn subscription_counts_respect_ps_range() {
        // With Ps in [0.2, 0.6] over 19 candidate brokers, the long-run
        // average per topic must be within [0.2*19, 0.6*19] ± noise.
        let mut rng = rng_for(2, "wl");
        let topo = full_mesh(20, DelayRange::PAPER, &mut rng);
        let mut total = 0usize;
        let reps = 50;
        for _ in 0..reps {
            let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
            total += wl.num_subscriptions();
        }
        let avg_per_topic = total as f64 / (reps * 10) as f64;
        assert!(
            (2.5..=13.0).contains(&avg_per_topic),
            "avg subscriptions per topic {avg_per_topic}"
        );
    }

    #[test]
    fn deadlines_are_factor_times_shortest_delay() {
        let mut rng = rng_for(3, "wl");
        let topo = random_connected(12, 4, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        for t in wl.topics() {
            for s in &t.subscriptions {
                let best = shortest_path(&topo, t.publisher, s.subscriber, Metric::Delay)
                    .expect("connected");
                let expected = SimDuration::from_micros(best.cost()).mul_f64(3.0);
                assert_eq!(s.deadline, expected);
                assert_eq!(t.deadline_of(s.subscriber), Some(expected));
            }
            assert_eq!(t.deadline_of(t.publisher), None);
        }
    }

    #[test]
    fn publish_times_follow_schedule() {
        let spec = TopicSpec {
            topic: TopicId::new(0),
            publisher: NodeId::new(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::from_millis(250),
            subscriptions: vec![Subscription::new(NodeId::new(1), SimDuration::from_secs(1))],
            burst: None,
        };
        assert_eq!(spec.publish_time(0), SimTime::from_millis(250));
        assert_eq!(spec.publish_time(2), SimTime::from_millis(2250));
        assert_eq!(spec.subscribers(), vec![NodeId::new(1)]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let topo = full_mesh(15, DelayRange::PAPER, &mut rng_for(4, "t"));
        let a = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng_for(5, "w"));
        let b = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng_for(5, "w"));
        assert_eq!(a, b);
    }

    #[test]
    fn more_topics_than_brokers_is_allowed() {
        let mut rng = rng_for(6, "wl");
        let topo = full_mesh(4, DelayRange::PAPER, &mut rng);
        let cfg = WorkloadConfig {
            num_topics: 9,
            ..WorkloadConfig::PAPER
        };
        let wl = Workload::generate(&topo, &cfg, &mut rng);
        assert_eq!(wl.topics().len(), 9);
    }

    #[test]
    fn deadline_factor_override() {
        let cfg = WorkloadConfig::PAPER.with_deadline_factor(1.5);
        assert!((cfg.deadline_factor - 1.5).abs() < f64::EPSILON);
        assert_eq!(cfg.num_topics, 10);
    }

    #[test]
    fn churned_workload_has_finite_windows() {
        let mut rng = rng_for(9, "churn");
        let topo = full_mesh(15, DelayRange::PAPER, &mut rng);
        let cfg = WorkloadConfig {
            churn: Some(ChurnConfig {
                join_within: SimDuration::from_secs(60),
                lifetime: (SimDuration::from_secs(30), SimDuration::from_secs(90)),
            }),
            ..WorkloadConfig::PAPER
        };
        let wl = Workload::generate(&topo, &cfg, &mut rng);
        for t in wl.topics() {
            for s in &t.subscriptions {
                assert!(s.active_from < SimTime::from_secs(60));
                let life = s.active_until.saturating_since(s.active_from);
                assert!(life >= SimDuration::from_secs(30));
                assert!(life <= SimDuration::from_secs(90));
            }
            // At some instant not every subscription is active.
            let active_at_zero = t.active_subscriptions(SimTime::ZERO).len();
            assert!(active_at_zero <= t.subscriptions.len());
        }
    }

    #[test]
    fn paper_workload_subscriptions_are_always_active() {
        let mut rng = rng_for(10, "churn");
        let topo = full_mesh(10, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        for t in wl.topics() {
            assert_eq!(
                t.active_subscriptions(SimTime::from_secs(100_000)).len(),
                t.subscriptions.len()
            );
        }
    }

    #[test]
    fn zipf_popularity_is_rank_decreasing_and_floored() {
        let pop = TopicPopularity::Zipf {
            exponent: 1.0,
            mega_ps: 0.8,
        };
        let floor = 0.05;
        assert_eq!(pop.ps_for_rank(0, floor), Some(0.8));
        assert_eq!(pop.ps_for_rank(1, floor), Some(0.4));
        let mut last = 1.0;
        for rank in 0..200 {
            let ps = pop.ps_for_rank(rank, floor).expect("zipf");
            assert!(ps <= last, "rank {rank} not decreasing");
            assert!(ps >= floor, "rank {rank} below floor");
            assert!(ps <= 1.0);
            last = ps;
        }
        // Deep tail hits the floor exactly.
        assert_eq!(pop.ps_for_rank(1_000, floor), Some(floor));
        // Uniform has no computed value: the drawn Ps stands.
        assert_eq!(TopicPopularity::Uniform.ps_for_rank(3, floor), None);
    }

    #[test]
    fn zipf_workload_skews_subscriptions_toward_the_mega_topic() {
        let mut rng = rng_for(11, "zipf");
        let topo = full_mesh(30, DelayRange::PAPER, &mut rng);
        let cfg = WorkloadConfig {
            num_topics: 8,
            popularity: TopicPopularity::Zipf {
                exponent: 1.2,
                mega_ps: 0.95,
            },
            ..WorkloadConfig::PAPER
        };
        let mut head = 0usize;
        let mut tail = 0usize;
        for rep in 0..20u64 {
            let mut r = rng_for(rep, "zipf-rep");
            let wl = Workload::generate(&topo, &cfg, &mut r);
            head += wl.topics()[0].subscriptions.len();
            tail += wl.topics()[7].subscriptions.len();
        }
        assert!(
            head > 2 * tail,
            "mega-topic ({head}) not clearly heavier than tail ({tail})"
        );
    }

    #[test]
    fn zipf_workload_leaves_uniform_rng_stream_unchanged() {
        // The Zipf draw-and-discard keeps the uniform model byte-identical:
        // a uniform workload generated before and after the feature existed
        // must match, which we approximate by checking the stream position
        // via a sentinel draw after generation.
        let topo = full_mesh(30, DelayRange::PAPER, &mut rng_for(12, "t"));
        let mut a = rng_for(13, "w");
        let mut b = rng_for(13, "w");
        let _ = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut a);
        let zipf = WorkloadConfig {
            popularity: TopicPopularity::Zipf {
                exponent: 1.0,
                mega_ps: 0.5,
            },
            ..WorkloadConfig::PAPER
        };
        let _ = Workload::generate(&topo, &zipf, &mut b);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "RNG streams diverged");
    }

    fn bursty_spec(offset_ms: u64, burst: BurstConfig) -> TopicSpec {
        TopicSpec {
            topic: TopicId::new(0),
            publisher: NodeId::new(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::from_millis(offset_ms),
            subscriptions: vec![Subscription::new(NodeId::new(1), SimDuration::from_secs(1))],
            burst: Some(burst),
        }
    }

    #[test]
    fn burst_schedule_is_piecewise_pre_fast_post() {
        let spec = bursty_spec(
            0,
            BurstConfig {
                at: SimDuration::from_secs(3),
                len: SimDuration::from_secs(2),
                multiplier: 4,
            },
        );
        // Pre-burst: linear rounds 0..=2 at 0s, 1s, 2s.
        assert_eq!(spec.publish_time(0), SimTime::ZERO);
        assert_eq!(spec.publish_time(2), SimTime::from_secs(2));
        // In-burst: 2s of publishes every 250ms anchored at 3s → rounds 3..=10.
        assert_eq!(spec.publish_time(3), SimTime::from_secs(3));
        assert_eq!(spec.publish_time(4), SimTime::from_millis(3250));
        assert_eq!(spec.publish_time(10), SimTime::from_millis(4750));
        // Post-burst: normal cadence resumes at the window end (5s).
        assert_eq!(spec.publish_time(11), SimTime::from_secs(5));
        assert_eq!(spec.publish_time(12), SimTime::from_secs(6));
    }

    #[test]
    fn burst_schedule_is_monotone_and_offset_aware() {
        let spec = bursty_spec(
            400,
            BurstConfig {
                at: SimDuration::from_millis(2_500),
                len: SimDuration::from_millis(1_500),
                multiplier: 3,
            },
        );
        let mut last = spec.publish_time(0);
        for k in 1..40 {
            let t = spec.publish_time(k);
            assert!(t > last, "round {k}: {t} not after {last}");
            last = t;
        }
        // Offset delays the pre-burst rounds but the window boundary holds.
        assert_eq!(spec.publish_time(0), SimTime::from_millis(400));
        assert!(spec.publish_time(3) >= SimTime::from_millis(2_500));
    }

    #[test]
    fn degenerate_bursts_fall_back_to_the_linear_schedule() {
        let linear = bursty_spec(
            100,
            BurstConfig {
                at: SimDuration::from_secs(1),
                len: SimDuration::from_secs(1),
                multiplier: 1,
            },
        );
        for k in 0..10 {
            assert_eq!(
                linear.publish_time(k),
                SimTime::from_millis(100) + linear.interval * k
            );
        }
    }

    #[test]
    #[should_panic(expected = "no subscriptions")]
    fn from_topics_rejects_empty_subscriptions() {
        let spec = TopicSpec {
            topic: TopicId::new(0),
            publisher: NodeId::new(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![],
            burst: None,
        };
        let _ = Workload::from_topics(vec![spec]);
    }
}
