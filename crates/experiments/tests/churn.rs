//! The churn-study acceptance gate, run by CI in release mode: the whole
//! broker-churn sweep at smoke quality, checking shape, a clean audit,
//! and the repair-path comparisons the design promises.

use dcrd_experiments::churn::{churn_rates, churn_report, CHURN_RATE_SWEEP};
use dcrd_experiments::scenario::Quality;
use dcrd_metrics::report::MetricKind;

/// Margin the incremental arm may trail the global-rebuild oracle by
/// (pure noise budget — the repairs are equivalence-tested at the table
/// level, so the two arms should track each other closely).
const ORACLE_EPSILON: f64 = 0.01;

/// One pass over the whole sweep: shape, a clean audit, and the
/// acceptance comparisons — incremental repair never loses to no-repair
/// and stays within epsilon of the global-rebuild oracle at every rate.
#[test]
fn churn_sweep_is_clean_and_incremental_tracks_the_oracle() {
    let report = churn_report(Quality::Smoke);
    let series = &report.series;
    assert_eq!(series.points.len(), CHURN_RATE_SWEEP.len());
    assert_eq!(
        series.strategy_names(),
        ["DCRD-incremental", "DCRD-global", "DCRD-no-repair"]
    );
    assert_eq!(
        report.total_audit_violations, 0,
        "auditor flagged deliveries to departed brokers or routes through dead ones"
    );
    for point in &series.points {
        let incremental = &point.strategies[0];
        let global = &point.strategies[1];
        let no_repair = &point.strategies[2];
        assert!(
            incremental.delivery_ratio() >= no_repair.delivery_ratio() - 1e-12,
            "at churn rate {} incremental delivered {:.4} vs no-repair {:.4}",
            point.x,
            incremental.delivery_ratio(),
            no_repair.delivery_ratio()
        );
        assert!(
            (incremental.delivery_ratio() - global.delivery_ratio()).abs() <= ORACLE_EPSILON,
            "at churn rate {} incremental {:.4} drifted from the oracle {:.4}",
            point.x,
            incremental.delivery_ratio(),
            global.delivery_ratio()
        );
    }
    let table = series.render_table(MetricKind::Delivery);
    assert!(table.contains("DCRD-incremental"));
}

/// The sweep itself is deterministic: running it twice produces the same
/// delivery numbers at every point for every arm.
#[test]
fn churn_sweep_is_seed_deterministic() {
    let a = churn_rates(Quality::Smoke);
    let b = churn_rates(Quality::Smoke);
    assert_eq!(a.points.len(), b.points.len());
    for (pa, pb) in a.points.iter().zip(&b.points) {
        for (sa, sb) in pa.strategies.iter().zip(&pb.strategies) {
            assert_eq!(sa.name(), sb.name());
            assert_eq!(
                sa.delivery_ratio().to_bits(),
                sb.delivery_ratio().to_bits(),
                "{} at rate {} not reproducible",
                sa.name(),
                pa.x
            );
            assert_eq!(sa.audit_violations(), sb.audit_violations());
        }
    }
}
