// Fixture: DET002 must stay quiet — entropy flows from the run seed.
pub fn stamp(seed: u64) -> u64 {
    // dcrd_sim::rng::rng_for is the sanctioned path; Instant::now is not
    // (saying so in a comment is fine).
    let rng = dcrd_sim::rng::rng_for(seed, "stamp");
    let _ = rng;
    seed
}
