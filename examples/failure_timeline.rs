//! Failure transients: watch per-10-second delivery quality while bursty
//! link outages roll through the overlay, with the timeline metrics.
//!
//! ```text
//! cargo run --release --example failure_timeline
//! ```

use dcrd::baselines::tree::d_tree;
use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::experiments::runner::{build_topology, build_workload};
use dcrd::experiments::scenario::ScenarioBuilder;
use dcrd::metrics::Timeline;
use dcrd::net::failure::{BurstFailureModel, FailureModel};
use dcrd::net::loss::LossModel;
use dcrd::pubsub::runtime::{OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::strategy::RoutingStrategy;
use dcrd::sim::SimDuration;

fn main() {
    let scenario = ScenarioBuilder::new()
        .nodes(20)
        .degree(4)
        .failure_probability(0.08)
        .duration_secs(120)
        .seed(2024)
        .build();
    let topo = build_topology(&scenario, 0);
    let workload = build_workload(&scenario, &topo, 0);
    // Outages persist ~5 s: long enough to span several publishes.
    let failure = FailureModel::bursty(BurstFailureModel::new(0.08, 5.0, 0x5EED));
    let config = RuntimeConfig::paper(SimDuration::from_secs(120), 9);

    println!("20 brokers, degree 4, bursty outages (Pf=0.08, ~5s bursts), 2 minutes\n");
    for (label, strategy) in [
        (
            "DCRD",
            &mut DcrdStrategy::new(DcrdConfig::default()) as &mut dyn RoutingStrategy,
        ),
        ("D-Tree", &mut d_tree()),
    ] {
        let log = OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config)
            .run(strategy);
        let timeline = Timeline::from_log(&log, SimDuration::from_secs(10));
        println!("{}", timeline.render(label));
        if let Some((t, q)) = timeline.worst_window() {
            println!(
                "{label}: worst window starts at {:.0}s with QoS {:.3}; whole-run QoS {:.3}\n",
                t.as_secs_f64(),
                q,
                log.qos_delivery_ratio()
            );
        }
    }
    println!(
        "The tree's dips last as long as the bursts; DCRD's dips are shallow because every \
         packet\nimmediately detours around the failed epoch."
    );
}
