//! Report rendering: the series behind each paper figure, as aligned text
//! tables and CSV.

use serde::{Deserialize, Serialize};

use crate::summary::AggregateMetrics;

/// Which of the paper's metrics a column reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Delivery ratio (Figs. 2a, 3a, 4a, 5a).
    Delivery,
    /// QoS delivery ratio (Figs. 2b, 3b, 4b, 5b, 6, 8).
    Qos,
    /// Packets sent per subscriber (Figs. 2c, 3c, 4c, 5c).
    Traffic,
}

impl MetricKind {
    /// Human-readable column title.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            MetricKind::Delivery => "Delivery Ratio",
            MetricKind::Qos => "QoS Delivery Ratio",
            MetricKind::Traffic => "Packets/Subscriber",
        }
    }

    /// Extracts the metric from an aggregate.
    #[must_use]
    pub fn value(self, agg: &AggregateMetrics) -> f64 {
        match self {
            MetricKind::Delivery => agg.delivery_ratio(),
            MetricKind::Qos => agg.qos_delivery_ratio(),
            MetricKind::Traffic => agg.packets_per_subscriber(),
        }
    }
}

/// One x-position of a figure: the swept parameter value plus the pooled
/// metrics of every strategy at that value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The swept parameter value (e.g. `Pf`).
    pub x: f64,
    /// One aggregate per strategy, in a fixed strategy order.
    pub strategies: Vec<AggregateMetrics>,
}

/// A complete figure series: the sweep axis plus all points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Figure identifier (e.g. "fig2").
    pub id: String,
    /// x-axis label (e.g. "Failure Probability").
    pub x_label: String,
    /// Points in ascending x order.
    pub points: Vec<SeriesPoint>,
}

impl FigureSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new(id: impl Into<String>, x_label: impl Into<String>) -> Self {
        FigureSeries {
            id: id.into(),
            x_label: x_label.into(),
            points: Vec::new(),
        }
    }

    /// The strategy names, taken from the first point.
    #[must_use]
    pub fn strategy_names(&self) -> Vec<&str> {
        self.points
            .first()
            .map(|p| p.strategies.iter().map(AggregateMetrics::name).collect())
            .unwrap_or_default()
    }

    /// Renders one metric as an aligned text table, one row per x value and
    /// one column per strategy (the shape of each sub-figure in the paper).
    #[must_use]
    pub fn render_table(&self, metric: MetricKind) -> String {
        let names = self.strategy_names();
        let widths: Vec<usize> = names.iter().map(|n| n.len().max(10) + 2).collect();
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, metric.title()));
        out.push_str(&format!("{:>14}", self.x_label));
        for (n, w) in names.iter().zip(&widths) {
            out.push_str(&format!("{n:>w$}"));
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("{:>14}", trim_float(p.x)));
            for (agg, w) in p.strategies.iter().zip(&widths) {
                out.push_str(&format!("{:>w$.4}", metric.value(agg)));
            }
            out.push('\n');
        }
        out
    }

    /// Renders all three metrics (or just `metrics`) as CSV with columns
    /// `x,strategy,delivery,qos,traffic,runs,pairs`.
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "x,strategy,delivery_ratio,qos_delivery_ratio,packets_per_subscriber,runs,pairs\n",
        );
        for p in &self.points {
            for agg in &p.strategies {
                out.push_str(&format!(
                    "{},{},{:.6},{:.6},{:.6},{},{}\n",
                    trim_float(p.x),
                    agg.name(),
                    agg.delivery_ratio(),
                    agg.qos_delivery_ratio(),
                    agg.packets_per_subscriber(),
                    agg.runs(),
                    agg.pairs(),
                ));
            }
        }
        out
    }
}

/// Renders a CDF series (Fig. 7) as an aligned text table.
#[must_use]
pub fn render_cdf(label: &str, series: &[(f64, f64)]) -> String {
    let mut out = format!("# {label}\n{:>12}{:>12}\n", "x", "CDF");
    for (x, y) in series {
        out.push_str(&format!("{x:>12.3}{y:>12.4}\n"));
    }
    out
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 && x.abs() < 1e15 {
        format!("{}", x.round() as i64)
    } else {
        let s = format!("{x}");
        if s.len() > 10 {
            format!("{x:.6}")
        } else {
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_point(x: f64) -> SeriesPoint {
        let mut a = AggregateMetrics::new("DCRD");
        let b = AggregateMetrics::new("R-Tree");
        // Leave empty; values are zero but structure is exercised.
        let _ = &mut a;
        SeriesPoint {
            x,
            strategies: vec![a, b],
        }
    }

    #[test]
    fn table_contains_header_and_rows() {
        let mut s = FigureSeries::new("fig2", "Failure Probability");
        s.points.push(dummy_point(0.0));
        s.points.push(dummy_point(0.02));
        let t = s.render_table(MetricKind::Delivery);
        assert!(t.contains("fig2"));
        assert!(t.contains("Delivery Ratio"));
        assert!(t.contains("DCRD"));
        assert!(t.contains("R-Tree"));
        assert_eq!(t.lines().count(), 4, "title + header + 2 rows");
        assert_eq!(s.strategy_names(), vec!["DCRD", "R-Tree"]);
    }

    #[test]
    fn csv_has_row_per_strategy_per_point() {
        let mut s = FigureSeries::new("fig3", "Pf");
        s.points.push(dummy_point(0.0));
        s.points.push(dummy_point(0.1));
        let csv = s.render_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.starts_with("x,strategy,"));
        assert!(csv.contains("0.1,R-Tree"));
    }

    #[test]
    fn metric_kind_accessors() {
        let agg = AggregateMetrics::new("x");
        for kind in [MetricKind::Delivery, MetricKind::Qos, MetricKind::Traffic] {
            assert_eq!(kind.value(&agg), 0.0);
            assert!(!kind.title().is_empty());
        }
    }

    #[test]
    fn cdf_rendering() {
        let out = render_cdf("fig7", &[(1.0, 0.0), (1.5, 0.7)]);
        assert!(out.contains("fig7"));
        assert_eq!(out.lines().count(), 4);
        assert!(out.contains("0.7000"));
    }

    #[test]
    fn float_trimming() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(0.02), "0.02");
        assert_eq!(trim_float(1.0 / 3.0), "0.333333");
    }

    #[test]
    fn json_round_trip() {
        let mut s = FigureSeries::new("fig9", "X");
        s.points.push(dummy_point(1.0));
        s.points.push(dummy_point(2.0));
        let json = serde_json::to_string(&s).expect("serialize");
        let back: FigureSeries = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, s);
        assert!(json.contains("\"fig9\""));
    }

    #[test]
    fn empty_series_is_harmless() {
        let s = FigureSeries::new("empty", "x");
        assert!(s.strategy_names().is_empty());
        let t = s.render_table(MetricKind::Qos);
        assert!(t.contains("empty"));
        assert_eq!(s.render_csv().lines().count(), 1);
    }
}
