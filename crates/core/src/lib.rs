//! # dcrd-core — Delay-Cognizant Reliable Delivery
//!
//! The primary contribution of Guo et al., *Delay-Cognizant Reliable
//! Delivery for Publish/Subscribe Overlay Networks* (ICDCS 2011): a dynamic,
//! per-hop routing algorithm that abandons fixed multicast trees. Every
//! broker keeps, per subscriber, a **sending list** of neighbors sorted so
//! that trying them in order minimizes the expected delivery delay
//! (Theorem 1), and forwarding falls back from neighbor to neighbor — and
//! finally back **upstream** — until the packet gets through.
//!
//! Module map (paper section in parentheses):
//!
//! * [`reliability`] — Eq. 1: expected delay `α⁽ᵐ⁾` and delivery ratio
//!   `γ⁽ᵐ⁾` of an `m`-transmission link attempt (§III-A).
//! * [`params`] — the `⟨d, r⟩` node parameters and Eq. 2/Eq. 3 used to
//!   aggregate candidate next hops (§III-B).
//! * [`ordering`] — Theorem 1: sorting candidates by `d/r` minimizes the
//!   expected delay; plus naive orderings for ablation (§III-C).
//! * [`sending_list`] — sending-list construction: the `dᵢ < D_XS` deadline
//!   filter plus the optimal sort (Algorithm 1, §III-C).
//! * [`propagation`] — the distributed recursive computation of `⟨d, r⟩`
//!   across the overlay, run as synchronous gossip rounds to a fixed point
//!   (§III-B).
//! * [`router`] — [`DcrdStrategy`]: the dynamic routing scheme
//!   (Algorithm 2, §III-D) with hop-by-hop ACK timers, `m`-transmission
//!   retries, destination merging, loop avoidance via the packet's routing
//!   path, upstream rerouting, and the optional persistence extension.
//! * [`journal`] — the write-ahead custody journal (robustness extension):
//!   brokers journal packets before taking custody and replay surviving
//!   entries after a crash-restart.
//! * [`config`] — tuning knobs, including the ablation switches called out
//!   in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use dcrd_core::ordering::optimal_order;
//! use dcrd_core::params::{combine, Candidate};
//! use dcrd_net::NodeId;
//!
//! // Two candidate next hops: fast-but-flaky vs slow-but-reliable.
//! let mut candidates = vec![
//!     Candidate { neighbor: NodeId::new(1), d: 10_000.0, r: 0.5 },
//!     Candidate { neighbor: NodeId::new(2), d: 15_000.0, r: 0.99 },
//! ];
//! optimal_order(&mut candidates);
//! // d/r: 20_000 vs ~15_151 → the reliable one goes first.
//! assert_eq!(candidates[0].neighbor, NodeId::new(2));
//! let combined = combine(&candidates);
//! assert!(combined.r > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod journal;
pub mod ordering;
pub mod params;
pub mod propagation;
pub mod reliability;
pub mod router;
pub mod sending_list;

pub use config::{
    AdaptiveTimeoutConfig, BreakerConfig, DcrdConfig, DurabilityMode, MembershipConfig,
    OrderingPolicy, PersistenceMode, RecoveryConfig, RepairMode, TimeoutPolicy,
};
pub use journal::{InFlightJournal, JournalEntry, JournalStats};
pub use router::DcrdStrategy;
