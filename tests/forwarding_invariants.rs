//! Trace-based invariants of the forwarding protocols: loop bounds, path
//! validity and traffic accounting, checked on full captured traces.

use dcrd::baselines::multipath::multipath;
use dcrd::baselines::oracle::oracle;
use dcrd::baselines::tree::{d_tree, r_tree};
use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::experiments::runner::{build_topology, build_workload};
use dcrd::experiments::scenario::{Scenario, ScenarioBuilder};
use dcrd::net::failure::{FailureModel, LinkFailureModel};
use dcrd::net::loss::LossModel;
use dcrd::pubsub::runtime::{DeliveryLog, OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::strategy::RoutingStrategy;
use dcrd::pubsub::trace::TraceEvent;
use dcrd::sim::SimDuration;

fn traced_run(strategy: &mut (impl RoutingStrategy + ?Sized), pf: f64, seed: u64) -> DeliveryLog {
    let scenario: Scenario = ScenarioBuilder::new()
        .nodes(15)
        .degree(5)
        .failure_probability(pf)
        .duration_secs(40)
        .seed(seed)
        .build();
    let topo = build_topology(&scenario, 0);
    let workload = build_workload(&scenario, &topo, 0);
    let failure = FailureModel::links_only(LinkFailureModel::new(pf, seed ^ 0xF00));
    let mut config = RuntimeConfig::paper(SimDuration::from_secs(40), seed);
    config.capture_trace = true;
    OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config).run(strategy)
}

/// Every transmission recorded in the trace matches the traffic counter.
#[test]
fn trace_matches_traffic_counters() {
    let log = traced_run(&mut DcrdStrategy::new(DcrdConfig::default()), 0.06, 1);
    let trace = log.trace.as_ref().expect("trace captured");
    let (arrived, blocked, lost) = trace.outcome_counts();
    assert_eq!(arrived + blocked + lost, log.data_sends);
    assert_eq!(blocked, log.sends_blocked);
    assert_eq!(lost, log.sends_lost);
    assert!(arrived > 0);
}

/// DCRD never develops *unbounded* forwarding loops. Re-probing a blocked
/// link while waiting out a failure epoch is designed behavior (Algorithm 2
/// keeps trying until the destination is reached — that is why delivery
/// approaches 100%), but the packet's path budget (`max_path_factor ×
/// nodes`) must cap the total wandering.
#[test]
fn dcrd_directed_edge_uses_stay_bounded() {
    let config = DcrdConfig::default();
    let log = traced_run(&mut DcrdStrategy::new(config), 0.1, 2);
    let trace = log.trace.as_ref().expect("trace captured");
    let max_uses = trace.max_directed_edge_uses() as usize;
    let budget = config.max_path_factor as usize * 15; // nodes in traced_run
    assert!(
        max_uses <= budget,
        "a message crossed one directed link {max_uses} times — beyond the path budget {budget}"
    );
    // A tighter budget must tighten the bound proportionally.
    let tight = DcrdConfig {
        max_path_factor: 2,
        ..DcrdConfig::default()
    };
    let log2 = traced_run(&mut DcrdStrategy::new(tight), 0.1, 2);
    let max2 = log2.trace.as_ref().expect("trace").max_directed_edge_uses() as usize;
    assert!(
        max2 <= 2 * 15,
        "tight path budget violated: {max2} uses of one directed link"
    );
    assert!(max2 <= max_uses);
}

/// The tree baselines send each message over each directed link at most
/// once when `m = 1` (no rerouting, no duplication).
#[test]
fn trees_never_reuse_a_directed_edge() {
    for strategy in [r_tree(), d_tree()] {
        let mut s = strategy;
        let log = traced_run(&mut s, 0.08, 3);
        let trace = log.trace.as_ref().expect("trace captured");
        assert_eq!(
            trace.max_directed_edge_uses(),
            1,
            "{} must be loop-free and duplication-free",
            s.name()
        );
    }
}

/// Multipath sends exactly two copies per subscriber, so with a single
/// subscriber per topic a message crosses any directed link at most twice
/// (once per pinned route).
#[test]
fn multipath_edge_reuse_bounded_by_two_per_subscriber() {
    use dcrd::pubsub::topic::{Subscription, TopicId};
    use dcrd::pubsub::workload::{TopicSpec, Workload};

    let scenario: Scenario = ScenarioBuilder::new()
        .nodes(15)
        .degree(5)
        .failure_probability(0.08)
        .duration_secs(40)
        .seed(4)
        .build();
    let topo = build_topology(&scenario, 0);
    // One subscriber per topic: the per-(message, subscriber) bound becomes
    // a per-message bound the trace can check.
    let workload = Workload::from_topics(
        (0..6u32)
            .map(|i| TopicSpec {
                topic: TopicId::new(i),
                publisher: topo.node(i as usize),
                interval: SimDuration::from_secs(1),
                offset: SimDuration::from_millis(u64::from(i) * 100),
                subscriptions: vec![Subscription::new(
                    topo.node(14 - i as usize),
                    SimDuration::from_millis(300),
                )],
                burst: None,
            })
            .collect(),
    );
    let failure = FailureModel::links_only(LinkFailureModel::new(0.08, 0xF04));
    let mut config = RuntimeConfig::paper(SimDuration::from_secs(40), 4);
    config.capture_trace = true;
    let mut s = multipath();
    let log = OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config)
        .run(&mut s);
    let trace = log.trace.as_ref().expect("trace captured");
    assert!(
        trace.max_directed_edge_uses() <= 2,
        "multipath reused a directed link {} times for one message",
        trace.max_directed_edge_uses()
    );
}

/// Every delivery recorded in the trace belongs to a real expectation and
/// happened no earlier than its publish time.
#[test]
fn deliveries_are_causally_valid() {
    let log = traced_run(&mut oracle(), 0.06, 5);
    let trace = log.trace.as_ref().expect("trace captured");
    let mut checked = 0;
    for e in trace.events() {
        if let TraceEvent::Deliver { at, node, packet } = *e {
            let exp = log
                .expectation(packet, node)
                .expect("delivery to a non-subscriber recorded");
            assert!(at >= exp.published, "delivery before publish");
            assert_eq!(exp.delivered.expect("expectation marked"), at);
            checked += 1;
        }
    }
    assert!(
        checked > 100,
        "expected plenty of deliveries, saw {checked}"
    );
}

/// Traces are off by default — no memory cost unless requested.
#[test]
fn trace_capture_is_opt_in() {
    let scenario: Scenario = ScenarioBuilder::new()
        .nodes(6)
        .full_mesh()
        .duration_secs(5)
        .seed(6)
        .build();
    let topo = build_topology(&scenario, 0);
    let workload = build_workload(&scenario, &topo, 0);
    let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
    let config = RuntimeConfig::paper(SimDuration::from_secs(5), 1);
    let log = OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config)
        .run(&mut DcrdStrategy::new(DcrdConfig::default()));
    assert!(log.trace.is_none());
}
