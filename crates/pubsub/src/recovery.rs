//! Subscriber-side sequencing: gap detection and replay deduplication.
//!
//! Every published message carries a per-(topic, publisher) sequence number
//! ([`Packet::seq`]). A subscriber feeds the sequence numbers it receives
//! through one [`SequenceTracker`] per stream; the tracker answers two
//! questions the recovery layer needs:
//!
//! * **Is this copy fresh?** — [`observe`](SequenceTracker::observe)
//!   returns `false` for a sequence number already delivered, so crash
//!   replay and NACK-driven re-sends never reach the application twice.
//! * **What is missing?** —
//!   [`missing_through`](SequenceTracker::missing_through) lists the gaps
//!   up to a given horizon, which the strategy turns into NACKs toward the
//!   nearest upstream custodian.
//!
//! The dedup state is **bounded**: a low watermark (everything below it was
//! delivered) plus a window of delivered sequence numbers above it. The
//! window must cover `publish_rate × max_recovery_latency` sequence
//! numbers; if a gap persists long enough to overflow the window, the
//! tracker force-advances the watermark (counting the event) rather than
//! growing without bound — the trade the paper's aggressive state deletion
//! makes everywhere else.
//!
//! [`Packet::seq`]: crate::packet::Packet::seq

use std::collections::BTreeSet;

/// Default dedup-window capacity: at the paper's 1 packet/s per stream this
/// covers over 17 minutes of outstanding recovery, far beyond any crash
/// downtime the chaos models produce.
pub const DEFAULT_DEDUP_WINDOW: usize = 1024;

/// Per-(publisher, subscriber) stream state: bounded dedup window plus gap
/// bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceTracker {
    /// Every sequence number below this was delivered (or abandoned by a
    /// forced advance).
    low: u64,
    /// Delivered sequence numbers `≥ low` (the out-of-order window).
    seen: BTreeSet<u64>,
    /// Highest sequence number ever observed, if any.
    highest: Option<u64>,
    /// Window capacity before forced watermark advances kick in.
    capacity: usize,
    /// Duplicate observations absorbed (replay / NACK re-sends).
    duplicates: u64,
    /// Times the window overflowed and the watermark jumped a gap.
    forced_advances: u64,
}

impl SequenceTracker {
    /// Creates a tracker with the given dedup-window capacity (clamped to
    /// at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SequenceTracker {
            low: 0,
            seen: BTreeSet::new(),
            highest: None,
            capacity: capacity.max(1),
            duplicates: 0,
            forced_advances: 0,
        }
    }

    /// Records one received sequence number. Returns `true` when the copy
    /// is fresh (first delivery) and `false` for a duplicate the caller
    /// must suppress.
    pub fn observe(&mut self, seq: u64) -> bool {
        self.highest = Some(self.highest.map_or(seq, |h| h.max(seq)));
        if seq < self.low || !self.seen.insert(seq) {
            self.duplicates += 1;
            return false;
        }
        // Advance the watermark over the contiguous prefix.
        while self.seen.remove(&self.low) {
            self.low += 1;
        }
        // Bounded window: drop the oldest gap when over capacity. The
        // abandoned range can no longer be deduplicated, which is why the
        // capacity must dwarf the realistic recovery horizon.
        while self.seen.len() > self.capacity {
            let Some(next) = self.seen.iter().next().copied() else {
                break; // Unreachable: len() > capacity ≥ 1 means non-empty.
            };
            self.forced_advances += 1;
            self.low = next;
            while self.seen.remove(&self.low) {
                self.low += 1;
            }
        }
        true
    }

    /// The low watermark: every sequence number below it is settled.
    #[must_use]
    pub fn low(&self) -> u64 {
        self.low
    }

    /// The highest sequence number observed so far.
    #[must_use]
    pub fn highest(&self) -> Option<u64> {
        self.highest
    }

    /// The sequence numbers in `[low, through]` that have not been
    /// delivered — the stream's current gaps up to the horizon, ascending.
    #[must_use]
    pub fn missing_through(&self, through: u64) -> Vec<u64> {
        (self.low..=through)
            .filter(|s| !self.seen.contains(s))
            .collect()
    }

    /// Whether `seq` was already delivered.
    #[must_use]
    pub fn delivered(&self, seq: u64) -> bool {
        seq < self.low || self.seen.contains(&seq)
    }

    /// Duplicate observations absorbed so far.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Times the bounded window overflowed and abandoned a gap.
    #[must_use]
    pub fn forced_advances(&self) -> u64 {
        self.forced_advances
    }
}

impl Default for SequenceTracker {
    fn default() -> Self {
        SequenceTracker::new(DEFAULT_DEDUP_WINDOW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_order_stream_keeps_empty_window() {
        let mut t = SequenceTracker::default();
        for s in 0..100 {
            assert!(t.observe(s), "seq {s} is fresh");
        }
        assert_eq!(t.low(), 100);
        assert_eq!(t.highest(), Some(99));
        assert!(t.missing_through(99).is_empty());
        assert_eq!(t.duplicates(), 0);
    }

    #[test]
    fn gaps_are_reported_and_close_on_recovery() {
        let mut t = SequenceTracker::default();
        assert!(t.observe(0));
        assert!(t.observe(3));
        assert!(t.observe(4));
        assert_eq!(t.low(), 1);
        assert_eq!(t.missing_through(4), vec![1, 2]);
        assert!(t.observe(2));
        assert_eq!(t.missing_through(4), vec![1]);
        assert!(t.observe(1));
        assert_eq!(t.low(), 5);
        assert!(t.missing_through(4).is_empty());
    }

    #[test]
    fn duplicates_are_absorbed_everywhere() {
        let mut t = SequenceTracker::default();
        assert!(t.observe(0));
        assert!(t.observe(5));
        // Below the watermark, inside the window, and re-observed.
        assert!(!t.observe(0));
        assert!(!t.observe(5));
        assert!(t.observe(1));
        assert!(!t.observe(1));
        assert_eq!(t.duplicates(), 3);
    }

    #[test]
    fn window_overflow_forces_the_watermark_forward() {
        let mut t = SequenceTracker::new(4);
        // Leave seq 0 missing; deliver 1..=5 (window holds 5 > 4).
        for s in 1..=5 {
            t.observe(s);
        }
        assert_eq!(t.forced_advances(), 1);
        // The gap at 0 was abandoned: the watermark jumped past it.
        assert_eq!(t.low(), 6);
        assert!(t.missing_through(5).is_empty());
        // A late copy of 0 is treated as a duplicate (it cannot be told
        // apart any more) — replay still never double-delivers.
        assert!(!t.observe(0));
    }

    #[test]
    fn delivered_tracks_both_sides_of_the_watermark() {
        let mut t = SequenceTracker::default();
        t.observe(0);
        t.observe(2);
        assert!(t.delivered(0));
        assert!(t.delivered(2));
        assert!(!t.delivered(1));
        assert!(!t.delivered(3));
    }

    proptest! {
        /// Whatever the arrival order and duplication pattern, each
        /// sequence number is reported fresh exactly once.
        #[test]
        fn each_seq_fresh_exactly_once(seqs in proptest::collection::vec(0u64..64, 1..200)) {
            let mut t = SequenceTracker::default();
            let mut fresh = std::collections::HashSet::new();
            // Duplicate the stream to stress dedup.
            let mut seqs = seqs;
            let copy = seqs.clone();
            seqs.extend(copy);
            for s in seqs {
                if t.observe(s) {
                    prop_assert!(fresh.insert(s), "seq {} fresh twice", s);
                }
            }
        }
    }
}
