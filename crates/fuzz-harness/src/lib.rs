//! # dcrd-fuzz-harness — deterministic in-tree fuzzing
//!
//! Structured fuzzing for the two attack surfaces a deployed broker
//! exposes:
//!
//! * [`bytes_fuzz`] — arbitrary and mutated datagrams through
//!   [`dcrd_pubsub::codec::decode_packet`]. The oracle is strict: decoding
//!   must never panic, a successful decode must re-encode to the exact
//!   input bytes, and no decoded collection may be larger than the input
//!   could have carried (the codec's no-over-allocation guarantee).
//! * [`script_fuzz`] — arbitrary-but-valid *event scripts*: seeded random
//!   scenarios (topology, workload, loss, failures, chaos, bounded queues,
//!   flash crowds) run end-to-end through the overlay runtime with the
//!   full invariant auditor attached. The oracle: no panics, a clean audit
//!   report, and byte-identical trace digests on re-run.
//! * [`callback_fuzz`] — the router driven callback-by-callback with
//!   hostile-but-well-formed inputs: duplicated, reordered and stale
//!   packets, fabricated ACKs and NACKs, spurious timers, membership
//!   deltas, restarts. The oracle: no panics and bounded action emission.
//!
//! Everything is seeded: every failure message names the `(seed, index)`
//! pair that reproduces it, so a fuzz finding is a deterministic unit test
//! away from a fix. The `fuzz-smoke` binary runs a budgeted pass of all
//! three fuzzers for CI; the workspace-excluded `fuzz/` directory wraps
//! the same generators as `cargo-fuzz` targets for coverage-guided runs
//! where libFuzzer is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes_fuzz;
pub mod callback_fuzz;
pub mod script_fuzz;

pub use bytes_fuzz::{check_decode, run_byte_fuzz, ByteFuzzReport};
pub use callback_fuzz::{run_callback_fuzz, CallbackFuzzReport};
pub use script_fuzz::{check_script, run_script_fuzz, ScriptFuzzReport};
