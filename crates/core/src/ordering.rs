//! Theorem 1: the optimal sending-list order.
//!
//! The ordering of candidates does not change `r_X` (Eq. 3's product is
//! commutative) but it changes `d_X`. Theorem 1 proves that sorting
//! ascending by `d_X^i / r_X^i` is both necessary and sufficient to
//! minimize `d_X`. The alternative policies here exist for the ablation
//! experiments in `DESIGN.md` §5.

use serde::{Deserialize, Serialize};

use crate::params::Candidate;

/// Sending-list ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OrderingPolicy {
    /// Theorem 1: ascending `d/r` (optimal; the paper's DCRD).
    #[default]
    RatioOptimal,
    /// Ablation: ascending expected delay `d` (greedy "fastest first").
    ByDelay,
    /// Ablation: descending delivery ratio `r` ("most reliable first").
    ByReliability,
    /// Ablation: whatever order the candidates were produced in
    /// (deterministic but uninformed).
    Unsorted,
}

impl OrderingPolicy {
    /// Sorts `candidates` in place according to the policy. All policies
    /// break ties by neighbor id so runs are deterministic, and all
    /// comparisons use [`f64::total_cmp`] so a NaN estimate (a link-model
    /// bug) degrades to "sorts last" instead of a panic or an
    /// inconsistent comparator.
    pub fn sort(self, candidates: &mut [Candidate]) {
        match self {
            OrderingPolicy::RatioOptimal => {
                // `ratio()` divides, and `sort_by` re-evaluates it on every
                // comparison. Sending lists are degree-sized, so for short
                // slices precompute each ratio as a sort key — `total_cmp`
                // is by definition a signed compare of sign-folded IEEE
                // bits, so after flipping the top bit the key orders as a
                // plain u64 — and run an insertion sort over (key, id)
                // pairs. The comparator is a strict total order (distinct
                // neighbor ids break every tie), so the sorted permutation
                // is unique and the fast path returns exactly what
                // `sort_by` would.
                const STACK: usize = 16;
                let len = candidates.len();
                if len <= STACK {
                    let mut keys = [0u64; STACK];
                    for (k, c) in keys.iter_mut().zip(candidates.iter()) {
                        let bits = c.ratio().to_bits() as i64;
                        *k = (bits ^ ((((bits >> 63) as u64) >> 1) as i64)) as u64
                            ^ 0x8000_0000_0000_0000;
                    }
                    for i in 1..len {
                        let key = keys[i];
                        let cand = candidates[i];
                        let mut j = i;
                        while j > 0
                            && (keys[j - 1], candidates[j - 1].neighbor) > (key, cand.neighbor)
                        {
                            keys[j] = keys[j - 1];
                            candidates[j] = candidates[j - 1];
                            j -= 1;
                        }
                        keys[j] = key;
                        candidates[j] = cand;
                    }
                } else {
                    candidates.sort_by(|a, b| {
                        a.ratio()
                            .total_cmp(&b.ratio())
                            .then_with(|| a.neighbor.cmp(&b.neighbor))
                    });
                }
            }
            OrderingPolicy::ByDelay => candidates.sort_by(|a, b| {
                a.d.total_cmp(&b.d)
                    .then_with(|| a.neighbor.cmp(&b.neighbor))
            }),
            OrderingPolicy::ByReliability => candidates.sort_by(|a, b| {
                b.r.total_cmp(&a.r)
                    .then_with(|| a.neighbor.cmp(&b.neighbor))
            }),
            OrderingPolicy::Unsorted => {}
        }
    }
}

/// Sorts candidates by Theorem 1 (ascending `d/r`).
pub fn optimal_order(candidates: &mut [Candidate]) {
    OrderingPolicy::RatioOptimal.sort(candidates);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::combine;
    use dcrd_net::NodeId;
    use proptest::prelude::*;

    fn cand(id: u32, d: f64, r: f64) -> Candidate {
        Candidate {
            neighbor: NodeId::new(id),
            d,
            r,
        }
    }

    #[test]
    fn sorts_by_ratio() {
        let mut cs = vec![cand(0, 100.0, 0.5), cand(1, 90.0, 0.9), cand(2, 30.0, 0.2)];
        // ratios: 200, 100, 150 → order 1, 2, 0
        optimal_order(&mut cs);
        let ids: Vec<u32> = cs.iter().map(|c| c.neighbor.index() as u32).collect();
        assert_eq!(ids, vec![1, 2, 0]);
    }

    #[test]
    fn dead_candidates_sort_last() {
        let mut cs = vec![cand(0, 10.0, 0.0), cand(1, 1000.0, 0.1)];
        optimal_order(&mut cs);
        assert_eq!(cs[0].neighbor, NodeId::new(1));
    }

    #[test]
    fn ties_break_by_neighbor_id() {
        let mut cs = vec![cand(5, 10.0, 0.5), cand(2, 10.0, 0.5), cand(9, 10.0, 0.5)];
        optimal_order(&mut cs);
        let ids: Vec<u32> = cs.iter().map(|c| c.neighbor.index() as u32).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn equal_ratios_with_different_components_break_by_neighbor_id() {
        // 20/0.4 == 50/1.0 == 5/0.1 == 50: same d/r through different
        // (d, r) pairs must still order by neighbor id.
        let mut cs = vec![cand(7, 20.0, 0.4), cand(3, 50.0, 1.0), cand(5, 5.0, 0.1)];
        optimal_order(&mut cs);
        let ids: Vec<u32> = cs.iter().map(|c| c.neighbor.index() as u32).collect();
        assert_eq!(ids, vec![3, 5, 7]);
    }

    #[test]
    fn nan_estimates_sort_last_without_panicking() {
        // A NaN delay (link-model bug) must not panic the sort and must
        // lose to every finite candidate, under every policy.
        let mut cs = vec![
            cand(0, f64::NAN, 0.5),
            cand(1, 10.0, 0.9),
            cand(2, 20.0, f64::NAN),
        ];
        optimal_order(&mut cs);
        assert_eq!(cs[0].neighbor, NodeId::new(1));
        for policy in [OrderingPolicy::ByDelay, OrderingPolicy::ByReliability] {
            let mut cs = vec![cand(0, f64::NAN, f64::NAN), cand(1, 10.0, 0.9)];
            policy.sort(&mut cs);
            assert_eq!(cs[0].neighbor, NodeId::new(1), "{policy:?}");
        }
    }

    #[test]
    fn zero_reliability_neighbors_sort_after_all_live_ones() {
        // r = 0 makes the Theorem-1 ratio infinite: dead neighbors go
        // last (deterministically, by id), never ahead of a live one.
        let mut cs = vec![cand(9, 1.0, 0.0), cand(1, 9999.0, 0.01), cand(4, 2.0, 0.0)];
        optimal_order(&mut cs);
        let ids: Vec<u32> = cs.iter().map(|c| c.neighbor.index() as u32).collect();
        assert_eq!(ids, vec![1, 4, 9]);
    }

    #[test]
    fn policy_by_delay() {
        let mut cs = vec![cand(0, 50.0, 0.9), cand(1, 10.0, 0.1)];
        OrderingPolicy::ByDelay.sort(&mut cs);
        assert_eq!(cs[0].neighbor, NodeId::new(1));
    }

    #[test]
    fn policy_by_reliability() {
        let mut cs = vec![cand(0, 50.0, 0.5), cand(1, 10.0, 0.9)];
        OrderingPolicy::ByReliability.sort(&mut cs);
        assert_eq!(cs[0].neighbor, NodeId::new(1));
    }

    #[test]
    fn policy_unsorted_preserves_order() {
        let cs0 = vec![cand(3, 50.0, 0.5), cand(1, 10.0, 0.9)];
        let mut cs = cs0.clone();
        OrderingPolicy::Unsorted.sort(&mut cs);
        assert_eq!(cs, cs0);
    }

    #[test]
    fn default_policy_is_optimal() {
        assert_eq!(OrderingPolicy::default(), OrderingPolicy::RatioOptimal);
    }

    /// Exhaustive check of Theorem 1: on every permutation of a small
    /// candidate set, the ratio-sorted order yields the minimal Eq. 3 `d`.
    fn assert_theorem1(cs: &[Candidate]) {
        let mut sorted = cs.to_vec();
        optimal_order(&mut sorted);
        let best = combine(&sorted);
        // Enumerate permutations (Heap's algorithm over indices).
        let mut indices: Vec<usize> = (0..cs.len()).collect();
        let mut stack = vec![0usize; cs.len()];
        let check = |idx: &[usize]| {
            let perm: Vec<Candidate> = idx.iter().map(|&i| cs[i]).collect();
            let out = combine(&perm);
            assert!(
                best.d <= out.d + 1e-6 * out.d.abs().max(1.0),
                "theorem 1 violated: sorted d={} > permuted d={} (perm {idx:?})",
                best.d,
                out.d
            );
            assert!((best.r - out.r).abs() < 1e-9, "r must be order-invariant");
        };
        check(&indices);
        let n = cs.len();
        let mut i = 1;
        while i < n {
            if stack[i] < i {
                if i % 2 == 0 {
                    indices.swap(0, i);
                } else {
                    indices.swap(stack[i], i);
                }
                check(&indices);
                stack[i] += 1;
                i = 1;
            } else {
                stack[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn theorem1_on_fixed_sets() {
        assert_theorem1(&[cand(0, 100.0, 0.5), cand(1, 90.0, 0.9), cand(2, 30.0, 0.2)]);
        assert_theorem1(&[
            cand(0, 10.0, 0.99),
            cand(1, 10.0, 0.01),
            cand(2, 500.0, 0.8),
            cand(3, 50.0, 0.5),
        ]);
    }

    proptest! {
        /// Theorem 1, property-based: over random candidate sets of size ≤ 6,
        /// no permutation beats the d/r sort.
        #[test]
        fn theorem1_holds(
            ds in proptest::collection::vec(1.0f64..1e5, 2..6),
            rs in proptest::collection::vec(0.05f64..1.0, 2..6),
        ) {
            let n = ds.len().min(rs.len());
            let cs: Vec<Candidate> = (0..n).map(|i| cand(i as u32, ds[i], rs[i])).collect();
            assert_theorem1(&cs);
        }

        /// The optimal order never does worse than the ablation policies.
        #[test]
        fn optimal_beats_ablations(
            ds in proptest::collection::vec(1.0f64..1e5, 2..7),
            rs in proptest::collection::vec(0.05f64..1.0, 2..7),
        ) {
            let n = ds.len().min(rs.len());
            let cs: Vec<Candidate> = (0..n).map(|i| cand(i as u32, ds[i], rs[i])).collect();
            let mut opt = cs.clone();
            optimal_order(&mut opt);
            let d_opt = combine(&opt).d;
            for policy in [OrderingPolicy::ByDelay, OrderingPolicy::ByReliability, OrderingPolicy::Unsorted] {
                let mut other = cs.clone();
                policy.sort(&mut other);
                let d_other = combine(&other).d;
                prop_assert!(d_opt <= d_other + 1e-6 * d_other.abs().max(1.0),
                    "{:?} beat the optimal order: {} < {}", policy, d_other, d_opt);
            }
        }
    }
}
