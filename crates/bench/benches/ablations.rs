//! Ablation benchmarks: the design-choice sweeps called out in DESIGN.md §5
//! (ordering policy, upstream rerouting, ACK timeout, monitoring source),
//! plus end-to-end strategy cost on a common scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use dcrd_bench::bench_scenario;
use dcrd_experiments::figures;
use dcrd_experiments::runner::{run_once, StrategyKind};
use dcrd_experiments::scenario::Quality;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("ordering_policies", |b| {
        b.iter(|| black_box(figures::ablation_ordering(Quality::Smoke)))
    });
    group.bench_function("upstream_reroute", |b| {
        b.iter(|| black_box(figures::ablation_reroute(Quality::Smoke)))
    });
    group.bench_function("ack_timeout", |b| {
        b.iter(|| black_box(figures::ablation_timeout(Quality::Smoke)))
    });
    group.bench_function("monitoring_source", |b| {
        b.iter(|| black_box(figures::ablation_monitor(Quality::Smoke)))
    });
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    // Wall-clock cost of simulating each strategy on an identical scenario:
    // how expensive is each routing brain, per simulated run?
    let mut group = c.benchmark_group("strategy_run_cost");
    group.sample_size(10);
    let scenario = bench_scenario(0.06);
    for kind in StrategyKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| black_box(run_once(&scenario, kind, 0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations, bench_strategies);
criterion_main!(benches);
