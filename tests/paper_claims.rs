//! Integration tests pinning the paper's headline claims (§IV, §V).
//!
//! These use shortened runs (the paper simulates 2 h × 10 topologies), so
//! thresholds include a small noise margin — but every *ordering* claim is
//! asserted strictly.

use dcrd::experiments::runner::{run_comparison, run_scenario, StrategyKind};
use dcrd::experiments::scenario::ScenarioBuilder;

fn find<'a>(
    aggs: &'a [dcrd::metrics::AggregateMetrics],
    name: &str,
) -> &'a dcrd::metrics::AggregateMetrics {
    aggs.iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| panic!("{name} missing"))
}

/// §V: "more than 98% QoS delivery ratio for link failure probabilities
/// below 4%" (full mesh).
#[test]
fn dcrd_exceeds_98_percent_qos_at_low_failure_rates() {
    for pf in [0.02, 0.04] {
        let scenario = ScenarioBuilder::new()
            .nodes(20)
            .full_mesh()
            .failure_probability(pf)
            .duration_secs(60)
            .repetitions(2)
            .seed(11)
            .build();
        let agg = run_scenario(&scenario, StrategyKind::Dcrd);
        assert!(
            agg.qos_delivery_ratio() > 0.98,
            "pf={pf}: QoS ratio {} below the paper's 98% claim",
            agg.qos_delivery_ratio()
        );
        assert!(
            agg.delivery_ratio() > 0.999,
            "pf={pf}: delivery ratio {} should be ~100% in a mesh",
            agg.delivery_ratio()
        );
    }
}

/// Fig. 2: the full-mesh ordering at high failure probability —
/// ORACLE ≥ DCRD > Multipath > R-Tree > D-Tree on delivery.
#[test]
fn full_mesh_strategy_ordering_matches_fig2() {
    let scenario = ScenarioBuilder::new()
        .nodes(20)
        .full_mesh()
        .failure_probability(0.1)
        .duration_secs(60)
        .repetitions(2)
        .seed(23)
        .build();
    let aggs = run_comparison(&scenario, &StrategyKind::ALL);
    let dcrd = find(&aggs, "DCRD");
    let oracle = find(&aggs, "ORACLE");
    let rtree = find(&aggs, "R-Tree");
    let dtree = find(&aggs, "D-Tree");
    let multipath = find(&aggs, "Multipath");

    assert!(oracle.delivery_ratio() >= dcrd.delivery_ratio() - 1e-9);
    assert!(dcrd.delivery_ratio() > multipath.delivery_ratio());
    assert!(multipath.delivery_ratio() > rtree.delivery_ratio());
    assert!(rtree.delivery_ratio() > dtree.delivery_ratio());

    // Traffic (Fig. 2c): R-Tree exactly 1 in a mesh; Multipath the most;
    // DCRD modestly above D-Tree.
    assert!((rtree.packets_per_subscriber() - 1.0).abs() < 0.01);
    assert!(multipath.packets_per_subscriber() > 2.0 * dcrd.packets_per_subscriber());
    assert!(dcrd.packets_per_subscriber() > dtree.packets_per_subscriber());
    // "less than 50% of the traffic introduced by Multipath"
    assert!(dcrd.packets_per_subscriber() < 0.5 * multipath.packets_per_subscriber());
}

/// Fig. 3: with degree 5 the tree baselines lose ~5% more while DCRD's
/// delivery ratio stays near the mesh level.
#[test]
fn reduced_connectivity_hurts_trees_more_than_dcrd() {
    let mesh = ScenarioBuilder::new()
        .nodes(20)
        .full_mesh()
        .failure_probability(0.08)
        .duration_secs(60)
        .repetitions(2)
        .seed(31)
        .build();
    let deg5 = ScenarioBuilder::new()
        .nodes(20)
        .degree(5)
        .failure_probability(0.08)
        .duration_secs(60)
        .repetitions(2)
        .seed(31)
        .build();
    let dcrd_mesh = run_scenario(&mesh, StrategyKind::Dcrd);
    let dcrd_deg5 = run_scenario(&deg5, StrategyKind::Dcrd);
    let dtree_mesh = run_scenario(&mesh, StrategyKind::DTree);
    let dtree_deg5 = run_scenario(&deg5, StrategyKind::DTree);

    let dcrd_drop = dcrd_mesh.delivery_ratio() - dcrd_deg5.delivery_ratio();
    let dtree_drop = dtree_mesh.delivery_ratio() - dtree_deg5.delivery_ratio();
    assert!(
        dtree_drop > dcrd_drop,
        "D-Tree should lose more from reduced connectivity: tree drop {dtree_drop:.4} vs DCRD drop {dcrd_drop:.4}"
    );
    assert!(dcrd_deg5.delivery_ratio() > 0.99);
}

/// Fig. 4 / §V: "results for an overlay with node degree of 5 or greater
/// are not appreciably different from the full mesh results", while
/// degree 3 collapses.
#[test]
fn degree_five_is_close_to_mesh_and_degree_three_collapses() {
    let make = |degree: usize| {
        ScenarioBuilder::new()
            .nodes(20)
            .degree(degree)
            .failure_probability(0.06)
            .duration_secs(60)
            .repetitions(2)
            .seed(41)
            .build()
    };
    let deg3 = run_scenario(&make(3), StrategyKind::Dcrd);
    let deg5 = run_scenario(&make(5), StrategyKind::Dcrd);
    let deg8 = run_scenario(&make(8), StrategyKind::Dcrd);
    assert!(
        deg5.qos_delivery_ratio() > 0.93,
        "degree 5 QoS {}",
        deg5.qos_delivery_ratio()
    );
    assert!(deg8.qos_delivery_ratio() >= deg5.qos_delivery_ratio() - 0.02);
    assert!(
        deg3.qos_delivery_ratio() < deg5.qos_delivery_ratio(),
        "degree 3 ({}) must be clearly worse than degree 5 ({})",
        deg3.qos_delivery_ratio(),
        deg5.qos_delivery_ratio()
    );
}

/// Fig. 6: under a tight 1.5× requirement Multipath's duplicates win;
/// with the paper's 3× requirement DCRD is at least as good.
#[test]
fn deadline_factor_crossover_matches_fig6() {
    let make = |factor: f64| {
        ScenarioBuilder::new()
            .nodes(20)
            .degree(8)
            .failure_probability(0.06)
            .deadline_factor(factor)
            .duration_secs(60)
            .repetitions(3)
            .seed(53)
            .build()
    };
    let tight = run_comparison(&make(1.5), &[StrategyKind::Dcrd, StrategyKind::Multipath]);
    let loose = run_comparison(&make(3.0), &[StrategyKind::Dcrd, StrategyKind::Multipath]);
    let (dcrd_tight, mp_tight) = (find(&tight, "DCRD"), find(&tight, "Multipath"));
    let (dcrd_loose, mp_loose) = (find(&loose, "DCRD"), find(&loose, "Multipath"));

    // Tight: duplicates help because there is no time to reroute.
    assert!(
        mp_tight.qos_delivery_ratio() > dcrd_tight.qos_delivery_ratio() - 0.02,
        "tight requirement: Multipath {} should be competitive with DCRD {}",
        mp_tight.qos_delivery_ratio(),
        dcrd_tight.qos_delivery_ratio()
    );
    // Loose: DCRD catches up — the Multipath advantage must shrink to
    // (at most) noise. (The exact crossing point depends on how disjoint
    // the second path is; our Yen-based selection finds fully disjoint
    // pairs more often than the paper's, see EXPERIMENTS.md.)
    let gap_tight = mp_tight.qos_delivery_ratio() - dcrd_tight.qos_delivery_ratio();
    let gap_loose = mp_loose.qos_delivery_ratio() - dcrd_loose.qos_delivery_ratio();
    assert!(
        gap_loose < gap_tight,
        "DCRD must gain on Multipath as the requirement loosens: tight gap {gap_tight:.4}, loose gap {gap_loose:.4}"
    );
    assert!(
        dcrd_loose.qos_delivery_ratio() > mp_loose.qos_delivery_ratio() - 0.01,
        "loose requirement: DCRD {} should at least tie Multipath {}",
        dcrd_loose.qos_delivery_ratio(),
        mp_loose.qos_delivery_ratio()
    );
    // DCRD improves as the requirement loosens.
    assert!(dcrd_loose.qos_delivery_ratio() > dcrd_tight.qos_delivery_ratio());
}

/// Fig. 7: most deadline-missing DCRD packets are only slightly late
/// (paper: ≈50% within 1.25× and ≈70–80% within 1.5× of the requirement).
#[test]
fn missed_deadlines_are_mostly_near_misses() {
    let scenario = ScenarioBuilder::new()
        .nodes(20)
        .degree(8)
        .failure_probability(0.06)
        .duration_secs(120)
        .repetitions(3)
        .seed(61)
        .build();
    let agg = run_scenario(&scenario, StrategyKind::Dcrd);
    let lateness = agg.lateness();
    assert!(lateness.count() > 10, "need enough misses to test the CDF");
    let within_1_5 = lateness.cdf_at(1.5);
    let within_2 = lateness.cdf_at(2.0);
    assert!(
        within_1_5 > 0.4,
        "only {within_1_5:.2} of misses within 1.5× the deadline"
    );
    assert!(within_2 > within_1_5);
}

/// Fig. 8: with Pl ≪ Pf, switching immediately (m=1) beats retransmitting
/// (m=2) for DCRD; at Pl = 10⁻¹ retransmission helps the trees.
#[test]
fn retransmission_tradeoff_matches_fig8() {
    let make = |pl: f64, m: u32| {
        ScenarioBuilder::new()
            .nodes(20)
            .degree(8)
            .failure_probability(0.01)
            .loss_rate(pl)
            .transmissions(m)
            .duration_secs(90)
            .repetitions(3)
            .seed(71)
            .build()
    };
    // Low loss: m=1 at least as good for DCRD.
    let d1 = run_scenario(&make(1e-4, 1), StrategyKind::Dcrd);
    let d2 = run_scenario(&make(1e-4, 2), StrategyKind::Dcrd);
    assert!(
        d1.qos_delivery_ratio() >= d2.qos_delivery_ratio() - 0.01,
        "at Pl=1e-4 DCRD m=1 ({}) should not lose to m=2 ({})",
        d1.qos_delivery_ratio(),
        d2.qos_delivery_ratio()
    );
    // High loss: m=2 helps the trees by 1–2%.
    let t1 = run_scenario(&make(1e-1, 1), StrategyKind::RTree);
    let t2 = run_scenario(&make(1e-1, 2), StrategyKind::RTree);
    assert!(
        t2.qos_delivery_ratio() > t1.qos_delivery_ratio() + 0.005,
        "at Pl=0.1 R-Tree m=2 ({}) should beat m=1 ({})",
        t2.qos_delivery_ratio(),
        t1.qos_delivery_ratio()
    );
}
