//! Drivers reproducing every figure of the paper, plus the DESIGN.md
//! ablations.
//!
//! Each driver returns the raw series; rendering (text tables / CSV) lives
//! in [`dcrd_metrics::report`]. The swept parameters are exactly the
//! paper's:
//!
//! | Figure | Sweep | Fixed |
//! |---|---|---|
//! | 2 | `Pf ∈ 0..0.1` | 20-node full mesh |
//! | 3 | `Pf ∈ 0..0.1` | 20 nodes, degree 5 |
//! | 4 | degree 3..10 | `Pf = 0.06` |
//! | 5 | size 10..160 | degree 8, `Pf = 0.06` |
//! | 6 | deadline factor 1.5..6 | degree 8, `Pf = 0.06` |
//! | 7 | — (CDF) | mesh + degree 8, `Pf = 0.06` |
//! | 8 | `Pl ∈ 1e-4..1e-1`, `m ∈ {1,2}` | degree 8, `Pf = 0.01` |

use dcrd_metrics::report::{FigureSeries, SeriesPoint};
use dcrd_metrics::AggregateMetrics;

use crate::runner::{run_comparison, run_labeled, run_scenario, StrategyKind};
use crate::scenario::{Quality, Scenario, ScenarioBuilder};

/// The paper's failure-probability sweep: 0 to 0.1 in steps of 0.02.
pub const PF_SWEEP: [f64; 6] = [0.0, 0.02, 0.04, 0.06, 0.08, 0.1];
/// The paper's node-degree sweep (Fig. 4).
pub const DEGREE_SWEEP: [usize; 8] = [3, 4, 5, 6, 7, 8, 9, 10];
/// The paper's network-size sweep (Fig. 5).
pub const SIZE_SWEEP: [usize; 6] = [10, 20, 40, 80, 120, 160];
/// The paper's deadline-factor sweep (Fig. 6).
pub const FACTOR_SWEEP: [f64; 6] = [1.5, 2.0, 3.0, 4.0, 5.0, 6.0];
/// The paper's loss-rate sweep (Fig. 8).
pub const PL_SWEEP: [f64; 4] = [1e-4, 1e-3, 1e-2, 1e-1];

fn base(quality: Quality) -> ScenarioBuilder {
    ScenarioBuilder::new().quality(quality)
}

fn sweep<I, F>(id: &str, x_label: &str, xs: I, make: F, kinds: &[StrategyKind]) -> FigureSeries
where
    I: IntoIterator<Item = f64>,
    F: Fn(f64) -> Scenario,
{
    let mut series = FigureSeries::new(id, x_label);
    for x in xs {
        let scenario = make(x);
        series.points.push(SeriesPoint {
            x,
            strategies: run_comparison(&scenario, kinds),
        });
    }
    series
}

/// Fig. 2: all three metrics vs `Pf` in a 20-node full mesh.
#[must_use]
pub fn fig2(quality: Quality) -> FigureSeries {
    sweep(
        "fig2",
        "Failure Probability",
        PF_SWEEP,
        |pf| base(quality).full_mesh().failure_probability(pf).build(),
        &StrategyKind::ALL,
    )
}

/// Fig. 3: all three metrics vs `Pf`, 20 nodes with degree 5.
#[must_use]
pub fn fig3(quality: Quality) -> FigureSeries {
    sweep(
        "fig3",
        "Failure Probability",
        PF_SWEEP,
        |pf| base(quality).degree(5).failure_probability(pf).build(),
        &StrategyKind::ALL,
    )
}

/// Fig. 4: all three metrics vs node degree at `Pf = 0.06`.
#[must_use]
pub fn fig4(quality: Quality) -> FigureSeries {
    sweep(
        "fig4",
        "Node Degree",
        DEGREE_SWEEP.iter().map(|&d| d as f64),
        |d| {
            base(quality)
                .degree(d as usize)
                .failure_probability(0.06)
                .build()
        },
        &StrategyKind::ALL,
    )
}

/// Fig. 5: all three metrics vs network size (degree 8, `Pf = 0.06`).
#[must_use]
pub fn fig5(quality: Quality) -> FigureSeries {
    sweep(
        "fig5",
        "Network Size",
        SIZE_SWEEP.iter().map(|&n| n as f64),
        |n| {
            base(quality)
                .nodes(n as usize)
                .degree(8)
                .failure_probability(0.06)
                .build()
        },
        &StrategyKind::ALL,
    )
}

/// Fig. 6: QoS delivery ratio vs deadline factor (degree 8, `Pf = 0.06`).
#[must_use]
pub fn fig6(quality: Quality) -> FigureSeries {
    sweep(
        "fig6",
        "QoS Requirement",
        FACTOR_SWEEP,
        |f| {
            base(quality)
                .degree(8)
                .failure_probability(0.06)
                .deadline_factor(f)
                .build()
        },
        &StrategyKind::ALL,
    )
}

/// Fig. 7: the lateness CDFs of DCRD packets that missed their deadline, in
/// a full mesh and in a degree-8 overlay (`Pf = 0.06`). Returns
/// `(label, cdf series)` pairs.
#[must_use]
pub fn fig7(quality: Quality) -> Vec<(String, Vec<(f64, f64)>)> {
    let mesh = base(quality).full_mesh().failure_probability(0.06).build();
    let deg8 = base(quality).degree(8).failure_probability(0.06).build();
    [("Fully-Meshed", mesh), ("Degree 8", deg8)]
        .into_iter()
        .map(|(label, scenario)| {
            let agg = run_scenario(&scenario, StrategyKind::Dcrd);
            (format!("fig7 — {label}"), agg.lateness().cdf_series())
        })
        .collect()
}

/// Fig. 8: QoS delivery ratio vs `Pl` for `m ∈ {1, 2}` (degree 8,
/// `Pf = 0.01` per the figure caption; the §IV-A text says 0.1 — we follow
/// the caption). ORACLE is omitted exactly as in the paper's figure.
#[must_use]
pub fn fig8(quality: Quality) -> FigureSeries {
    let kinds = [
        StrategyKind::Dcrd,
        StrategyKind::RTree,
        StrategyKind::DTree,
        StrategyKind::Multipath,
    ];
    let mut series = FigureSeries::new("fig8", "Packet Loss Rate");
    for pl in PL_SWEEP {
        let mut strategies = Vec::new();
        for m in [1u32, 2] {
            let scenario = base(quality)
                .degree(8)
                .failure_probability(0.01)
                .loss_rate(pl)
                .transmissions(m)
                .build();
            for kind in kinds {
                let label = format!("{} (m={m})", kind.label());
                strategies.push(run_labeled(&scenario, kind, &label));
            }
        }
        series.points.push(SeriesPoint { x: pl, strategies });
    }
    series
}

/// Ablation: sending-list ordering policies (Theorem 1 vs naive orders) on
/// the Fig. 3 setup at `Pf = 0.06`.
#[must_use]
pub fn ablation_ordering(quality: Quality) -> FigureSeries {
    use dcrd_core::{DcrdConfig, OrderingPolicy};
    let policies = [
        ("Ratio (Thm 1)", OrderingPolicy::RatioOptimal),
        ("By delay", OrderingPolicy::ByDelay),
        ("By reliability", OrderingPolicy::ByReliability),
        ("Unsorted", OrderingPolicy::Unsorted),
    ];
    let mut series = FigureSeries::new("ablation-ordering", "Failure Probability");
    for pf in [0.02, 0.06, 0.1] {
        let strategies: Vec<AggregateMetrics> = policies
            .iter()
            .map(|(label, policy)| {
                let scenario = base(quality)
                    .degree(5)
                    .failure_probability(pf)
                    .dcrd(DcrdConfig {
                        ordering: *policy,
                        ..DcrdConfig::default()
                    })
                    .build();
                run_labeled(&scenario, StrategyKind::Dcrd, label)
            })
            .collect();
        series.points.push(SeriesPoint { x: pf, strategies });
    }
    series
}

/// Ablation: upstream rerouting on/off on the Fig. 3 setup.
#[must_use]
pub fn ablation_reroute(quality: Quality) -> FigureSeries {
    use dcrd_core::DcrdConfig;
    let mut series = FigureSeries::new("ablation-reroute", "Failure Probability");
    for pf in PF_SWEEP {
        let on = base(quality).degree(5).failure_probability(pf).build();
        let off = base(quality)
            .degree(5)
            .failure_probability(pf)
            .dcrd(DcrdConfig {
                reroute_upstream: false,
                ..DcrdConfig::default()
            })
            .build();
        series.points.push(SeriesPoint {
            x: pf,
            strategies: vec![
                run_labeled(&on, StrategyKind::Dcrd, "Reroute on"),
                run_labeled(&off, StrategyKind::Dcrd, "Reroute off"),
            ],
        });
    }
    series
}

/// Ablation: ACK timeout factor under the physical round-trip ACK model.
#[must_use]
pub fn ablation_timeout(quality: Quality) -> FigureSeries {
    use dcrd_pubsub::runtime::AckTransit;
    let mut series = FigureSeries::new("ablation-timeout", "ACK Timeout Factor");
    for factor in [1.5, 2.0, 3.0] {
        let scenario = base(quality)
            .degree(8)
            .failure_probability(0.06)
            .ack_transit(AckTransit::RoundTrip)
            .ack_timeout_factor(factor)
            .build();
        series.points.push(SeriesPoint {
            x: factor,
            strategies: vec![run_scenario(&scenario, StrategyKind::Dcrd)],
        });
    }
    series
}

/// Extension: persistent (bursty) link outages at a fixed marginal rate
/// `Pf = 0.06`, sweeping the mean burst length — where the paper's
/// persistency mode starts to matter. Compares plain DCRD, DCRD with
/// persistence, and D-Tree.
#[must_use]
pub fn ext_burst_failures(quality: Quality) -> FigureSeries {
    use dcrd_core::{DcrdConfig, PersistenceMode};
    let mut series = FigureSeries::new("ext-burst-failures", "Mean Burst Length (s)");
    for mean in [1.0, 2.0, 4.0, 8.0] {
        let plain = base(quality)
            .degree(5)
            .failure_probability(0.06)
            .bursty_failures(mean)
            .build();
        let persistent = base(quality)
            .degree(5)
            .failure_probability(0.06)
            .bursty_failures(mean)
            .dcrd(DcrdConfig {
                persistence: PersistenceMode::Retry {
                    max_retries: 20,
                    retry_after_ms: 1000,
                },
                ..DcrdConfig::default()
            })
            .build();
        series.points.push(SeriesPoint {
            x: mean,
            strategies: vec![
                run_labeled(&plain, StrategyKind::Dcrd, "DCRD"),
                run_labeled(&persistent, StrategyKind::Dcrd, "DCRD+persist"),
                run_labeled(&plain, StrategyKind::DTree, "D-Tree"),
            ],
        });
    }
    series
}

/// One row of the control-overhead study: the distributed `⟨d, r⟩`
/// computation's cost for one network size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlOverheadPoint {
    /// Number of brokers.
    pub nodes: usize,
    /// Gossip rounds until convergence, averaged over subscriptions.
    pub mean_rounds: f64,
    /// Worst-case rounds across subscriptions.
    pub max_rounds: u32,
    /// Control messages per subscription (`rounds × 2 × links`: every round
    /// each broker shares its `⟨d, r⟩` with every neighbor).
    pub messages_per_subscription: f64,
}

/// Extension: the setup cost the paper never quantifies — how many gossip
/// rounds and control messages the distributed table computation takes as
/// the overlay grows (degree 8, `Pf = 0.06`).
#[must_use]
pub fn ext_control_overhead(quality: Quality) -> Vec<ControlOverheadPoint> {
    use dcrd_core::propagation::compute_tables_with_distances;
    use dcrd_core::DcrdConfig;
    use dcrd_net::estimate::analytic_estimates;
    use dcrd_net::paths::{dijkstra, Metric};

    let reps = quality.repetitions().min(3);
    SIZE_SWEEP
        .iter()
        .map(|&n| {
            let mut rounds: Vec<u32> = Vec::new();
            let mut messages = 0.0;
            let mut subs = 0usize;
            for rep in 0..reps {
                let scenario = crate::scenario::ScenarioBuilder::new()
                    .nodes(n)
                    .degree(8)
                    .failure_probability(0.06)
                    .seed(0xC0 + u64::from(rep))
                    .build();
                let topo = crate::runner::build_topology(&scenario, rep);
                let workload = crate::runner::build_workload(&scenario, &topo, rep);
                let estimates = analytic_estimates(&topo, 0.06, 1e-4);
                let config = DcrdConfig::default();
                for spec in workload.topics() {
                    let dist = dijkstra(&topo, spec.publisher, Metric::Delay);
                    for sub in &spec.subscriptions {
                        let tables = compute_tables_with_distances(
                            &topo,
                            &estimates,
                            1,
                            spec.publisher,
                            &dist,
                            sub.subscriber,
                            sub.deadline.as_micros() as f64,
                            &config,
                        );
                        rounds.push(tables.rounds_used());
                        messages += f64::from(tables.rounds_used()) * 2.0 * topo.num_edges() as f64;
                        subs += 1;
                    }
                }
            }
            ControlOverheadPoint {
                nodes: n,
                mean_rounds: rounds.iter().map(|&r| f64::from(r)).sum::<f64>()
                    / rounds.len() as f64,
                max_rounds: rounds.iter().copied().max().unwrap_or(0),
                messages_per_subscription: messages / subs as f64,
            }
        })
        .collect()
}

/// Ablation: the paper's top-5 multipath heuristic vs Bhandari
/// edge-disjoint pairs, on the Fig. 3 setup.
#[must_use]
pub fn ablation_multipath(quality: Quality) -> FigureSeries {
    sweep(
        "ablation-multipath",
        "Failure Probability",
        PF_SWEEP,
        |pf| base(quality).degree(5).failure_probability(pf).build(),
        &[StrategyKind::Multipath, StrategyKind::MultipathDisjoint],
    )
}

/// Extension (the paper's §V future work): all five strategies under
/// simultaneous link failures (`Pf = 0.02`) and fail-stop **node** failures
/// swept from 0 to 5% per epoch, degree 8.
#[must_use]
pub fn ext_node_failures(quality: Quality) -> FigureSeries {
    sweep(
        "ext-node-failures",
        "Node Failure Probability",
        [0.0, 0.01, 0.02, 0.05],
        |pn| {
            base(quality)
                .degree(8)
                .failure_probability(0.02)
                .node_failure_probability(pn)
                .build()
        },
        &StrategyKind::ALL,
    )
}

/// Ablation: analytic estimates vs online probe-based monitoring.
#[must_use]
pub fn ablation_monitor(quality: Quality) -> FigureSeries {
    use dcrd_pubsub::runtime::Monitoring;
    use dcrd_sim::SimDuration;
    let mut series = FigureSeries::new("ablation-monitor", "Failure Probability");
    for pf in [0.02, 0.06, 0.1] {
        let analytic = base(quality).degree(8).failure_probability(pf).build();
        let probing = base(quality)
            .degree(8)
            .failure_probability(pf)
            .monitoring(Monitoring::Probing {
                probe_interval: SimDuration::from_secs(5),
                ewma_weight: 0.05,
            })
            .build();
        series.points.push(SeriesPoint {
            x: pf,
            strategies: vec![
                run_labeled(&analytic, StrategyKind::Dcrd, "Analytic"),
                run_labeled(&probing, StrategyKind::Dcrd, "Probing"),
            ],
        });
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_metrics::report::MetricKind;

    /// One smoke-quality end-to-end pass over the Fig. 2 driver. The other
    /// drivers share all machinery; integration tests cover them.
    #[test]
    fn fig2_smoke_has_expected_shape() {
        let series = fig2(Quality::Smoke);
        assert_eq!(series.points.len(), PF_SWEEP.len());
        assert_eq!(series.strategy_names().len(), 5);
        // At Pf = 0 every strategy delivers everything.
        let p0 = &series.points[0];
        for agg in &p0.strategies {
            assert!(
                agg.delivery_ratio() > 0.999,
                "{} at pf=0: {}",
                agg.name(),
                agg.delivery_ratio()
            );
        }
        // Tables render for all three metrics.
        for kind in [MetricKind::Delivery, MetricKind::Qos, MetricKind::Traffic] {
            let table = series.render_table(kind);
            assert!(table.contains("DCRD"));
        }
    }

    #[test]
    fn sweep_constants_match_paper() {
        assert_eq!(PF_SWEEP.len(), 6);
        assert_eq!(DEGREE_SWEEP, [3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(SIZE_SWEEP, [10, 20, 40, 80, 120, 160]);
        assert_eq!(FACTOR_SWEEP[0], 1.5);
        assert_eq!(PL_SWEEP.len(), 4);
    }
}
